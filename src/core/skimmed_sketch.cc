#include "core/skimmed_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "sketch/serial_limits.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/stats.h"

namespace skimjoin {
namespace core {

namespace {

bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Shared by Create and DeserializeFrom: a deserialized header is untrusted
// input and must pass the same validation as a caller-supplied config.
Status ValidateConfig(const SkimmedSketchConfig& config) {
  if (config.domain_size < 2) {
    return InvalidArgumentError("SkimmedSketchConfig.domain_size must be >= 2");
  }
  if (config.use_dyadic_skim && !IsPowerOfTwo(config.domain_size)) {
    return InvalidArgumentError(
        "dyadic skimming requires a power-of-two domain size");
  }
  if (config.num_tables < 1 || config.num_buckets < 1) {
    return InvalidArgumentError(
        "SkimmedSketchConfig requires num_tables >= 1 and num_buckets >= 1");
  }
  if (config.threshold_scale <= 0.0) {
    return InvalidArgumentError(
        "SkimmedSketchConfig.threshold_scale must be positive");
  }
  if (config.min_threshold < 1) {
    return InvalidArgumentError(
        "SkimmedSketchConfig.min_threshold must be >= 1");
  }
  if (!(config.recurse_slack > 0.0 && config.recurse_slack <= 1.0)) {
    return InvalidArgumentError(
        "SkimmedSketchConfig.recurse_slack must be in (0, 1]");
  }
  if (!(config.skim_margin >= 0.0 && config.skim_margin < 1.0)) {
    return InvalidArgumentError(
        "SkimmedSketchConfig.skim_margin must be in [0, 1)");
  }
  return OkStatus();
}

}  // namespace

SkimmedSketch::SkimmedSketch(const SkimmedSketchConfig& config, uint64_t seed,
                             sketch::HashSketch level0,
                             std::optional<DyadicSkimmer> dyadic)
    : config_(config),
      seed_(seed),
      level0_(std::move(level0)),
      dyadic_(std::move(dyadic)) {}

StatusOr<SkimmedSketch> SkimmedSketch::Create(const SkimmedSketchConfig& config,
                                              uint64_t seed) {
  SKIMJOIN_RETURN_IF_ERROR(ValidateConfig(config));

  sketch::HashSketchConfig level0_config;
  level0_config.num_tables = config.num_tables;
  level0_config.num_buckets = config.num_buckets;
  StatusOr<sketch::HashSketch> level0 =
      sketch::HashSketch::Create(level0_config, seed);
  SKIMJOIN_RETURN_IF_ERROR(level0.status());

  std::optional<DyadicSkimmer> dyadic;
  if (config.use_dyadic_skim) {
    sketch::HashSketchConfig upper_config;
    upper_config.num_tables = config.num_tables;
    upper_config.num_buckets = config.dyadic_num_buckets == 0
                                   ? config.num_buckets
                                   : config.dyadic_num_buckets;
    StatusOr<DyadicSkimmer> skimmer =
        DyadicSkimmer::Create(config.domain_size, upper_config, seed);
    SKIMJOIN_RETURN_IF_ERROR(skimmer.status());
    dyadic = *std::move(skimmer);
  }
  return SkimmedSketch(config, seed, *std::move(level0), std::move(dyadic));
}

void SkimmedSketch::Update(uint64_t value, int64_t weight) {
  if (value >= config_.domain_size) {
    // Not an internal invariant: the value came off a stream. Drop it and
    // keep serving the in-domain sub-stream instead of aborting.
    ++dropped_updates_;
    return;
  }
  level0_.Update(value, weight);
  if (dyadic_.has_value()) dyadic_->Update(value, weight);
}

void SkimmedSketch::UpdateBatch(
    std::span<const stream::StreamElement> elements) {
  bool clean = true;
  for (const stream::StreamElement& element : elements) {
    if (element.value >= config_.domain_size) {
      clean = false;
      break;
    }
  }
  if (!clean) {
    // Slow path: compact the in-domain elements so the batch kernels below
    // never see a bad value. thread_local scratch: no allocation per batch
    // once warm, one copy per ingest worker thread.
    static thread_local std::vector<stream::StreamElement> kept;
    kept.clear();
    kept.reserve(elements.size());
    for (const stream::StreamElement& element : elements) {
      if (element.value < config_.domain_size) {
        kept.push_back(element);
      } else {
        ++dropped_updates_;
      }
    }
    level0_.UpdateBatch(kept);
    if (dyadic_.has_value()) dyadic_->UpdateBatch(kept);
    return;
  }
  level0_.UpdateBatch(elements);
  if (dyadic_.has_value()) dyadic_->UpdateBatch(elements);
}

void SkimmedSketch::SetKernelOptions(const sketch::KernelOptions& options) {
  level0_.SetKernelOptions(options);
  if (dyadic_.has_value()) dyadic_->SetKernelOptions(options);
}

uint64_t SkimmedSketch::hash_cache_hits() const {
  uint64_t total = level0_.hash_cache_hits();
  if (dyadic_.has_value()) total += dyadic_->hash_cache_hits();
  return total;
}

uint64_t SkimmedSketch::hash_cache_misses() const {
  uint64_t total = level0_.hash_cache_misses();
  if (dyadic_.has_value()) total += dyadic_->hash_cache_misses();
  return total;
}

void SkimmedSketch::Reset() {
  level0_.Reset();
  if (dyadic_.has_value()) dyadic_->Reset();
  dropped_updates_ = 0;
}

void SkimmedSketch::Absorb(const stream::FrequencyVector& frequencies) {
  const auto& counts = frequencies.counts();
  SKIMJOIN_CHECK_LE(counts.size(), config_.domain_size);
  for (uint64_t value = 0; value < counts.size(); ++value) {
    if (counts[value] != 0) Update(value, counts[value]);
  }
}

void SkimmedSketch::Merge(const SkimmedSketch& other) {
  SKIMJOIN_CHECK(CompatibleWith(other))
      << "merging incompatible skimmed sketches";
  level0_.Merge(other.level0_);
  if (dyadic_.has_value()) dyadic_->Merge(*other.dyadic_);
}

bool SkimmedSketch::CompatibleWith(const SkimmedSketch& other) const {
  return seed_ == other.seed_ &&
         config_.domain_size == other.config_.domain_size &&
         config_.num_tables == other.config_.num_tables &&
         config_.num_buckets == other.config_.num_buckets &&
         config_.use_dyadic_skim == other.config_.use_dyadic_skim &&
         config_.dyadic_num_buckets == other.config_.dyadic_num_buckets;
}

int64_t SkimmedSketch::SkimThreshold() const {
  const double f2 = std::max(level0_.EstimateSelfJoinSize(), 0.0);
  const double scale =
      config_.threshold_scale *
      std::sqrt(f2 / static_cast<double>(config_.num_buckets));
  const auto threshold = static_cast<int64_t>(std::ceil(scale));
  return std::max(threshold, config_.min_threshold);
}

SkimmedSketch::SkimOutput SkimmedSketch::Skim() const {
  metrics::TraceSpan span("skimdense", "estimate");
  const int64_t threshold = SkimThreshold();
  const auto margin = static_cast<int64_t>(
      config_.skim_margin * static_cast<double>(threshold));
  sketch::HashSketch residual = level0_;
  DenseFrequencies dense;
  if (dyadic_.has_value()) {
    const std::vector<uint64_t> candidates =
        dyadic_->FindCandidates(threshold, config_.recurse_slack);
    dense = SkimDenseCandidates(&residual, candidates, threshold, margin);
  } else {
    dense = SkimDenseNaive(&residual, config_.domain_size, threshold, margin);
  }
  return SkimOutput{std::move(dense), std::move(residual), threshold};
}

JoinEstimateBreakdown SkimmedSketch::BreakdownFromSkims(
    const SkimOutput& skim_f, const SkimOutput& skim_g,
    SubJoinTables* tables) {
  JoinEstimateBreakdown breakdown;
  breakdown.threshold_f = skim_f.threshold;
  breakdown.threshold_g = skim_g.threshold;
  breakdown.dense_count_f = skim_f.dense.size();
  breakdown.dense_count_g = skim_g.dense.size();

  // Step 2: dense·dense, computed exactly from the explicit vectors.
  breakdown.dense_dense =
      static_cast<double>(DenseDenseJoin(skim_f.dense, skim_g.dense));

  // Dense frequencies of one stream against the residual sketch of the
  // other (ESTSUBJOINSIZE, both directions). The skimmed copies are
  // compatible by construction, so the bucket-product estimator applies
  // directly; each estimated sub-join medians its per-table vector exactly
  // as the dedicated entry points do.
  std::vector<double> dense_sparse =
      EstimateSubJoinSizePerTable(skim_f.dense, skim_g.skimmed);
  std::vector<double> sparse_dense =
      EstimateSubJoinSizePerTable(skim_g.dense, skim_f.skimmed);
  std::vector<double> sparse_sparse =
      sketch::HashSketch::PerTableJoinProducts(skim_f.skimmed, skim_g.skimmed);
  breakdown.dense_sparse = Median(dense_sparse);
  breakdown.sparse_dense = Median(sparse_dense);
  breakdown.sparse_sparse = Median(sparse_sparse);
  if (tables != nullptr) {
    tables->dense_sparse = std::move(dense_sparse);
    tables->sparse_dense = std::move(sparse_dense);
    tables->sparse_sparse = std::move(sparse_sparse);
  }
  return breakdown;
}

StatusOr<double> SkimmedSketch::EstimateJoinSizeFromSkims(
    const SkimOutput& skim_f, const SkimOutput& skim_g) {
  if (!skim_f.skimmed.CompatibleWith(skim_g.skimmed)) {
    return InvalidArgumentError(
        "skimmed-join estimation from precomputed skims requires residual "
        "sketches with equal configuration and seed");
  }
  return BreakdownFromSkims(skim_f, skim_g, nullptr).Total();
}

StatusOr<JoinEstimateBreakdown> SkimmedSketch::EstimateDetailedImpl(
    const SkimmedSketch& f, const SkimmedSketch& g, EstimateReport* report) {
  if (!f.CompatibleWith(g)) {
    return InvalidArgumentError(
        "skimmed-sketch join estimation requires sketches with equal "
        "configuration and seed");
  }
  SkimOutput skim_f = f.Skim();
  SkimOutput skim_g = g.Skim();

  SubJoinTables sub_joins;
  JoinEstimateBreakdown breakdown =
      BreakdownFromSkims(skim_f, skim_g, &sub_joins);
  const std::vector<double>& dense_sparse = sub_joins.dense_sparse;
  const std::vector<double>& sparse_dense = sub_joins.sparse_dense;
  const std::vector<double>& sparse_sparse = sub_joins.sparse_sparse;

  if (report != nullptr) {
    report->method = "skimmed";
    // Copy j: the join estimate table j alone would have produced —
    // the exact dense·dense part plus table j's share of each estimated
    // sub-join. Note the point answer medians each sub-join separately, so
    // it need not equal the median of these copies; FinishReportFromCopies
    // widens the CI to contain it.
    const size_t tables = dense_sparse.size();
    report->copy_estimates.reserve(tables);
    for (size_t j = 0; j < tables; ++j) {
      report->copy_estimates.push_back(breakdown.dense_dense +
                                       dense_sparse[j] + sparse_dense[j] +
                                       sparse_sparse[j]);
    }

    SkimDiagnostics diag;
    diag.threshold_f = breakdown.threshold_f;
    diag.threshold_g = breakdown.threshold_g;
    diag.dense_count_f = breakdown.dense_count_f;
    diag.dense_count_g = breakdown.dense_count_g;
    diag.residual_l2_before_f =
        std::sqrt(std::max(f.level0_.EstimateSelfJoinSize(), 0.0));
    diag.residual_l2_after_f =
        std::sqrt(std::max(skim_f.skimmed.EstimateSelfJoinSize(), 0.0));
    diag.residual_l2_before_g =
        std::sqrt(std::max(g.level0_.EstimateSelfJoinSize(), 0.0));
    diag.residual_l2_after_g =
        std::sqrt(std::max(skim_g.skimmed.EstimateSelfJoinSize(), 0.0));
    diag.dense_dense = breakdown.dense_dense;
    diag.dense_sparse = breakdown.dense_sparse;
    diag.sparse_dense = breakdown.sparse_dense;
    diag.sparse_sparse = breakdown.sparse_sparse;
    report->skim = diag;

    // Record each side's skim shape so HealthProbe can report drift since
    // this estimate. Only the reporting path pays the bookkeeping; the
    // estimate itself is untouched.
    f.dense_fraction_at_estimate_ =
        static_cast<double>(breakdown.dense_count_f) /
        static_cast<double>(f.config_.domain_size);
    g.dense_fraction_at_estimate_ =
        static_cast<double>(breakdown.dense_count_g) /
        static_cast<double>(g.config_.domain_size);
    f.residual_ratio_at_estimate_ =
        diag.residual_l2_before_f > 0.0
            ? diag.residual_l2_after_f / diag.residual_l2_before_f
            : std::numeric_limits<double>::quiet_NaN();
    g.residual_ratio_at_estimate_ =
        diag.residual_l2_before_g > 0.0
            ? diag.residual_l2_after_g / diag.residual_l2_before_g
            : std::numeric_limits<double>::quiet_NaN();

    // §3.2 decomposition: the dense·dense part is exact, so the error
    // envelope is the sum of the three estimated sub-joins' terms, each an
    // ε·sqrt(self-join product) with ε = 4/sqrt(b) and the appropriate
    // dense/residual norms. Dense F2s are exact sums over Ê; residual F2s
    // are the skimmed sketches' own estimates (already computed above as
    // L2 norms).
    double f2_dense_f = 0.0;
    for (const auto& [value, frequency] : skim_f.dense) {
      f2_dense_f +=
          static_cast<double>(frequency) * static_cast<double>(frequency);
    }
    double f2_dense_g = 0.0;
    for (const auto& [value, frequency] : skim_g.dense) {
      f2_dense_g +=
          static_cast<double>(frequency) * static_cast<double>(frequency);
    }
    const double res_f = diag.residual_l2_after_f;   // sqrt(F2 of residual F)
    const double res_g = diag.residual_l2_after_g;
    const double eps = 4.0 / std::sqrt(static_cast<double>(
                                 f.config_.num_buckets));
    report->apriori_bound = eps * (std::sqrt(f2_dense_f) * res_g +
                                   res_f * std::sqrt(f2_dense_g) +
                                   res_f * res_g);
  }
  return breakdown;
}

StatusOr<JoinEstimateBreakdown> SkimmedSketch::EstimateJoinSizeDetailed(
    const SkimmedSketch& f, const SkimmedSketch& g) {
  return EstimateDetailedImpl(f, g, nullptr);
}

StatusOr<EstimateReport> SkimmedSketch::EstimateJoinSizeWithReport(
    const SkimmedSketch& f, const SkimmedSketch& g) {
  EstimateReport report;
  StatusOr<JoinEstimateBreakdown> breakdown =
      EstimateDetailedImpl(f, g, &report);
  SKIMJOIN_RETURN_IF_ERROR(breakdown.status());
  report.estimate = breakdown->Total();
  FinishReportFromCopies(&report);
  return report;
}

StatusOr<double> SkimmedSketch::EstimateJoinSize(const SkimmedSketch& f,
                                                 const SkimmedSketch& g) {
  StatusOr<JoinEstimateBreakdown> breakdown = EstimateJoinSizeDetailed(f, g);
  SKIMJOIN_RETURN_IF_ERROR(breakdown.status());
  return breakdown->Total();
}

double SkimmedSketch::EstimateSelfJoinSize() const {
  StatusOr<double> result = EstimateJoinSize(*this, *this);
  SKIMJOIN_CHECK(result.ok());
  return *result;
}

EstimateReport SkimmedSketch::EstimateSelfJoinSizeWithReport() const {
  StatusOr<EstimateReport> report = EstimateJoinSizeWithReport(*this, *this);
  SKIMJOIN_CHECK(report.ok());
  report->method = "skimmed-selfjoin";
  return *std::move(report);
}

SynopsisHealth SkimmedSketch::HealthProbe() const {
  SynopsisHealth health = level0_.HealthProbe();
  health.kind = "skimmed";
  const SkimOutput skim = Skim();
  health.dense_fraction = static_cast<double>(skim.dense.size()) /
                          static_cast<double>(config_.domain_size);
  const double before =
      std::sqrt(std::max(level0_.EstimateSelfJoinSize(), 0.0));
  const double after =
      std::sqrt(std::max(skim.skimmed.EstimateSelfJoinSize(), 0.0));
  health.residual_ratio = before > 0.0
                              ? after / before
                              : std::numeric_limits<double>::quiet_NaN();
  health.dense_fraction_at_estimate = dense_fraction_at_estimate_;
  health.residual_ratio_at_estimate = residual_ratio_at_estimate_;
  return health;
}

std::optional<SynopsisHealth> SkimmedSketch::DyadicHealthProbe() const {
  if (!dyadic_.has_value()) return std::nullopt;
  return dyadic_->HealthProbe();
}

DenseFrequencies SkimmedSketch::HeavyHitters(int64_t threshold) const {
  SKIMJOIN_CHECK_GE(threshold, 1);
  sketch::HashSketch scratch = level0_;
  if (dyadic_.has_value()) {
    const std::vector<uint64_t> candidates =
        dyadic_->FindCandidates(threshold, config_.recurse_slack);
    return SkimDenseCandidates(&scratch, candidates, threshold);
  }
  return SkimDenseNaive(&scratch, config_.domain_size, threshold);
}

StatusOr<int64_t> SkimmedSketch::EstimateRangeFrequency(uint64_t lo,
                                                        uint64_t hi) const {
  if (!dyadic_.has_value()) {
    return FailedPreconditionError(
        "range estimation requires use_dyadic_skim (the dyadic levels ARE "
        "the range index)");
  }
  if (lo > hi) {
    return InvalidArgumentError("range lower bound exceeds upper bound");
  }
  if (hi >= config_.domain_size) {
    return OutOfRangeError("range extends past the stream domain");
  }
  const uint64_t max_level = dyadic_->num_levels();
  int64_t total = 0;
  uint64_t cursor = lo;
  while (cursor <= hi) {
    // Largest dyadic block aligned at `cursor` that stays inside [lo, hi].
    uint64_t level = 0;
    while (level < max_level) {
      const uint64_t doubled = uint64_t{1} << (level + 1);
      if (cursor % doubled != 0) break;
      if (cursor + doubled - 1 > hi) break;
      ++level;
    }
    total += (level == 0)
                 ? level0_.PointEstimate(cursor)
                 : dyadic_->PointEstimate(level, cursor >> level);
    cursor += uint64_t{1} << level;
    if (cursor == 0) break;  // wrapped past the 64-bit domain edge
  }
  return total;
}

StatusOr<uint64_t> SkimmedSketch::EstimateQuantile(double phi) const {
  if (!dyadic_.has_value()) {
    return FailedPreconditionError(
        "quantile estimation requires use_dyadic_skim");
  }
  SKIMJOIN_CHECK(phi > 0.0 && phi <= 1.0) << "phi must be in (0, 1]";
  const uint64_t top = dyadic_->num_levels();
  const double n = std::max<double>(
      0.0, static_cast<double>(dyadic_->PointEstimate(top, 0)));
  if (n <= 0.0) {
    return FailedPreconditionError(
        "quantiles are undefined on an empty (or delete-dominated) stream");
  }
  const double target = phi * n;
  double mass_before = 0.0;
  uint64_t prefix = 0;
  // Binary descent: at each level inspect the left child's estimated mass.
  for (uint64_t level = top; level >= 1; --level) {
    const uint64_t left_child = prefix * 2;
    const int64_t raw =
        (level == 1) ? level0_.PointEstimate(left_child)
                     : dyadic_->PointEstimate(level - 1, left_child);
    const double left_mass = std::max<double>(0.0, static_cast<double>(raw));
    if (mass_before + left_mass >= target) {
      prefix = left_child;
    } else {
      mass_before += left_mass;
      prefix = left_child + 1;
    }
  }
  return prefix;
}

Status SkimmedSketch::SerializeTo(std::ostream& out) const {
  const auto saved_precision = out.precision(17);
  out << "skimjoin.skimmed_sketch v2\n"
      << config_.domain_size << ' ' << config_.num_tables << ' '
      << config_.num_buckets << ' ' << (config_.use_dyadic_skim ? 1 : 0) << ' '
      << config_.dyadic_num_buckets << ' ' << config_.threshold_scale << ' '
      << config_.min_threshold << ' ' << config_.recurse_slack << ' '
      << config_.skim_margin << ' ' << seed_ << '\n';
  out.precision(saved_precision);
  SKIMJOIN_RETURN_IF_ERROR(level0_.SerializeTo(out));
  if (dyadic_.has_value()) {
    SKIMJOIN_RETURN_IF_ERROR(dyadic_->SerializeTo(out));
  }
  if (!out) return IoError("skimmed-sketch serialization failed");
  return OkStatus();
}

StatusOr<SkimmedSketch> SkimmedSketch::DeserializeFrom(std::istream& in) {
  std::string tag, version;
  if (!(in >> tag >> version) || tag != "skimjoin.skimmed_sketch" ||
      version != "v2") {
    return InvalidArgumentError("not a skimjoin skimmed-sketch v2 record");
  }
  SkimmedSketchConfig config;
  int use_dyadic = 0;
  uint64_t seed = 0;
  if (!(in >> config.domain_size >> config.num_tables >> config.num_buckets >>
        use_dyadic >> config.dyadic_num_buckets >> config.threshold_scale >>
        config.min_threshold >> config.recurse_slack >> config.skim_margin >>
        seed)) {
    return InvalidArgumentError("malformed skimmed-sketch header");
  }
  config.use_dyadic_skim = (use_dyadic != 0);
  // The header is untrusted: run the full Create-level validation plus the
  // deserialization size cap before touching the nested records.
  SKIMJOIN_RETURN_IF_ERROR(ValidateConfig(config));
  SKIMJOIN_RETURN_IF_ERROR(sketch::CheckDeserializeDims(
      config.num_tables, config.num_buckets, "skimmed-sketch level 0"));

  StatusOr<sketch::HashSketch> level0 =
      sketch::HashSketch::DeserializeFrom(in);
  SKIMJOIN_RETURN_IF_ERROR(level0.status());
  if (level0->config().num_tables != config.num_tables ||
      level0->config().num_buckets != config.num_buckets ||
      level0->seed() != seed) {
    return InvalidArgumentError(
        "skimmed-sketch level-0 record disagrees with its header");
  }
  std::optional<DyadicSkimmer> dyadic;
  if (config.use_dyadic_skim) {
    StatusOr<DyadicSkimmer> skimmer = DyadicSkimmer::DeserializeFrom(in);
    SKIMJOIN_RETURN_IF_ERROR(skimmer.status());
    if (skimmer->domain_size() != config.domain_size) {
      return InvalidArgumentError(
          "skimmed-sketch dyadic record disagrees with its header");
    }
    dyadic = *std::move(skimmer);
  }
  return SkimmedSketch(config, seed, *std::move(level0), std::move(dyadic));
}

uint64_t SkimmedSketch::TotalCounters() const {
  uint64_t total = level0_.config().TotalCounters();
  if (dyadic_.has_value()) total += dyadic_->TotalCounters();
  return total;
}

uint64_t SkimmedSketch::MemoryBytes() const {
  uint64_t total = sizeof(*this) +
                   (level0_.MemoryBytes() - sizeof(sketch::HashSketch));
  if (dyadic_.has_value()) {
    total += dyadic_->MemoryBytes() - sizeof(DyadicSkimmer);
  }
  return total;
}

}  // namespace core
}  // namespace skimjoin
