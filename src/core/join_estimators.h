// A uniform interface over every join-size estimation method in the
// library, so that the query engine and the benchmark harness can swap
// methods at equal space budgets. A *pair* bundles the two per-stream
// synopses because every method requires them to share hash families
// (constructed from a common seed).

#ifndef SKIMJOIN_CORE_JOIN_ESTIMATORS_H_
#define SKIMJOIN_CORE_JOIN_ESTIMATORS_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sketch/partitioned_agms.h"
#include "stream/frequency_vector.h"
#include "stream/stream_element.h"
#include "util/estimate_report.h"
#include "util/status.h"

namespace skimjoin {
namespace core {

/// The estimation methods available.
enum class EstimatorKind {
  /// Basic AGMS sketching, ESTJOINSIZE of [Alon et al. '99] — the paper's
  /// baseline. O(space) per element.
  kAgms,
  /// Un-skimmed hash-sketch estimation (bucket products; "Fast-AGMS").
  /// O(num_tables) per element.
  kHashSketch,
  /// The paper's skimmed-sketch estimator (ESTSKIMJOINSIZE).
  kSkimmedSketch,
  /// Count-Min inner product (upper bound for insert-only streams).
  kCountMin,
  /// Reservoir-sample join estimate (insert-only; the sampling strawman).
  kSampling,
  /// Domain-partitioned AGMS [Dobra et al. '02]; requires
  /// EstimatorSpec::partition_plan (built from a-priori frequency
  /// statistics — the requirement the skimmed-sketch method removes).
  kPartitionedAgms,
};

/// Short stable name for reports ("agms", "skimmed", ...).
const char* EstimatorKindName(EstimatorKind kind);

/// How to build a pair of synopses for one (F, G) join query.
struct EstimatorSpec {
  EstimatorKind kind = EstimatorKind::kSkimmedSketch;

  /// Stream domain [0, domain_size).
  uint64_t domain_size = 1u << 16;

  /// Per-stream space budget in counters ("words"); each method carves its
  /// structure out of this.
  uint64_t space_counters = 4096;

  /// kAgms: the number of medians s2 (s1 = space / s2).
  uint64_t agms_num_medians = 5;

  /// kHashSketch / kSkimmedSketch / kCountMin: number of tables s
  /// (buckets = space / s).
  uint64_t num_tables = 7;

  /// kSkimmedSketch: forwarded tuning knobs (see SkimmedSketchConfig).
  double threshold_scale = 2.0;
  double recurse_slack = 0.5;
  double skim_margin = 0.0;
  /// When true the skimmed sketch maintains dyadic levels INSIDE the space
  /// budget: level 0 gets space/2, the auxiliary levels split the rest.
  /// When false (default here) skimming scans the domain and all space goes
  /// to level 0 — the configuration the accuracy benchmarks use.
  bool skimmed_use_dyadic = false;

  /// kPartitionedAgms: the plan (boundaries + per-partition shapes) built
  /// by sketch::PlanPartitions from a-priori statistics. Its space is used
  /// as-is (space_counters is ignored for this kind).
  std::shared_ptr<const sketch::PartitionPlan> partition_plan;
};

/// Two synopses (for streams F and G) plus the estimation entry point.
class JoinEstimatorPair {
 public:
  virtual ~JoinEstimatorPair() = default;

  JoinEstimatorPair(const JoinEstimatorPair&) = delete;
  JoinEstimatorPair& operator=(const JoinEstimatorPair&) = delete;

  /// Applies one arrival to the F-side / G-side synopsis.
  virtual void UpdateF(uint64_t value, int64_t weight) = 0;
  virtual void UpdateG(uint64_t value, int64_t weight) = 0;

  void UpdateF(const stream::StreamElement& e) { UpdateF(e.value, e.weight); }
  void UpdateG(const stream::StreamElement& e) { UpdateG(e.value, e.weight); }

  /// Folds whole frequency vectors in (linearity; see AgmsSketch::Absorb).
  /// The sampling estimator overrides this to expand to unit inserts, since
  /// a sample is not a linear synopsis.
  virtual void AbsorbF(const stream::FrequencyVector& frequencies);
  virtual void AbsorbG(const stream::FrequencyVector& frequencies);

  /// The COUNT(F ⋈ G) estimate from the current synopses.
  virtual StatusOr<double> Estimate() const = 0;

  /// The same estimate with provenance (per-copy estimates, spread,
  /// empirical CI, a-priori envelope, skim diagnostics where applicable);
  /// `estimate` is bit-identical to Estimate(). The default wraps
  /// Estimate() in a minimal report (no copies, degenerate CI) for methods
  /// without per-copy structure (sampling, partitioned AGMS); the sketch-
  /// backed pairs override it with their family's *WithReport variant.
  virtual StatusOr<EstimateReport> EstimateWithReport() const;

  /// Actual counters allocated per stream (>= spec.space_counters rounding
  /// aside; reported by the benches).
  virtual uint64_t SpaceCounters() const = 0;

  /// Total footprint in bytes of both synopses (heap included). Feeds the
  /// per-query memory gauges.
  virtual uint64_t MemoryBytes() const = 0;

  /// EstimatorKindName of the concrete method.
  virtual const char* Name() const = 0;

  /// Writes both synopses as one self-describing text record so the pair
  /// can be checkpointed. Default: UNIMPLEMENTED — the sampling and
  /// partitioned-AGMS methods do not support serialization (checkpointing
  /// lists them as unsupported rather than silently skipping them).
  virtual Status SerializeTo(std::ostream& out) const;

  /// Replaces the synopses of a freshly created pair (same spec and seed)
  /// with the state in a record written by SerializeTo. INVALID_ARGUMENT
  /// when the record's shape or seed disagrees with this pair.
  virtual Status RestoreFrom(std::istream& in);

  /// Adds another pair's synopses counter-for-counter (sketch linearity):
  /// merging shard-local pairs is bit-identical to having ingested all the
  /// shards' arrivals into one pair. INVALID_ARGUMENT when `other` is a
  /// different method or an incompatible shape/seed; UNIMPLEMENTED for the
  /// non-linear methods (sampling, partitioned AGMS). The distributed
  /// coordinator's merge step is built on this.
  virtual Status MergeFrom(const JoinEstimatorPair& other);

  /// Read-only health probes of both synopses, F first (role "f") then G
  /// (role "g"). Default: empty — the sampling and partitioned-AGMS methods
  /// have no counter arrays to probe. Never affects estimates.
  virtual std::vector<SynopsisHealth> HealthProbe() const { return {}; }

 protected:
  JoinEstimatorPair() = default;
};

/// Builds the synopsis pair described by `spec`, with all hash families
/// derived from `seed`. INVALID_ARGUMENT when the spec is inconsistent
/// (e.g., space too small for the requested shape).
StatusOr<std::unique_ptr<JoinEstimatorPair>> CreateJoinEstimatorPair(
    const EstimatorSpec& spec, uint64_t seed);

}  // namespace core
}  // namespace skimjoin

#endif  // SKIMJOIN_CORE_JOIN_ESTIMATORS_H_
