// The skimmed-sketch join-size estimator (§4.3, Fig. 4 of the paper) — the
// library's primary public API.
//
// A SkimmedSketch maintains, in one pass over a stream of inserts and
// deletes, a level-0 hash sketch (and, optionally, the dyadic auxiliary
// sketches that make skimming domain-scan-free). Estimating COUNT(F ⋈ G)
// from two compatible SkimmedSketches:
//
//   1. skim the dense frequencies Ê_F, Ê_G out of (copies of) both level-0
//      sketches with SKIMDENSE,
//   2. compute the dense·dense subjoin exactly,
//   3. estimate dense·sparse and sparse·dense with ESTSUBJOINSIZE,
//   4. estimate sparse·sparse with the bucket-product estimator,
//   5. return the sum.
//
// Estimation never mutates the sketches (skimming happens on copies), so a
// sketch can keep absorbing stream elements after being queried.

#ifndef SKIMJOIN_CORE_SKIMMED_SKETCH_H_
#define SKIMJOIN_CORE_SKIMMED_SKETCH_H_

#include <cstdint>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <span>
#include <vector>

#include "core/dyadic_skim.h"
#include "core/skim.h"
#include "sketch/hash_sketch.h"
#include "stream/frequency_vector.h"
#include "stream/stream_element.h"
#include "util/estimate_report.h"
#include "util/status.h"

namespace skimjoin {
namespace core {

/// Configuration of a SkimmedSketch.
struct SkimmedSketchConfig {
  /// Stream domain [0, domain_size). Must be a power of two when
  /// use_dyadic_skim is set (dyadic intervals halve the domain per level).
  uint64_t domain_size = 1u << 16;

  /// s: hash tables in the level-0 sketch (odd keeps medians unambiguous).
  uint64_t num_tables = 7;

  /// b: buckets per level-0 table. The skimming threshold and the
  /// sparse-subjoin error both scale like 1/sqrt(b).
  uint64_t num_buckets = 512;

  /// Maintain the dyadic auxiliary sketches (O(s·log m) per element) so that
  /// skimming costs O((n/T)·log m) instead of a full domain scan. Accuracy
  /// benchmarks disable this and use the domain scan so that *all* counters
  /// at a given space budget go to the level-0 sketch.
  bool use_dyadic_skim = true;

  /// Buckets per auxiliary (level >= 1) table; 0 means num_buckets.
  uint64_t dyadic_num_buckets = 0;

  /// c in the skim threshold T = max(min_threshold,
  /// c·sqrt(max(F2̂, 0)/num_buckets)); F2̂ is the sketch's own self-join
  /// estimate. This is the Θ(n/sqrt(b)) scale of §4.2; the constant is an
  /// ablation knob (bench_ablation).
  double threshold_scale = 2.0;

  /// Floor for the skim threshold (values this frequent are never "dense"
  /// by less).
  int64_t min_threshold = 2;

  /// Dyadic search slack in (0, 1]: an interval is expanded when its
  /// estimate passes slack·T. Smaller improves dense-value recall at extra
  /// search cost.
  double recurse_slack = 0.5;

  /// Conservative-skim margin in [0, 1): a dense value's skimmed amount is
  /// its estimate minus skim_margin·T, keeping Ê ≤ f with high probability
  /// (the Theorem 4 variant) at the cost of extra residual mass. 0 (the
  /// default) skims the full estimate, exactly as in Fig. 3.
  double skim_margin = 0.0;
};

/// Per-subjoin breakdown of one join-size estimate, for diagnostics,
/// examples and the benchmark tables.
struct JoinEstimateBreakdown {
  double dense_dense = 0.0;
  double dense_sparse = 0.0;
  double sparse_dense = 0.0;
  double sparse_sparse = 0.0;
  int64_t threshold_f = 0;
  int64_t threshold_g = 0;
  uint64_t dense_count_f = 0;
  uint64_t dense_count_g = 0;

  double Total() const {
    return dense_dense + dense_sparse + sparse_dense + sparse_sparse;
  }
};

/// One skimmed-sketch synopsis for one stream. Copyable.
class SkimmedSketch {
 public:
  /// Validates `config`; families derive from `seed`. Two sketches with
  /// equal (config, seed) are compatible for join estimation.
  static StatusOr<SkimmedSketch> Create(const SkimmedSketchConfig& config,
                                        uint64_t seed);

  /// Applies one stream arrival: O(num_tables) without dyadic maintenance,
  /// O(num_tables · log2(domain_size)) with it. An out-of-domain value is
  /// NOT an internal invariant — streams carry whatever the network
  /// delivers — so it is dropped and counted in dropped_updates() rather
  /// than aborting the process.
  void Update(uint64_t value, int64_t weight);

  void Update(const stream::StreamElement& element) {
    Update(element.value, element.weight);
  }

  /// Applies a batch of arrivals. Counter-for-counter identical to calling
  /// Update element by element, but hoists hash-family state out of the
  /// per-element loop and amortizes the dyadic-level traversal across the
  /// whole batch — the ingest fast path. Out-of-domain elements are dropped
  /// and counted exactly as in Update.
  void UpdateBatch(std::span<const stream::StreamElement> elements);

  /// Stream arrivals dropped because their value fell outside
  /// [0, domain_size). A nonzero count flags an upstream data problem; the
  /// estimates remain valid for the in-domain sub-stream.
  uint64_t dropped_updates() const { return dropped_updates_; }

  /// Selects fast-path kernels for the level-0 sketch and every sketched
  /// dyadic level (DESIGN.md §10). Bit-identical under any setting; plan
  /// caches are rebuilt, restarting the hit/miss tallies.
  void SetKernelOptions(const sketch::KernelOptions& options);

  const sketch::KernelOptions& kernel_options() const {
    return level0_.kernel_options();
  }

  /// Plan-cache tallies summed over level 0 and the sketched dyadic levels;
  /// feed the `ingest.<stream>.hash_cache_*` engine metrics.
  uint64_t hash_cache_hits() const;
  uint64_t hash_cache_misses() const;

  /// Zeroes every counter and the dropped-update count, returning the
  /// sketch to its freshly created state (hash families untouched).
  void Reset();

  /// Folds a whole frequency vector in (linearity).
  void Absorb(const stream::FrequencyVector& frequencies);

  /// Merges a compatible sketch (summarizes the concatenated streams).
  /// Pre-condition: CompatibleWith(other).
  void Merge(const SkimmedSketch& other);

  /// The full ESTSKIMJOINSIZE estimate of COUNT(F ⋈ G). INVALID_ARGUMENT
  /// for incompatible synopses.
  static StatusOr<double> EstimateJoinSize(const SkimmedSketch& f,
                                           const SkimmedSketch& g);

  /// As EstimateJoinSize, but returns the per-subjoin breakdown.
  static StatusOr<JoinEstimateBreakdown> EstimateJoinSizeDetailed(
      const SkimmedSketch& f, const SkimmedSketch& g);

  /// ESTSKIMJOINSIZE with full provenance: per-table copy estimates
  /// (dense·dense plus table j's share of each estimated sub-join), the
  /// complete skim diagnostics (thresholds, dense counts, residual L2 mass
  /// before/after skimming, sub-join contributions), and the §3.2 a-priori
  /// envelope — the sum of the three estimated sub-joins' error terms,
  /// (4/sqrt(b))·(sqrt(F̂2(Ê_F)·F̂2(r_G)) + sqrt(F̂2(r_F)·F̂2(Ê_G)) +
  /// sqrt(F̂2(r_F)·F̂2(r_G))), which collapses to the paper's
  /// ε·(self-join product)^(1/2) with residual norms in place of full ones.
  /// `estimate` is bit-identical to EstimateJoinSize.
  static StatusOr<EstimateReport> EstimateJoinSizeWithReport(
      const SkimmedSketch& f, const SkimmedSketch& g);

  /// Self-join (F2) estimate with skimming — the F = G special case.
  double EstimateSelfJoinSize() const;

  /// Self-join provenance (the F = G case of EstimateJoinSizeWithReport);
  /// `estimate` bit-identical to EstimateSelfJoinSize.
  EstimateReport EstimateSelfJoinSizeWithReport() const;

  /// COUNTSKETCH point estimate of one value's frequency.
  int64_t EstimatePointFrequency(uint64_t value) const {
    return level0_.PointEstimate(value);
  }

  /// Estimated total frequency of the value range [lo, hi] (inclusive),
  /// answered from the canonical dyadic cover — O(log m) interval point
  /// estimates instead of hi−lo+1 value estimates. Requires
  /// use_dyadic_skim; FAILED_PRECONDITION otherwise. OUT_OF_RANGE when the
  /// range leaves the domain; INVALID_ARGUMENT when lo > hi.
  StatusOr<int64_t> EstimateRangeFrequency(uint64_t lo, uint64_t hi) const;

  /// Estimated φ-quantile of the stream's value distribution: the smallest
  /// value v whose estimated prefix frequency [0, v] reaches φ·n (n taken
  /// from the top dyadic level). Binary descent over the dyadic tree,
  /// O(log m) point estimates. Requires use_dyadic_skim and insert-dominated
  /// streams (n > 0); pre-condition 0 < phi <= 1.
  StatusOr<uint64_t> EstimateQuantile(double phi) const;

  /// All values estimated at |frequency| >= threshold, with their estimates
  /// (the skim step exposed as a heavy-hitter query; does not mutate the
  /// sketch). Pre-condition: threshold >= 1.
  DenseFrequencies HeavyHitters(int64_t threshold) const;

  /// The data-adaptive skim threshold T the estimator would use right now.
  int64_t SkimThreshold() const;

  bool CompatibleWith(const SkimmedSketch& other) const;

  /// Writes a self-describing text record (config, seed, all counters) so
  /// per-site synopses can be shipped to a coordinator, deserialized,
  /// merged, and joined — the distributed-monitoring deployment the
  /// paper's introduction motivates. See examples/distributed_merge.cpp.
  Status SerializeTo(std::ostream& out) const;

  /// Reads a record written by SerializeTo.
  static StatusOr<SkimmedSketch> DeserializeFrom(std::istream& in);

  const SkimmedSketchConfig& config() const { return config_; }
  uint64_t seed() const { return seed_; }

  /// Total counters held, including any dyadic auxiliary levels (the space
  /// the benches account for).
  uint64_t TotalCounters() const;

  /// Total footprint in bytes (level-0 sketch, dyadic levels, hash
  /// families). Feeds the per-synopsis memory gauges.
  uint64_t MemoryBytes() const;

  /// The level-0 sketch. Exposed for white-box tests.
  const sketch::HashSketch& level0() const { return level0_; }

  /// Monotone mutation epoch, forwarded from the level-0 sketch (every
  /// answer-changing mutation touches level 0). Derived state — never
  /// serialized, ignored by CompatibleWith. Read-side caches use it to
  /// detect staleness in O(1); see sketch::SlimView and query::QueryCache.
  uint64_t update_epoch() const { return level0_.update_epoch(); }

  /// Result of skimming a COPY of the level-0 sketch: the dense vector, the
  /// residual ("sparse") sketch, and the threshold used. The slim half of
  /// the skimmed-join read path (DESIGN.md §11): skim once per refresh,
  /// reuse across every join until the fat sketch's epoch advances.
  struct SkimOutput {
    DenseFrequencies dense;
    sketch::HashSketch skimmed;
    int64_t threshold;
  };

  /// SKIMDENSE on a copy; the sketch itself is never mutated.
  SkimOutput Skim() const;

  /// Read-only health probe: the level-0 counter probe (occupancy,
  /// saturation headroom, collision pressure) plus a fresh skim's dense
  /// fraction (|dense| / domain) and residual ratio (residual L2 / level-0
  /// L2). When a reporting estimate has run, the skim fields recorded at
  /// that SKIMDENSE time ride along so drift since the last estimate is
  /// visible. Runs SKIMDENSE on a copy — estimate-priced, not
  /// ingest-priced — and never updates the recorded baseline.
  SynopsisHealth HealthProbe() const;

  /// Probe of the dyadic auxiliary levels; std::nullopt when
  /// use_dyadic_skim is off. See DyadicSkimmer::HealthProbe.
  std::optional<SynopsisHealth> DyadicHealthProbe() const;

  /// ESTSKIMJOINSIZE from two precomputed skims. Because each side's skim
  /// is computed independently of the other (Skim() takes no cross-side
  /// input), this is bit-identical to EstimateJoinSize on the fat pair as
  /// of the epochs the skims were taken at. INVALID_ARGUMENT when the
  /// residual sketches are incompatible.
  static StatusOr<double> EstimateJoinSizeFromSkims(const SkimOutput& skim_f,
                                                    const SkimOutput& skim_g);

 private:
  SkimmedSketch(const SkimmedSketchConfig& config, uint64_t seed,
                sketch::HashSketch level0, std::optional<DyadicSkimmer> dyadic);

  /// The per-table sub-join vectors behind one breakdown, kept so the
  /// report path can derive its copy estimates from the same intermediates.
  struct SubJoinTables {
    std::vector<double> dense_sparse;
    std::vector<double> sparse_dense;
    std::vector<double> sparse_sparse;
  };

  /// Steps 2–5 of ESTSKIMJOINSIZE from two precomputed skims. Every entry
  /// point (Detailed, WithReport, FromSkims) reduces to this one function,
  /// which is what keeps them mutually bit-identical. `tables`, when
  /// non-null, receives the per-table vectors.
  static JoinEstimateBreakdown BreakdownFromSkims(const SkimOutput& skim_f,
                                                  const SkimOutput& skim_g,
                                                  SubJoinTables* tables);

  /// Shared core of Detailed / WithReport estimation: computes the
  /// breakdown from per-table sub-join vectors and, when `report` is
  /// non-null, fills its copy estimates, skim diagnostics, and a-priori
  /// bound from the same intermediates (keeping both paths bit-identical).
  static StatusOr<JoinEstimateBreakdown> EstimateDetailedImpl(
      const SkimmedSketch& f, const SkimmedSketch& g, EstimateReport* report);

  SkimmedSketchConfig config_;
  uint64_t seed_;
  sketch::HashSketch level0_;
  std::optional<DyadicSkimmer> dyadic_;
  uint64_t dropped_updates_ = 0;
  // Skim shape recorded by the last REPORTING estimate (EstimateDetailedImpl
  // with a report), read back by HealthProbe to expose drift since that
  // estimate. Derived observability state: mutable because the estimate
  // entry points take const sketches, never serialized, ignored by
  // CompatibleWith, NaN until a reporting estimate runs.
  mutable double dense_fraction_at_estimate_ =
      std::numeric_limits<double>::quiet_NaN();
  mutable double residual_ratio_at_estimate_ =
      std::numeric_limits<double>::quiet_NaN();
};

}  // namespace core
}  // namespace skimjoin

#endif  // SKIMJOIN_CORE_SKIMMED_SKETCH_H_
