// Continuous top-k frequent-value tracking — the problem the hash-sketch
// (COUNTSKETCH) data structure was originally built for [Charikar–Chen–
// Farach-Colton '02], provided here as a first-class API on top of the
// same structure the join estimator uses.
//
// A candidate set of at most k values rides alongside the sketch: each
// arrival re-estimates the arriving value and promotes it into the set when
// it beats the current minimum. Deletions demote values naturally (their
// estimates shrink). Answers re-estimate every candidate so reported
// frequencies are current.

#ifndef SKIMJOIN_CORE_TOP_K_H_
#define SKIMJOIN_CORE_TOP_K_H_

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <utility>
#include <vector>

#include "sketch/hash_sketch.h"
#include "stream/stream_element.h"
#include "util/status.h"

namespace skimjoin {
namespace core {

/// Streaming tracker of the (approximately) k most frequent values.
class TopKTracker {
 public:
  /// Tracks up to `k` values with a hash sketch shaped by `sketch_config`.
  /// INVALID_ARGUMENT if k == 0 or the sketch config is invalid.
  static StatusOr<TopKTracker> Create(
      uint64_t k, const sketch::HashSketchConfig& sketch_config,
      uint64_t seed);

  /// Applies one arrival and refreshes the candidate set: O(num_tables)
  /// plus O(k) on candidate replacement.
  void Update(uint64_t value, int64_t weight);

  void Update(const stream::StreamElement& element) {
    Update(element.value, element.weight);
  }

  /// The current top candidates with freshly re-estimated frequencies,
  /// sorted by estimate descending (ties by value ascending). At most k
  /// entries; values whose estimate has dropped to <= 0 are omitted.
  std::vector<std::pair<uint64_t, int64_t>> TopK() const;

  uint64_t k() const { return k_; }

  /// The underlying sketch (point estimates, space accounting).
  const sketch::HashSketch& sketch() const { return sketch_; }

  /// Total footprint in bytes: sketch plus candidate map (each tree node
  /// costed at its payload plus pointer overhead). Feeds the per-synopsis
  /// memory gauges.
  uint64_t MemoryBytes() const;

  /// Writes a self-describing text record (k, sketch, candidate set).
  Status SerializeTo(std::ostream& out) const;

  /// Reads a record written by SerializeTo. INVALID_ARGUMENT on a malformed
  /// or truncated record.
  static StatusOr<TopKTracker> DeserializeFrom(std::istream& in);

 private:
  TopKTracker(uint64_t k, sketch::HashSketch sketch);

  uint64_t k_;
  sketch::HashSketch sketch_;
  // Candidate set: value → last observed estimate (refreshed on answers).
  // Ordered map so candidate scans (weakest-candidate replacement) visit
  // values in a deterministic order — a restored tracker then evolves
  // bit-identically to one that never stopped.
  std::map<uint64_t, int64_t> candidates_;
};

}  // namespace core
}  // namespace skimjoin

#endif  // SKIMJOIN_CORE_TOP_K_H_
