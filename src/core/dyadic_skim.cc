#include "core/dyadic_skim.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <utility>

#include "sketch/serial_limits.h"
#include "sketch/sketch_seed.h"
#include "util/logging.h"

namespace skimjoin {
namespace core {

namespace {

bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

uint64_t Log2(uint64_t x) {
  uint64_t log = 0;
  while ((uint64_t{1} << log) < x) ++log;
  return log;
}

uint64_t LevelSeed(uint64_t seed, uint64_t level) {
  return Mix64(seed ^
               Mix64(static_cast<uint64_t>(sketch::FamilyTag::kDyadicLevel) *
                     0x100000001B3ull) ^
               level);
}

}  // namespace

DyadicSkimmer::DyadicSkimmer(uint64_t domain_size, std::vector<Level> levels)
    : domain_size_(domain_size), levels_(std::move(levels)) {}

StatusOr<DyadicSkimmer> DyadicSkimmer::Create(
    uint64_t domain_size, const sketch::HashSketchConfig& upper_config,
    uint64_t seed) {
  if (!IsPowerOfTwo(domain_size) || domain_size < 2) {
    return InvalidArgumentError(
        "dyadic skimming requires a power-of-two domain size >= 2");
  }
  if (upper_config.num_tables < 1 || upper_config.num_buckets < 1) {
    return InvalidArgumentError(
        "dyadic level config requires num_tables >= 1 and num_buckets >= 1");
  }
  const uint64_t num_levels = Log2(domain_size);
  std::vector<Level> levels;
  levels.reserve(num_levels);
  for (uint64_t l = 1; l <= num_levels; ++l) {
    const uint64_t prefixes = domain_size >> l;
    Level level;
    if (prefixes <= upper_config.num_buckets) {
      // Exact representation: same space as one sketch table, zero error.
      level.exact.assign(prefixes, 0);
    } else {
      StatusOr<sketch::HashSketch> sketch =
          sketch::HashSketch::Create(upper_config, LevelSeed(seed, l));
      SKIMJOIN_RETURN_IF_ERROR(sketch.status());
      level.sketch = *std::move(sketch);
    }
    levels.push_back(std::move(level));
  }
  return DyadicSkimmer(domain_size, std::move(levels));
}

void DyadicSkimmer::Update(uint64_t value, int64_t weight) {
  SKIMJOIN_CHECK_LT(value, domain_size_);
  for (uint64_t l = 1; l <= levels_.size(); ++l) {
    levels_[l - 1].Add(value >> l, weight);
  }
}

void DyadicSkimmer::UpdateBatch(
    std::span<const stream::StreamElement> elements) {
  for (const stream::StreamElement& element : elements) {
    SKIMJOIN_CHECK_LT(element.value, domain_size_);
  }
  // Prefix elements for the current level, reused across levels. Each level
  // halves the previous level's prefixes, so shifting the scratch in place
  // by one more bit per level avoids re-deriving prefixes from scratch.
  // thread_local: no allocation per batch once warm, and each ingest worker
  // thread gets its own copy.
  static thread_local std::vector<stream::StreamElement> shifted;
  shifted.assign(elements.begin(), elements.end());
  for (uint64_t l = 1; l <= levels_.size(); ++l) {
    for (stream::StreamElement& element : shifted) element.value >>= 1;
    Level& level = levels_[l - 1];
    if (level.sketch.has_value()) {
      level.sketch->UpdateBatch(shifted);
    } else {
      for (const stream::StreamElement& element : shifted) {
        level.exact[element.value] += element.weight;
      }
    }
  }
}

void DyadicSkimmer::SetKernelOptions(const sketch::KernelOptions& options) {
  for (uint64_t l = 1; l <= levels_.size(); ++l) {
    Level& level = levels_[l - 1];
    if (!level.sketch.has_value()) continue;
    // Level l sees only the domain_size >> l distinct prefixes, so a plan
    // cache larger than that is pure wasted footprint — clamp per level.
    sketch::KernelOptions level_options = options;
    const uint64_t prefixes = domain_size_ >> l;
    if (level_options.plan_cache_slots > prefixes) {
      level_options.plan_cache_slots = prefixes;
    }
    level.sketch->SetKernelOptions(level_options);
  }
}

uint64_t DyadicSkimmer::hash_cache_hits() const {
  uint64_t total = 0;
  for (const Level& level : levels_) {
    if (level.sketch.has_value()) total += level.sketch->hash_cache_hits();
  }
  return total;
}

uint64_t DyadicSkimmer::hash_cache_misses() const {
  uint64_t total = 0;
  for (const Level& level : levels_) {
    if (level.sketch.has_value()) total += level.sketch->hash_cache_misses();
  }
  return total;
}

void DyadicSkimmer::Reset() {
  for (Level& level : levels_) {
    if (level.sketch.has_value()) {
      level.sketch->Reset();
    } else {
      level.exact.assign(level.exact.size(), 0);
    }
  }
}

void DyadicSkimmer::Absorb(const stream::FrequencyVector& frequencies) {
  const auto& counts = frequencies.counts();
  SKIMJOIN_CHECK_LE(counts.size(), domain_size_);
  for (uint64_t value = 0; value < counts.size(); ++value) {
    if (counts[value] != 0) Update(value, counts[value]);
  }
}

void DyadicSkimmer::Merge(const DyadicSkimmer& other) {
  SKIMJOIN_CHECK_EQ(domain_size_, other.domain_size_);
  SKIMJOIN_CHECK_EQ(levels_.size(), other.levels_.size());
  for (size_t i = 0; i < levels_.size(); ++i) {
    Level& mine = levels_[i];
    const Level& theirs = other.levels_[i];
    SKIMJOIN_CHECK_EQ(mine.sketch.has_value(), theirs.sketch.has_value());
    if (mine.sketch.has_value()) {
      mine.sketch->Merge(*theirs.sketch);
    } else {
      SKIMJOIN_CHECK_EQ(mine.exact.size(), theirs.exact.size());
      for (size_t p = 0; p < mine.exact.size(); ++p) {
        mine.exact[p] += theirs.exact[p];
      }
    }
  }
}

int64_t DyadicSkimmer::PointEstimate(uint64_t level, uint64_t prefix) const {
  SKIMJOIN_CHECK_GE(level, 1u);
  SKIMJOIN_CHECK_LE(level, levels_.size());
  SKIMJOIN_CHECK_LT(prefix, domain_size_ >> level);
  const Level& l = levels_[level - 1];
  if (l.sketch.has_value()) return l.sketch->PointEstimate(prefix);
  return l.exact[prefix];
}

bool DyadicSkimmer::LevelIsExact(uint64_t level) const {
  SKIMJOIN_CHECK_GE(level, 1u);
  SKIMJOIN_CHECK_LE(level, levels_.size());
  return !levels_[level - 1].sketch.has_value();
}

std::vector<uint64_t> DyadicSkimmer::FindCandidates(int64_t threshold,
                                                    double slack) const {
  SKIMJOIN_CHECK_GE(threshold, 1);
  SKIMJOIN_CHECK(slack > 0.0 && slack <= 1.0);
  const auto cutoff =
      static_cast<int64_t>(std::ceil(slack * static_cast<double>(threshold)));
  std::vector<uint64_t> candidates;
  struct Node {
    uint64_t level;
    uint64_t prefix;
  };
  std::vector<Node> stack;
  const uint64_t top = levels_.size();
  const uint64_t top_prefixes = domain_size_ >> top;  // == 1
  for (uint64_t p = 0; p < top_prefixes; ++p) stack.push_back({top, p});
  while (!stack.empty()) {
    const Node node = stack.back();
    stack.pop_back();
    const int64_t estimate = PointEstimate(node.level, node.prefix);
    if (std::llabs(estimate) < cutoff) continue;
    if (node.level == 1) {
      candidates.push_back(node.prefix * 2);
      candidates.push_back(node.prefix * 2 + 1);
      continue;
    }
    stack.push_back({node.level - 1, node.prefix * 2});
    stack.push_back({node.level - 1, node.prefix * 2 + 1});
  }
  return candidates;
}

void DyadicSkimmer::SubtractDense(uint64_t value, int64_t frequency) {
  Update(value, -frequency);
}

Status DyadicSkimmer::SerializeTo(std::ostream& out) const {
  out << "skimjoin.dyadic_skimmer v3\n" << domain_size_ << '\n';
  for (const Level& level : levels_) {
    if (level.sketch.has_value()) {
      out << "sketch\n";
      SKIMJOIN_RETURN_IF_ERROR(level.sketch->SerializeTo(out));
    } else {
      out << "exact " << level.exact.size() << '\n';
      for (size_t p = 0; p < level.exact.size(); ++p) {
        out << level.exact[p] << (p + 1 == level.exact.size() ? '\n' : ' ');
      }
    }
  }
  out << "end\n";
  if (!out) return IoError("dyadic-skimmer serialization failed");
  return OkStatus();
}

StatusOr<DyadicSkimmer> DyadicSkimmer::DeserializeFrom(std::istream& in) {
  std::string tag, version;
  if (!(in >> tag >> version) || tag != "skimjoin.dyadic_skimmer" ||
      version != "v3") {
    return InvalidArgumentError("not a skimjoin dyadic-skimmer v3 record");
  }
  uint64_t domain_size = 0;
  if (!(in >> domain_size) || !IsPowerOfTwo(domain_size) || domain_size < 2) {
    return InvalidArgumentError("malformed dyadic-skimmer header");
  }
  const uint64_t num_levels = Log2(domain_size);
  std::vector<Level> levels;
  levels.reserve(num_levels);
  for (uint64_t l = 1; l <= num_levels; ++l) {
    std::string kind;
    if (!(in >> kind)) {
      return InvalidArgumentError("truncated dyadic-skimmer level block");
    }
    Level level;
    if (kind == "sketch") {
      StatusOr<sketch::HashSketch> sketch =
          sketch::HashSketch::DeserializeFrom(in);
      SKIMJOIN_RETURN_IF_ERROR(sketch.status());
      level.sketch = *std::move(sketch);
    } else if (kind == "exact") {
      uint64_t size = 0;
      if (!(in >> size) || size != (domain_size >> l)) {
        return InvalidArgumentError("malformed exact dyadic level header");
      }
      // A hostile record can claim a huge power-of-two domain whose shallow
      // levels would then be "exact" blocks of billions of counters; cap the
      // allocation like any other untrusted counter block.
      SKIMJOIN_RETURN_IF_ERROR(
          sketch::CheckDeserializeDims(1, size, "exact dyadic level"));
      level.exact.resize(size);
      for (int64_t& counter : level.exact) {
        if (!(in >> counter)) {
          return InvalidArgumentError("truncated exact dyadic level block");
        }
      }
    } else {
      return InvalidArgumentError("unknown dyadic level kind: " + kind);
    }
    levels.push_back(std::move(level));
  }
  std::string sentinel;
  if (!(in >> sentinel) || sentinel != "end") {
    return InvalidArgumentError(
        "dyadic-skimmer record missing its end sentinel");
  }
  return DyadicSkimmer(domain_size, std::move(levels));
}

uint64_t DyadicSkimmer::TotalCounters() const {
  uint64_t total = 0;
  for (const Level& level : levels_) {
    total += level.sketch.has_value()
                 ? level.sketch->config().TotalCounters()
                 : level.exact.size();
  }
  return total;
}

SynopsisHealth DyadicSkimmer::HealthProbe() const {
  // Sketched levels all share upper_config, so their row-major counter
  // arrays concatenate into one uniform (levels · num_tables)-table layout.
  std::vector<int64_t> counters;
  uint64_t tables = 0;
  for (const Level& level : levels_) {
    if (!level.sketch.has_value()) continue;
    const std::span<const int64_t> rows = level.sketch->CounterArray();
    counters.insert(counters.end(), rows.begin(), rows.end());
    tables += level.sketch->config().num_tables;
  }
  if (counters.empty()) {
    // Tiny domain: every level exact. Probe the exact arrays for saturation
    // headroom; occupancy inversion does not apply.
    for (const Level& level : levels_) {
      counters.insert(counters.end(), level.exact.begin(), level.exact.end());
    }
    SynopsisHealth health = ProbeCounters(counters, 1);
    health.kind = "dyadic";
    health.collision_pressure = std::numeric_limits<double>::quiet_NaN();
    return health;
  }
  SynopsisHealth health = ProbeCounters(counters, tables);
  health.kind = "dyadic";
  return health;
}

uint64_t DyadicSkimmer::MemoryBytes() const {
  uint64_t total = sizeof(*this);
  for (const Level& level : levels_) {
    total += sizeof(Level) + level.exact.capacity() * sizeof(int64_t);
    if (level.sketch.has_value()) total += level.sketch->MemoryBytes();
  }
  return total;
}

}  // namespace core
}  // namespace skimjoin
