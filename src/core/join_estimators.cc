#include "core/join_estimators.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/skimmed_sketch.h"
#include "sketch/agms_sketch.h"
#include "sketch/count_min_sketch.h"
#include "sketch/hash_sketch.h"
#include "sketch/reservoir_sample.h"
#include "util/logging.h"

namespace skimjoin {
namespace core {

const char* EstimatorKindName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kAgms:
      return "agms";
    case EstimatorKind::kHashSketch:
      return "hash-sketch";
    case EstimatorKind::kSkimmedSketch:
      return "skimmed";
    case EstimatorKind::kCountMin:
      return "count-min";
    case EstimatorKind::kSampling:
      return "sampling";
    case EstimatorKind::kPartitionedAgms:
      return "partitioned-agms";
  }
  return "unknown";
}

void JoinEstimatorPair::AbsorbF(const stream::FrequencyVector& frequencies) {
  const auto& counts = frequencies.counts();
  for (uint64_t value = 0; value < counts.size(); ++value) {
    if (counts[value] != 0) UpdateF(value, counts[value]);
  }
}

void JoinEstimatorPair::AbsorbG(const stream::FrequencyVector& frequencies) {
  const auto& counts = frequencies.counts();
  for (uint64_t value = 0; value < counts.size(); ++value) {
    if (counts[value] != 0) UpdateG(value, counts[value]);
  }
}

StatusOr<EstimateReport> JoinEstimatorPair::EstimateWithReport() const {
  StatusOr<double> estimate = Estimate();
  SKIMJOIN_RETURN_IF_ERROR(estimate.status());
  EstimateReport report;
  report.method = Name();
  report.estimate = *estimate;
  FinishReportFromCopies(&report);
  return report;
}

Status JoinEstimatorPair::SerializeTo(std::ostream&) const {
  return UnimplementedError(std::string("join estimator '") + Name() +
                            "' does not support serialization");
}

Status JoinEstimatorPair::RestoreFrom(std::istream&) {
  return UnimplementedError(std::string("join estimator '") + Name() +
                            "' does not support serialization");
}

Status JoinEstimatorPair::MergeFrom(const JoinEstimatorPair&) {
  return UnimplementedError(std::string("join estimator '") + Name() +
                            "' does not support merging");
}

namespace {

// Shared framing for the serializable pair classes: one tagged header line
// naming the concrete method, then the F and G synopsis records.
Status WritePairHeader(std::ostream& out, const char* kind) {
  out << "skimjoin.join_pair v1 " << kind << '\n';
  if (!out) return IoError("join-pair serialization failed");
  return OkStatus();
}

Status ReadPairHeader(std::istream& in, const char* kind) {
  std::string tag, version, recorded_kind;
  if (!(in >> tag >> version >> recorded_kind) ||
      tag != "skimjoin.join_pair" || version != "v1") {
    return InvalidArgumentError("not a skimjoin join-pair v1 record");
  }
  if (recorded_kind != kind) {
    return InvalidArgumentError("join-pair record holds method '" +
                                recorded_kind + "', expected '" + kind + "'");
  }
  return OkStatus();
}

Status MergeMismatch(const char* kind) {
  return InvalidArgumentError(
      std::string("cannot merge into join estimator '") + kind +
      "': peer is a different method or an incompatible shape/seed");
}

// Shared by the sketch-backed pairs' HealthProbe overrides: probe both
// synopses and tag which stream each probe belongs to.
template <typename Sketch>
std::vector<SynopsisHealth> ProbePair(const Sketch& f, const Sketch& g) {
  std::vector<SynopsisHealth> probes;
  probes.reserve(2);
  probes.push_back(f.HealthProbe());
  probes.back().role = "f";
  probes.push_back(g.HealthProbe());
  probes.back().role = "g";
  return probes;
}

template <typename Sketch>
Status SerializePair(std::ostream& out, const char* kind, const Sketch& f,
                     const Sketch& g) {
  SKIMJOIN_RETURN_IF_ERROR(WritePairHeader(out, kind));
  SKIMJOIN_RETURN_IF_ERROR(f.SerializeTo(out));
  return g.SerializeTo(out);
}

template <typename Sketch>
Status RestorePair(std::istream& in, const char* kind, Sketch* f, Sketch* g) {
  SKIMJOIN_RETURN_IF_ERROR(ReadPairHeader(in, kind));
  SKIMJOIN_ASSIGN_OR_RETURN(Sketch restored_f, Sketch::DeserializeFrom(in));
  SKIMJOIN_ASSIGN_OR_RETURN(Sketch restored_g, Sketch::DeserializeFrom(in));
  // The pair being restored into was created from the checkpointed spec +
  // seed, so a shape/seed mismatch means the record belongs to a different
  // query — refuse rather than splice in foreign hash families.
  if (!restored_f.CompatibleWith(*f) || !restored_g.CompatibleWith(*g)) {
    return InvalidArgumentError(
        std::string("join-pair record for '") + kind +
        "' is incompatible with this pair's configuration");
  }
  *f = std::move(restored_f);
  *g = std::move(restored_g);
  return OkStatus();
}

class AgmsPair final : public JoinEstimatorPair {
 public:
  AgmsPair(sketch::AgmsSketch f, sketch::AgmsSketch g)
      : f_(std::move(f)), g_(std::move(g)) {}

  void UpdateF(uint64_t value, int64_t weight) override {
    f_.Update(value, weight);
  }
  void UpdateG(uint64_t value, int64_t weight) override {
    g_.Update(value, weight);
  }
  StatusOr<double> Estimate() const override {
    return sketch::AgmsSketch::EstimateJoinSize(f_, g_);
  }
  StatusOr<EstimateReport> EstimateWithReport() const override {
    return sketch::AgmsSketch::EstimateJoinSizeWithReport(f_, g_);
  }
  uint64_t SpaceCounters() const override {
    return f_.config().TotalCounters();
  }
  uint64_t MemoryBytes() const override {
    return f_.MemoryBytes() + g_.MemoryBytes();
  }
  const char* Name() const override {
    return EstimatorKindName(EstimatorKind::kAgms);
  }
  Status SerializeTo(std::ostream& out) const override {
    return SerializePair(out, Name(), f_, g_);
  }
  Status RestoreFrom(std::istream& in) override {
    return RestorePair(in, Name(), &f_, &g_);
  }
  Status MergeFrom(const JoinEstimatorPair& other) override {
    const auto* peer = dynamic_cast<const AgmsPair*>(&other);
    if (peer == nullptr || !f_.CompatibleWith(peer->f_) ||
        !g_.CompatibleWith(peer->g_)) {
      return MergeMismatch(Name());
    }
    f_.Merge(peer->f_);
    g_.Merge(peer->g_);
    return OkStatus();
  }

  std::vector<SynopsisHealth> HealthProbe() const override {
    return ProbePair(f_, g_);
  }

 private:
  sketch::AgmsSketch f_;
  sketch::AgmsSketch g_;
};

class HashSketchPair final : public JoinEstimatorPair {
 public:
  HashSketchPair(sketch::HashSketch f, sketch::HashSketch g)
      : f_(std::move(f)), g_(std::move(g)) {}

  void UpdateF(uint64_t value, int64_t weight) override {
    f_.Update(value, weight);
  }
  void UpdateG(uint64_t value, int64_t weight) override {
    g_.Update(value, weight);
  }
  StatusOr<double> Estimate() const override {
    return sketch::HashSketch::EstimateJoinSize(f_, g_);
  }
  StatusOr<EstimateReport> EstimateWithReport() const override {
    return sketch::HashSketch::EstimateJoinSizeWithReport(f_, g_);
  }
  uint64_t SpaceCounters() const override {
    return f_.config().TotalCounters();
  }
  uint64_t MemoryBytes() const override {
    return f_.MemoryBytes() + g_.MemoryBytes();
  }
  const char* Name() const override {
    return EstimatorKindName(EstimatorKind::kHashSketch);
  }
  Status SerializeTo(std::ostream& out) const override {
    return SerializePair(out, Name(), f_, g_);
  }
  Status RestoreFrom(std::istream& in) override {
    return RestorePair(in, Name(), &f_, &g_);
  }
  Status MergeFrom(const JoinEstimatorPair& other) override {
    const auto* peer = dynamic_cast<const HashSketchPair*>(&other);
    if (peer == nullptr || !f_.CompatibleWith(peer->f_) ||
        !g_.CompatibleWith(peer->g_)) {
      return MergeMismatch(Name());
    }
    f_.Merge(peer->f_);
    g_.Merge(peer->g_);
    return OkStatus();
  }

  std::vector<SynopsisHealth> HealthProbe() const override {
    return ProbePair(f_, g_);
  }

 private:
  sketch::HashSketch f_;
  sketch::HashSketch g_;
};

class SkimmedPair final : public JoinEstimatorPair {
 public:
  SkimmedPair(SkimmedSketch f, SkimmedSketch g)
      : f_(std::move(f)), g_(std::move(g)) {}

  void UpdateF(uint64_t value, int64_t weight) override {
    f_.Update(value, weight);
  }
  void UpdateG(uint64_t value, int64_t weight) override {
    g_.Update(value, weight);
  }
  StatusOr<double> Estimate() const override {
    return SkimmedSketch::EstimateJoinSize(f_, g_);
  }
  StatusOr<EstimateReport> EstimateWithReport() const override {
    return SkimmedSketch::EstimateJoinSizeWithReport(f_, g_);
  }
  uint64_t SpaceCounters() const override { return f_.TotalCounters(); }
  uint64_t MemoryBytes() const override {
    return f_.MemoryBytes() + g_.MemoryBytes();
  }
  const char* Name() const override {
    return EstimatorKindName(EstimatorKind::kSkimmedSketch);
  }
  Status SerializeTo(std::ostream& out) const override {
    return SerializePair(out, Name(), f_, g_);
  }
  Status RestoreFrom(std::istream& in) override {
    return RestorePair(in, Name(), &f_, &g_);
  }
  Status MergeFrom(const JoinEstimatorPair& other) override {
    const auto* peer = dynamic_cast<const SkimmedPair*>(&other);
    if (peer == nullptr || !f_.CompatibleWith(peer->f_) ||
        !g_.CompatibleWith(peer->g_)) {
      return MergeMismatch(Name());
    }
    f_.Merge(peer->f_);
    g_.Merge(peer->g_);
    return OkStatus();
  }

  std::vector<SynopsisHealth> HealthProbe() const override {
    return ProbePair(f_, g_);
  }

 private:
  SkimmedSketch f_;
  SkimmedSketch g_;
};

class CountMinPair final : public JoinEstimatorPair {
 public:
  CountMinPair(sketch::CountMinSketch f, sketch::CountMinSketch g)
      : f_(std::move(f)), g_(std::move(g)) {}

  void UpdateF(uint64_t value, int64_t weight) override {
    f_.Update(value, weight);
  }
  void UpdateG(uint64_t value, int64_t weight) override {
    g_.Update(value, weight);
  }
  StatusOr<double> Estimate() const override {
    return sketch::CountMinSketch::EstimateJoinSize(f_, g_);
  }
  StatusOr<EstimateReport> EstimateWithReport() const override {
    return sketch::CountMinSketch::EstimateJoinSizeWithReport(f_, g_);
  }
  uint64_t SpaceCounters() const override {
    return f_.config().TotalCounters();
  }
  uint64_t MemoryBytes() const override {
    return f_.MemoryBytes() + g_.MemoryBytes();
  }
  const char* Name() const override {
    return EstimatorKindName(EstimatorKind::kCountMin);
  }
  Status SerializeTo(std::ostream& out) const override {
    return SerializePair(out, Name(), f_, g_);
  }
  Status RestoreFrom(std::istream& in) override {
    return RestorePair(in, Name(), &f_, &g_);
  }
  Status MergeFrom(const JoinEstimatorPair& other) override {
    const auto* peer = dynamic_cast<const CountMinPair*>(&other);
    if (peer == nullptr || !f_.CompatibleWith(peer->f_) ||
        !g_.CompatibleWith(peer->g_)) {
      return MergeMismatch(Name());
    }
    f_.Merge(peer->f_);
    g_.Merge(peer->g_);
    return OkStatus();
  }

  std::vector<SynopsisHealth> HealthProbe() const override {
    return ProbePair(f_, g_);
  }

 private:
  sketch::CountMinSketch f_;
  sketch::CountMinSketch g_;
};

class PartitionedAgmsPair final : public JoinEstimatorPair {
 public:
  PartitionedAgmsPair(sketch::PartitionedAgmsSketch f,
                      sketch::PartitionedAgmsSketch g)
      : f_(std::move(f)), g_(std::move(g)) {}

  void UpdateF(uint64_t value, int64_t weight) override {
    f_.Update(value, weight);
  }
  void UpdateG(uint64_t value, int64_t weight) override {
    g_.Update(value, weight);
  }
  StatusOr<double> Estimate() const override {
    return sketch::PartitionedAgmsSketch::EstimateJoinSize(f_, g_);
  }
  uint64_t SpaceCounters() const override { return f_.TotalCounters(); }
  uint64_t MemoryBytes() const override {
    return f_.MemoryBytes() + g_.MemoryBytes();
  }
  const char* Name() const override {
    return EstimatorKindName(EstimatorKind::kPartitionedAgms);
  }

 private:
  sketch::PartitionedAgmsSketch f_;
  sketch::PartitionedAgmsSketch g_;
};

class SamplingPair final : public JoinEstimatorPair {
 public:
  SamplingPair(sketch::ReservoirSample f, sketch::ReservoirSample g)
      : f_(std::move(f)), g_(std::move(g)) {}

  void UpdateF(uint64_t value, int64_t weight) override {
    f_.Update(value, weight);
  }
  void UpdateG(uint64_t value, int64_t weight) override {
    g_.Update(value, weight);
  }
  // A sample is not a linear synopsis: expand frequency vectors into unit
  // inserts.
  void AbsorbF(const stream::FrequencyVector& frequencies) override {
    AbsorbInto(&f_, frequencies);
  }
  void AbsorbG(const stream::FrequencyVector& frequencies) override {
    AbsorbInto(&g_, frequencies);
  }
  StatusOr<double> Estimate() const override {
    return sketch::ReservoirSample::EstimateJoinSize(f_, g_);
  }
  uint64_t SpaceCounters() const override { return f_.capacity(); }
  uint64_t MemoryBytes() const override {
    return f_.MemoryBytes() + g_.MemoryBytes();
  }
  const char* Name() const override {
    return EstimatorKindName(EstimatorKind::kSampling);
  }

 private:
  static void AbsorbInto(sketch::ReservoirSample* sample,
                         const stream::FrequencyVector& frequencies) {
    const auto& counts = frequencies.counts();
    for (uint64_t value = 0; value < counts.size(); ++value) {
      SKIMJOIN_CHECK_GE(counts[value], 0)
          << "sampling cannot absorb negative frequencies";
      for (int64_t i = 0; i < counts[value]; ++i) sample->Update(value, 1);
    }
  }

  sketch::ReservoirSample f_;
  sketch::ReservoirSample g_;
};

}  // namespace

StatusOr<std::unique_ptr<JoinEstimatorPair>> CreateJoinEstimatorPair(
    const EstimatorSpec& spec, uint64_t seed) {
  if (spec.space_counters < 1) {
    return InvalidArgumentError("EstimatorSpec.space_counters must be >= 1");
  }
  switch (spec.kind) {
    case EstimatorKind::kAgms: {
      if (spec.agms_num_medians < 1 ||
          spec.space_counters < spec.agms_num_medians) {
        return InvalidArgumentError(
            "AGMS spec needs 1 <= agms_num_medians <= space_counters");
      }
      sketch::AgmsConfig config;
      config.num_medians = spec.agms_num_medians;
      config.num_means = spec.space_counters / spec.agms_num_medians;
      StatusOr<sketch::AgmsSketch> f = sketch::AgmsSketch::Create(config, seed);
      SKIMJOIN_RETURN_IF_ERROR(f.status());
      StatusOr<sketch::AgmsSketch> g = sketch::AgmsSketch::Create(config, seed);
      SKIMJOIN_RETURN_IF_ERROR(g.status());
      return std::unique_ptr<JoinEstimatorPair>(
          new AgmsPair(*std::move(f), *std::move(g)));
    }
    case EstimatorKind::kHashSketch: {
      if (spec.num_tables < 1 || spec.space_counters < spec.num_tables) {
        return InvalidArgumentError(
            "hash-sketch spec needs 1 <= num_tables <= space_counters");
      }
      sketch::HashSketchConfig config;
      config.num_tables = spec.num_tables;
      config.num_buckets = spec.space_counters / spec.num_tables;
      StatusOr<sketch::HashSketch> f = sketch::HashSketch::Create(config, seed);
      SKIMJOIN_RETURN_IF_ERROR(f.status());
      StatusOr<sketch::HashSketch> g = sketch::HashSketch::Create(config, seed);
      SKIMJOIN_RETURN_IF_ERROR(g.status());
      return std::unique_ptr<JoinEstimatorPair>(
          new HashSketchPair(*std::move(f), *std::move(g)));
    }
    case EstimatorKind::kSkimmedSketch: {
      if (spec.num_tables < 1 || spec.space_counters < spec.num_tables) {
        return InvalidArgumentError(
            "skimmed-sketch spec needs 1 <= num_tables <= space_counters");
      }
      SkimmedSketchConfig config;
      config.domain_size = spec.domain_size;
      config.num_tables = spec.num_tables;
      config.threshold_scale = spec.threshold_scale;
      config.recurse_slack = spec.recurse_slack;
      config.skim_margin = spec.skim_margin;
      config.use_dyadic_skim = spec.skimmed_use_dyadic;
      if (spec.skimmed_use_dyadic) {
        // Split the budget: half to level 0, half across the log2(m)
        // auxiliary levels (at least one bucket each).
        uint64_t levels = 0;
        while ((spec.domain_size >> (levels + 1)) >= 1 &&
               (uint64_t{1} << levels) < spec.domain_size) {
          ++levels;
        }
        config.num_buckets =
            std::max<uint64_t>(1, spec.space_counters / (2 * spec.num_tables));
        config.dyadic_num_buckets = std::max<uint64_t>(
            1, spec.space_counters / (2 * spec.num_tables * levels));
      } else {
        config.num_buckets =
            std::max<uint64_t>(1, spec.space_counters / spec.num_tables);
      }
      StatusOr<SkimmedSketch> f = SkimmedSketch::Create(config, seed);
      SKIMJOIN_RETURN_IF_ERROR(f.status());
      StatusOr<SkimmedSketch> g = SkimmedSketch::Create(config, seed);
      SKIMJOIN_RETURN_IF_ERROR(g.status());
      return std::unique_ptr<JoinEstimatorPair>(
          new SkimmedPair(*std::move(f), *std::move(g)));
    }
    case EstimatorKind::kCountMin: {
      if (spec.num_tables < 1 || spec.space_counters < spec.num_tables) {
        return InvalidArgumentError(
            "count-min spec needs 1 <= num_tables <= space_counters");
      }
      sketch::CountMinConfig config;
      config.num_tables = spec.num_tables;
      config.num_buckets = spec.space_counters / spec.num_tables;
      StatusOr<sketch::CountMinSketch> f =
          sketch::CountMinSketch::Create(config, seed);
      SKIMJOIN_RETURN_IF_ERROR(f.status());
      StatusOr<sketch::CountMinSketch> g =
          sketch::CountMinSketch::Create(config, seed);
      SKIMJOIN_RETURN_IF_ERROR(g.status());
      return std::unique_ptr<JoinEstimatorPair>(
          new CountMinPair(*std::move(f), *std::move(g)));
    }
    case EstimatorKind::kPartitionedAgms: {
      if (spec.partition_plan == nullptr) {
        return InvalidArgumentError(
            "partitioned AGMS requires EstimatorSpec.partition_plan (built "
            "from a-priori frequency statistics via sketch::PlanPartitions)");
      }
      StatusOr<sketch::PartitionedAgmsSketch> f =
          sketch::PartitionedAgmsSketch::Create(*spec.partition_plan, seed);
      SKIMJOIN_RETURN_IF_ERROR(f.status());
      StatusOr<sketch::PartitionedAgmsSketch> g =
          sketch::PartitionedAgmsSketch::Create(*spec.partition_plan, seed);
      SKIMJOIN_RETURN_IF_ERROR(g.status());
      return std::unique_ptr<JoinEstimatorPair>(
          new PartitionedAgmsPair(*std::move(f), *std::move(g)));
    }
    case EstimatorKind::kSampling: {
      StatusOr<sketch::ReservoirSample> f =
          sketch::ReservoirSample::Create(spec.space_counters, seed);
      SKIMJOIN_RETURN_IF_ERROR(f.status());
      StatusOr<sketch::ReservoirSample> g =
          sketch::ReservoirSample::Create(spec.space_counters, seed + 1);
      SKIMJOIN_RETURN_IF_ERROR(g.status());
      return std::unique_ptr<JoinEstimatorPair>(
          new SamplingPair(*std::move(f), *std::move(g)));
    }
  }
  return InvalidArgumentError("unknown estimator kind");
}

}  // namespace core
}  // namespace skimjoin
