// Dyadic-interval candidate search for SKIMDENSE (§4.2 of the paper,
// following Cormode–Muthukrishnan '03).
//
// Naive skimming scans the whole domain — prohibitive for, e.g., 64-bit IP
// keys. Instead we maintain one auxiliary summary per dyadic level
// l = 1..log2(m): the level-l summary covers the 2^(log m - l) dyadic
// intervals of width 2^l (value v contributes to interval v >> l). A dense
// value forces every enclosing interval to be at least as heavy, so a
// top-down walk from the root that only expands intervals whose estimated
// weight passes the threshold visits O((n/T) · log m) nodes and finds every
// dense candidate with high probability. Per-element maintenance cost grows
// from O(s) to O(s · log m) — still logarithmic, as the paper requires.
//
// Representation per level: when a level has no more prefixes than the
// configured bucket budget, its counts are stored EXACTLY (one counter per
// prefix — same space, zero error); wider levels use a hash sketch. The
// exact high levels make interval estimates near the root noise-free,
// which the range-frequency and quantile queries in core/skimmed_sketch.h
// rely on.

#ifndef SKIMJOIN_CORE_DYADIC_SKIM_H_
#define SKIMJOIN_CORE_DYADIC_SKIM_H_

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <vector>

#include "sketch/hash_sketch.h"
#include "stream/frequency_vector.h"
#include "stream/stream_element.h"
#include "util/estimate_report.h"
#include "util/status.h"

namespace skimjoin {
namespace core {

/// Maintains the level-1..log2(m) dyadic summaries and runs the candidate
/// search. The level-0 sketch (over raw values) lives outside this class —
/// see core/skimmed_sketch.h — so the search yields raw-value candidates
/// that the caller confirms against level 0.
class DyadicSkimmer {
 public:
  /// `domain_size` must be a power of two >= 2; `upper_config` shapes the
  /// sketched levels (and bounds which levels are stored exactly); families
  /// derive from `seed` (independent per level).
  static StatusOr<DyadicSkimmer> Create(
      uint64_t domain_size, const sketch::HashSketchConfig& upper_config,
      uint64_t seed);

  /// Applies one arrival to every level: O(num_levels · num_tables).
  void Update(uint64_t value, int64_t weight);

  /// Applies a batch of arrivals level-major: each level's prefixes are
  /// computed once for the whole batch and fed through the level sketch's
  /// own batch path, so per-element dyadic traversal is amortized away.
  /// Counter-for-counter identical to scalar Update calls.
  /// Pre-condition: every element value < domain_size().
  void UpdateBatch(std::span<const stream::StreamElement> elements);

  /// Propagates fast-path kernel selection to every sketched level
  /// (DESIGN.md §10); exact levels have no hashes and are unaffected.
  void SetKernelOptions(const sketch::KernelOptions& options);

  /// Plan-cache tallies summed over the sketched levels.
  uint64_t hash_cache_hits() const;
  uint64_t hash_cache_misses() const;

  /// Zeroes every level's counters (families untouched).
  void Reset();

  /// Folds a whole frequency vector in (linearity).
  void Absorb(const stream::FrequencyVector& frequencies);

  /// Merges a compatible skimmer. Pre-condition: same domain/config/seed.
  void Merge(const DyadicSkimmer& other);

  /// Estimated total frequency of dyadic interval `prefix` at `level`
  /// (values [prefix·2^level, (prefix+1)·2^level)). Exact when the level is
  /// stored exactly. Pre-conditions: 1 <= level <= num_levels(),
  /// prefix < domain_size >> level.
  int64_t PointEstimate(uint64_t level, uint64_t prefix) const;

  /// True when `level` keeps one exact counter per prefix (no estimation
  /// error). Pre-condition: 1 <= level <= num_levels().
  bool LevelIsExact(uint64_t level) const;

  /// Top-down search: returns every level-0 value whose enclosing intervals
  /// all have |estimate| >= slack * threshold. `slack` in (0, 1] trades
  /// recall (smaller catches dense values whose interval estimates are
  /// pulled low by noise) against search work. Candidates may include
  /// non-dense values; the caller filters against the level-0 sketch.
  std::vector<uint64_t> FindCandidates(int64_t threshold, double slack) const;

  /// Removes a skimmed dense frequency from every level so that later skims
  /// see residual interval weights.
  void SubtractDense(uint64_t value, int64_t frequency);

  /// Number of auxiliary levels (log2(domain_size)).
  uint64_t num_levels() const { return levels_.size(); }

  /// Auxiliary counters consumed (space accounting for the benches).
  uint64_t TotalCounters() const;

  /// Total footprint in bytes across every level (exact arrays and hash
  /// sketches). Feeds the per-synopsis memory gauges.
  uint64_t MemoryBytes() const;

  uint64_t domain_size() const { return domain_size_; }

  /// Read-only health probe over the SKETCHED levels (all share one shape,
  /// so their counter rows concatenate into a uniform table layout): bucket
  /// occupancy, |counter| quantiles, saturation headroom, and collision
  /// pressure per sketched table. Exact levels carry no estimation error and
  /// are only consulted when every level is exact (then collision pressure
  /// is NaN).
  SynopsisHealth HealthProbe() const;

  /// Writes domain size plus every level's representation; see
  /// sketch::HashSketch::SerializeTo.
  Status SerializeTo(std::ostream& out) const;

  /// Reads a record written by SerializeTo.
  static StatusOr<DyadicSkimmer> DeserializeFrom(std::istream& in);

 private:
  /// One dyadic level: exact counters when `sketch` is empty, a hash
  /// sketch otherwise.
  struct Level {
    std::optional<sketch::HashSketch> sketch;
    std::vector<int64_t> exact;

    void Add(uint64_t prefix, int64_t weight) {
      if (sketch.has_value()) {
        sketch->Update(prefix, weight);
      } else {
        exact[prefix] += weight;
      }
    }
  };

  DyadicSkimmer(uint64_t domain_size, std::vector<Level> levels);

  uint64_t domain_size_;
  // levels_[l - 1] summarizes dyadic prefixes of width 2^l.
  std::vector<Level> levels_;
};

}  // namespace core
}  // namespace skimjoin

#endif  // SKIMJOIN_CORE_DYADIC_SKIM_H_
