#include "core/skim.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"
#include "util/stats.h"

namespace skimjoin {
namespace core {

int64_t LookupDense(const DenseFrequencies& dense, uint64_t value) {
  const auto it = std::lower_bound(
      dense.begin(), dense.end(), value,
      [](const std::pair<uint64_t, int64_t>& entry, uint64_t v) {
        return entry.first < v;
      });
  if (it == dense.end() || it->first != value) return 0;
  return it->second;
}

namespace {

// Shared extraction step: estimate `value`, and if dense, record it and
// subtract it from the sketch (Fig. 3 steps 6, 8–9). A positive `margin`
// holds that much of the estimate back (Theorem 4's conservative skim).
void MaybeSkimValue(sketch::HashSketch* sketch, uint64_t value,
                    int64_t threshold, int64_t margin,
                    DenseFrequencies* out) {
  const int64_t estimate = sketch->PointEstimate(value);
  if (std::llabs(estimate) < threshold) return;
  const int64_t magnitude = std::llabs(estimate) - margin;
  if (magnitude <= 0) return;
  const int64_t skimmed = estimate >= 0 ? magnitude : -magnitude;
  out->emplace_back(value, skimmed);
  sketch->Update(value, -skimmed);
}

}  // namespace

DenseFrequencies SkimDenseNaive(sketch::HashSketch* sketch,
                                uint64_t domain_size, int64_t threshold,
                                int64_t margin) {
  SKIMJOIN_CHECK(sketch != nullptr);
  SKIMJOIN_CHECK_GE(threshold, 1);
  SKIMJOIN_CHECK_GE(margin, 0);
  DenseFrequencies dense;
  for (uint64_t value = 0; value < domain_size; ++value) {
    MaybeSkimValue(sketch, value, threshold, margin, &dense);
  }
  return dense;  // domain scan emits values in sorted order already
}

DenseFrequencies SkimDenseCandidates(sketch::HashSketch* sketch,
                                     const std::vector<uint64_t>& candidates,
                                     int64_t threshold, int64_t margin) {
  SKIMJOIN_CHECK(sketch != nullptr);
  SKIMJOIN_CHECK_GE(threshold, 1);
  SKIMJOIN_CHECK_GE(margin, 0);
  std::vector<uint64_t> unique = candidates;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  DenseFrequencies dense;
  for (uint64_t value : unique) {
    MaybeSkimValue(sketch, value, threshold, margin, &dense);
  }
  return dense;
}

int64_t DenseDenseJoin(const DenseFrequencies& f, const DenseFrequencies& g) {
  __int128 total = 0;
  auto fi = f.begin();
  auto gi = g.begin();
  while (fi != f.end() && gi != g.end()) {
    if (fi->first < gi->first) {
      ++fi;
    } else if (gi->first < fi->first) {
      ++gi;
    } else {
      total += static_cast<__int128>(fi->second) * gi->second;
      ++fi;
      ++gi;
    }
  }
  SKIMJOIN_CHECK(total <= INT64_MAX && total >= INT64_MIN);
  return static_cast<int64_t>(total);
}

std::vector<double> EstimateSubJoinSizePerTable(
    const DenseFrequencies& dense_f, const sketch::HashSketch& skimmed_g) {
  const uint64_t num_tables = skimmed_g.config().num_tables;
  std::vector<double> per_table;
  per_table.reserve(num_tables);
  for (uint64_t table = 0; table < num_tables; ++table) {
    double sum = 0.0;
    for (const auto& [value, frequency] : dense_f) {
      const uint64_t bucket = skimmed_g.Bucket(table, value);
      sum += static_cast<double>(frequency) *
             static_cast<double>(skimmed_g.Sign(table, value)) *
             static_cast<double>(skimmed_g.Counter(table, bucket));
    }
    per_table.push_back(sum);
  }
  return per_table;
}

double EstimateSubJoinSize(const DenseFrequencies& dense_f,
                           const sketch::HashSketch& skimmed_g) {
  return Median(EstimateSubJoinSizePerTable(dense_f, skimmed_g));
}

}  // namespace core
}  // namespace skimjoin
