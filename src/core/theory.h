// The paper's analytical guarantees as a programmable API: additive-error
// envelopes for both estimators (Theorems 2 and 5) and the inverse
// "how much space do I need?" calculators, including the Ω(n²/(ε·J)) lower
// bound of Alon et al. that the skimmed-sketch estimator matches.
//
// These are ENVELOPES, not exact distributions: constants follow the
// theorems, so measured errors are typically far below them (see
// bench_theory, which verifies measured ≤ bound across seeds).

#ifndef SKIMJOIN_CORE_THEORY_H_
#define SKIMJOIN_CORE_THEORY_H_

#include <cstdint>

#include "util/status.h"

namespace skimjoin {
namespace core {

/// Theorem 2 (Alon et al. '99): with s1 iid atomic sketches averaged per
/// estimate, the basic-sketching join estimate errs by at most
/// 4·sqrt(F2(F)·F2(G)/s1) additively, with probability >= 1 - 2^(-s2/2).
/// Pre-conditions: non-negative moments, s1 >= 1.
double AgmsAdditiveErrorBound(double f2_f, double f2_g, uint64_t num_means);

/// Space (in counters, = s1·s2) that Theorem 2 requires for relative error
/// `epsilon` on a join of size `join_size` with confidence 1 - delta.
/// This is the O(F2(F)·F2(G) / (ε·J)²) basic-sketching space — the bound
/// the paper improves on. INVALID_ARGUMENT on non-positive inputs.
StatusOr<uint64_t> AgmsSpaceForError(double f2_f, double f2_g,
                                     double join_size, double epsilon,
                                     double delta);

/// Theorem 5 / §3 analysis: after skimming at threshold T = Θ(n/sqrt(b)),
/// every residual frequency is below T, so each of the three estimated
/// subjoins errs by O(n_F·n_G/b); the bound returned is c·n_F·n_G/b with
/// the theorem's constant c = 8 by default. Pre-condition: buckets >= 1.
double SkimmedAdditiveErrorBound(double n_f, double n_g, uint64_t num_buckets,
                                 double constant = 8.0);

/// Buckets per table that Theorem 5 requires for relative error `epsilon`
/// on a join of size at least `join_size`: b = c·n_F·n_G/(ε·J). Multiply by
/// the table count for total counters. Matches the lower bound's
/// n²/(ε·J) dependence. INVALID_ARGUMENT on non-positive inputs.
StatusOr<uint64_t> SkimmedBucketsForError(double n_f, double n_g,
                                          double join_size, double epsilon,
                                          double constant = 8.0);

/// Tables needed for confidence 1 - delta (median boosting over
/// independent tables): the smallest odd s with 2^(-s/2) <= delta.
/// Pre-condition: 0 < delta < 1.
uint64_t TablesForConfidence(double delta);

/// The Ω(n²/(ε·J)) lower bound of [Alon–Gibbons–Matias–Szegedy '99] on the
/// space (counters) ANY streaming join-size estimator needs — what the
/// skimmed-sketch estimator meets up to logarithmic factors and basic
/// sketching misses quadratically. INVALID_ARGUMENT on non-positive inputs.
StatusOr<uint64_t> JoinSizeSpaceLowerBound(double n, double join_size,
                                           double epsilon);

}  // namespace core
}  // namespace skimjoin

#endif  // SKIMJOIN_CORE_THEORY_H_
