// SKIMDENSE (Fig. 3 of the paper): extracting dense frequencies out of a
// hash sketch.
//
// Given a hash sketch of stream F and a threshold T, skimming (a) estimates
// per-value frequencies with the COUNTSKETCH point estimator, (b) moves
// every estimate with magnitude >= T into an explicitly-stored dense
// frequency vector Ê, and (c) subtracts Ê back out of the sketch counters
// (steps 8–9), leaving a *skimmed* sketch that is — exactly, by linearity —
// the sketch of the residual frequencies f − Ê.
//
// The four-way subjoin decomposition in core/skimmed_sketch.* is an exact
// identity for any Ê, so skimming never biases the estimator; it exists to
// slash the residual self-join sizes that drive the estimator's variance.

#ifndef SKIMJOIN_CORE_SKIM_H_
#define SKIMJOIN_CORE_SKIM_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "sketch/hash_sketch.h"

namespace skimjoin {
namespace core {

/// Sparse dense-frequency vector Ê: (value, skimmed frequency) pairs sorted
/// by value, every frequency non-zero.
using DenseFrequencies = std::vector<std::pair<uint64_t, int64_t>>;

/// Frequency recorded for `value` in `dense`, or 0 if it was not skimmed.
int64_t LookupDense(const DenseFrequencies& dense, uint64_t value);

/// Naive SKIMDENSE: scans every value of [0, domain_size), extracts point
/// estimates with |estimate| >= threshold into the result, and subtracts
/// them from *sketch (which afterwards holds only residual frequencies).
/// O(domain_size · num_tables) time — the dyadic variant in dyadic_skim.h
/// avoids the domain scan. Pre-conditions: threshold >= 1, margin >= 0.
///
/// Extraction triggers on |estimate| so that net-negative heavy values
/// (delete-dominated streams) are skimmed too; for insert-only streams this
/// matches the paper's est >= T rule.
///
/// `margin` implements the conservative variant behind Theorem 4: instead
/// of skimming the full estimate, |estimate| - margin is skimmed (sign
/// preserved), which keeps Ê below the true frequency with high probability
/// (point estimates err by at most ±margin when margin is set to the
/// estimation-error scale) at the cost of leaving up to `margin` extra
/// residual mass per dense value. margin = 0 is the Fig. 3 behaviour.
DenseFrequencies SkimDenseNaive(sketch::HashSketch* sketch,
                                uint64_t domain_size, int64_t threshold,
                                int64_t margin = 0);

/// SKIMDENSE restricted to a candidate set (produced by the dyadic search).
/// Candidates may contain duplicates or non-dense values; both are handled.
/// Pre-conditions: threshold >= 1, margin >= 0.
DenseFrequencies SkimDenseCandidates(sketch::HashSketch* sketch,
                                     const std::vector<uint64_t>& candidates,
                                     int64_t threshold, int64_t margin = 0);

/// Exact dense·dense subjoin Σ_v Ê_F(v)·Ê_G(v) (step 2 of ESTSKIMJOINSIZE;
/// computed with zero error since both vectors are explicit).
int64_t DenseDenseJoin(const DenseFrequencies& f, const DenseFrequencies& g);

/// ESTSUBJOINSIZE (Fig. 4): estimate of Σ_v Ê_F(v)·r_G(v), the subjoin of
/// the explicit dense frequencies of F with the residual (sparse)
/// frequencies summarized by G's skimmed sketch. Per table j it sums
/// Ê_F(v)·ξ_j(v)·C_G[j][h_j(v)] over the dense values and medians the
/// per-table sums.
double EstimateSubJoinSize(const DenseFrequencies& dense_f,
                           const sketch::HashSketch& skimmed_g);

/// The per-table copy estimates ESTSUBJOINSIZE medians (copy j is the sum
/// over dense values of Ê_F(v)·ξ_j(v)·C_G[j][h_j(v)]). Exposed so the
/// skimmed estimator can report sub-join provenance
/// (SkimmedSketch::EstimateJoinSizeWithReport).
std::vector<double> EstimateSubJoinSizePerTable(
    const DenseFrequencies& dense_f, const sketch::HashSketch& skimmed_g);

}  // namespace core
}  // namespace skimjoin

#endif  // SKIMJOIN_CORE_SKIM_H_
