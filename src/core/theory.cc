#include "core/theory.h"

#include <cmath>

#include "util/logging.h"

namespace skimjoin {
namespace core {

double AgmsAdditiveErrorBound(double f2_f, double f2_g, uint64_t num_means) {
  SKIMJOIN_CHECK_GE(f2_f, 0.0);
  SKIMJOIN_CHECK_GE(f2_g, 0.0);
  SKIMJOIN_CHECK_GE(num_means, 1u);
  return 4.0 * std::sqrt(f2_f * f2_g / static_cast<double>(num_means));
}

StatusOr<uint64_t> AgmsSpaceForError(double f2_f, double f2_g,
                                     double join_size, double epsilon,
                                     double delta) {
  if (f2_f <= 0 || f2_g <= 0 || join_size <= 0 || epsilon <= 0 || delta <= 0 ||
      delta >= 1) {
    return InvalidArgumentError(
        "AgmsSpaceForError needs positive moments/join/epsilon and delta in "
        "(0, 1)");
  }
  // 4·sqrt(F2F·F2G/s1) <= ε·J  =>  s1 >= 16·F2F·F2G/(ε·J)².
  const double s1 =
      16.0 * f2_f * f2_g / ((epsilon * join_size) * (epsilon * join_size));
  const double s2 = static_cast<double>(TablesForConfidence(delta));
  return static_cast<uint64_t>(std::ceil(s1) * s2);
}

double SkimmedAdditiveErrorBound(double n_f, double n_g, uint64_t num_buckets,
                                 double constant) {
  SKIMJOIN_CHECK_GE(n_f, 0.0);
  SKIMJOIN_CHECK_GE(n_g, 0.0);
  SKIMJOIN_CHECK_GE(num_buckets, 1u);
  SKIMJOIN_CHECK_GT(constant, 0.0);
  return constant * n_f * n_g / static_cast<double>(num_buckets);
}

StatusOr<uint64_t> SkimmedBucketsForError(double n_f, double n_g,
                                          double join_size, double epsilon,
                                          double constant) {
  if (n_f <= 0 || n_g <= 0 || join_size <= 0 || epsilon <= 0 ||
      constant <= 0) {
    return InvalidArgumentError(
        "SkimmedBucketsForError needs positive stream sizes, join size, "
        "epsilon, and constant");
  }
  // c·n_F·n_G/b <= ε·J  =>  b >= c·n_F·n_G/(ε·J).
  return static_cast<uint64_t>(
      std::ceil(constant * n_f * n_g / (epsilon * join_size)));
}

uint64_t TablesForConfidence(double delta) {
  SKIMJOIN_CHECK(delta > 0.0 && delta < 1.0);
  uint64_t tables = 1;
  while (std::pow(2.0, -static_cast<double>(tables) / 2.0) > delta) {
    tables += 2;  // keep the count odd for unambiguous medians
  }
  return tables;
}

StatusOr<uint64_t> JoinSizeSpaceLowerBound(double n, double join_size,
                                           double epsilon) {
  if (n <= 0 || join_size <= 0 || epsilon <= 0) {
    return InvalidArgumentError(
        "JoinSizeSpaceLowerBound needs positive n, join size, and epsilon");
  }
  return static_cast<uint64_t>(
      std::ceil(n * n / (epsilon * join_size)));
}

}  // namespace core
}  // namespace skimjoin
