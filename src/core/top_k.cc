#include "core/top_k.h"

#include <algorithm>
#include <string>

#include "util/logging.h"

namespace skimjoin {
namespace core {

TopKTracker::TopKTracker(uint64_t k, sketch::HashSketch sketch)
    : k_(k), sketch_(std::move(sketch)) {}

StatusOr<TopKTracker> TopKTracker::Create(
    uint64_t k, const sketch::HashSketchConfig& sketch_config, uint64_t seed) {
  if (k == 0) {
    return InvalidArgumentError("top-k tracking needs k >= 1");
  }
  StatusOr<sketch::HashSketch> sketch =
      sketch::HashSketch::Create(sketch_config, seed);
  SKIMJOIN_RETURN_IF_ERROR(sketch.status());
  return TopKTracker(k, *std::move(sketch));
}

void TopKTracker::Update(uint64_t value, int64_t weight) {
  sketch_.Update(value, weight);
  const int64_t estimate = sketch_.PointEstimate(value);

  const auto it = candidates_.find(value);
  if (it != candidates_.end()) {
    if (estimate <= 0) {
      candidates_.erase(it);  // deleted below zero — no longer a candidate
    } else {
      it->second = estimate;
    }
    return;
  }
  if (estimate <= 0) return;
  if (candidates_.size() < k_) {
    candidates_.emplace(value, estimate);
    return;
  }
  // Replace the weakest candidate if the newcomer beats it (re-estimate the
  // incumbent so stale highs cannot squat).
  auto weakest = candidates_.begin();
  int64_t weakest_estimate = sketch_.PointEstimate(weakest->first);
  for (auto candidate = std::next(candidates_.begin());
       candidate != candidates_.end(); ++candidate) {
    const int64_t current = sketch_.PointEstimate(candidate->first);
    candidate->second = current;
    if (current < weakest_estimate) {
      weakest = candidate;
      weakest_estimate = current;
    }
  }
  weakest->second = weakest_estimate;
  if (estimate > weakest_estimate) {
    candidates_.erase(weakest);
    candidates_.emplace(value, estimate);
  }
}

Status TopKTracker::SerializeTo(std::ostream& out) const {
  out << "skimjoin.top_k v1\n" << k_ << '\n';
  SKIMJOIN_RETURN_IF_ERROR(sketch_.SerializeTo(out));
  out << candidates_.size() << '\n';
  for (const auto& [value, estimate] : candidates_) {
    out << value << ' ' << estimate << '\n';
  }
  out << "end\n";
  if (!out) return IoError("top-k serialization failed");
  return OkStatus();
}

StatusOr<TopKTracker> TopKTracker::DeserializeFrom(std::istream& in) {
  std::string tag, version;
  if (!(in >> tag >> version) || tag != "skimjoin.top_k" || version != "v1") {
    return InvalidArgumentError("not a skimjoin top-k v1 record");
  }
  uint64_t k = 0;
  if (!(in >> k) || k == 0) {
    return InvalidArgumentError("malformed top-k header");
  }
  StatusOr<sketch::HashSketch> sketch = sketch::HashSketch::DeserializeFrom(in);
  SKIMJOIN_RETURN_IF_ERROR(sketch.status());
  TopKTracker tracker(k, *std::move(sketch));
  uint64_t candidate_count = 0;
  if (!(in >> candidate_count) || candidate_count > k) {
    // The invariant "at most k candidates" caps the read before any
    // allocation — a hostile count cannot demand unbounded memory.
    return InvalidArgumentError("top-k record has a bad candidate count");
  }
  for (uint64_t i = 0; i < candidate_count; ++i) {
    uint64_t value = 0;
    int64_t estimate = 0;
    if (!(in >> value >> estimate)) {
      return InvalidArgumentError("truncated top-k candidate block");
    }
    if (!tracker.candidates_.emplace(value, estimate).second) {
      return InvalidArgumentError("top-k record has a duplicate candidate");
    }
  }
  std::string sentinel;
  if (!(in >> sentinel) || sentinel != "end") {
    return InvalidArgumentError("top-k record missing its end sentinel");
  }
  return tracker;
}

std::vector<std::pair<uint64_t, int64_t>> TopKTracker::TopK() const {
  std::vector<std::pair<uint64_t, int64_t>> result;
  result.reserve(candidates_.size());
  for (const auto& [value, stale] : candidates_) {
    const int64_t estimate = sketch_.PointEstimate(value);
    if (estimate > 0) result.emplace_back(value, estimate);
  }
  std::sort(result.begin(), result.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (result.size() > k_) result.resize(k_);
  return result;
}

uint64_t TopKTracker::MemoryBytes() const {
  // Red-black tree nodes carry three pointers plus a color word on top of
  // the key/value payload.
  constexpr uint64_t kMapNodeOverhead = 4 * sizeof(void*);
  return sizeof(*this) + (sketch_.MemoryBytes() - sizeof(sketch_)) +
         candidates_.size() *
             (sizeof(std::pair<const uint64_t, int64_t>) + kMapNodeOverhead);
}

}  // namespace core
}  // namespace skimjoin
