#include "core/top_k.h"

#include <algorithm>

#include "util/logging.h"

namespace skimjoin {
namespace core {

TopKTracker::TopKTracker(uint64_t k, sketch::HashSketch sketch)
    : k_(k), sketch_(std::move(sketch)) {}

StatusOr<TopKTracker> TopKTracker::Create(
    uint64_t k, const sketch::HashSketchConfig& sketch_config, uint64_t seed) {
  if (k == 0) {
    return InvalidArgumentError("top-k tracking needs k >= 1");
  }
  StatusOr<sketch::HashSketch> sketch =
      sketch::HashSketch::Create(sketch_config, seed);
  SKIMJOIN_RETURN_IF_ERROR(sketch.status());
  return TopKTracker(k, *std::move(sketch));
}

void TopKTracker::Update(uint64_t value, int64_t weight) {
  sketch_.Update(value, weight);
  const int64_t estimate = sketch_.PointEstimate(value);

  const auto it = candidates_.find(value);
  if (it != candidates_.end()) {
    if (estimate <= 0) {
      candidates_.erase(it);  // deleted below zero — no longer a candidate
    } else {
      it->second = estimate;
    }
    return;
  }
  if (estimate <= 0) return;
  if (candidates_.size() < k_) {
    candidates_.emplace(value, estimate);
    return;
  }
  // Replace the weakest candidate if the newcomer beats it (re-estimate the
  // incumbent so stale highs cannot squat).
  auto weakest = candidates_.begin();
  int64_t weakest_estimate = sketch_.PointEstimate(weakest->first);
  for (auto candidate = std::next(candidates_.begin());
       candidate != candidates_.end(); ++candidate) {
    const int64_t current = sketch_.PointEstimate(candidate->first);
    candidate->second = current;
    if (current < weakest_estimate) {
      weakest = candidate;
      weakest_estimate = current;
    }
  }
  weakest->second = weakest_estimate;
  if (estimate > weakest_estimate) {
    candidates_.erase(weakest);
    candidates_.emplace(value, estimate);
  }
}

std::vector<std::pair<uint64_t, int64_t>> TopKTracker::TopK() const {
  std::vector<std::pair<uint64_t, int64_t>> result;
  result.reserve(candidates_.size());
  for (const auto& [value, stale] : candidates_) {
    const int64_t estimate = sketch_.PointEstimate(value);
    if (estimate > 0) result.emplace_back(value, estimate);
  }
  std::sort(result.begin(), result.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (result.size() > k_) result.resize(k_);
  return result;
}

}  // namespace core
}  // namespace skimjoin
