#include "util/durable_file.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace skimjoin {
namespace util {
namespace {

std::string TempPath(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "durable_" + info->name() + "_" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return contents;
}

void WriteAll(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

// Writes a small three-section file and returns its path.
std::string WriteSampleFile(const std::string& name) {
  const std::string path = TempPath(name);
  auto writer = DurableFileWriter::Create(path);
  SKIMJOIN_CHECK_OK(writer.status());
  SKIMJOIN_CHECK_OK(writer->AppendSection("alpha", "payload one"));
  SKIMJOIN_CHECK_OK(writer->AppendSection("beta", ""));
  SKIMJOIN_CHECK_OK(writer->AppendSection("gamma", std::string(1000, 'x')));
  SKIMJOIN_CHECK_OK(writer->Commit());
  return path;
}

// Reads every section; returns the sections or dies on error.
std::vector<DurableSection> ReadAllSections(const std::string& path) {
  auto reader = DurableFileReader::Open(path);
  SKIMJOIN_CHECK_OK(reader.status());
  std::vector<DurableSection> sections;
  while (true) {
    auto next = reader->Next();
    SKIMJOIN_CHECK_OK(next.status());
    if (!next->has_value()) break;
    sections.push_back(**next);
  }
  SKIMJOIN_CHECK(reader->reached_end());
  return sections;
}

// Status (never a value) from attempting to read all sections.
Status TryReadAll(const std::string& path) {
  auto reader = DurableFileReader::Open(path);
  if (!reader.ok()) return reader.status();
  while (true) {
    auto next = reader->Next();
    if (!next.ok()) return next.status();
    if (!next->has_value()) return OkStatus();
  }
}

// Failpoint activations below all use failpoint::ScopedFailpoint, so a
// failing assertion unwinds the guard and cannot leak an activation into
// the next test — no DeactivateAll teardown needed.
using DurableFileTest = ::testing::Test;

// ---- CRC32C ------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / common CRC32C test vectors.
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c("a"), 0xC1D04330u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32cTest, ChainingMatchesConcatenation) {
  const std::string a = "the quick brown fox ";
  const std::string b = "jumps over the lazy dog";
  EXPECT_EQ(Crc32c(b, Crc32c(a)), Crc32c(a + b));
  // Chaining byte by byte too.
  uint32_t crc = 0;
  for (const char c : a + b) crc = Crc32c(std::string_view(&c, 1), crc);
  EXPECT_EQ(crc, Crc32c(a + b));
}

TEST(Crc32cTest, SensitiveToSingleBitFlip) {
  std::string data(100, 'q');
  const uint32_t base = Crc32c(data);
  data[57] ^= 0x10;
  EXPECT_NE(Crc32c(data), base);
}

// ---- Round trip --------------------------------------------------------

TEST_F(DurableFileTest, WriteReadRoundTrip) {
  const std::string path = WriteSampleFile("roundtrip");
  const std::vector<DurableSection> sections = ReadAllSections(path);
  ASSERT_EQ(sections.size(), 3u);
  EXPECT_EQ(sections[0].name, "alpha");
  EXPECT_EQ(sections[0].payload, "payload one");
  EXPECT_EQ(sections[1].name, "beta");
  EXPECT_EQ(sections[1].payload, "");
  EXPECT_EQ(sections[2].name, "gamma");
  EXPECT_EQ(sections[2].payload, std::string(1000, 'x'));
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST_F(DurableFileTest, EmptyFileRoundTrip) {
  const std::string path = TempPath("empty");
  auto writer = DurableFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Commit().ok());
  EXPECT_TRUE(ReadAllSections(path).empty());
  std::remove(path.c_str());
}

TEST_F(DurableFileTest, BinaryPayloadRoundTrip) {
  const std::string path = TempPath("binary");
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  auto writer = DurableFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->AppendSection("bin", payload).ok());
  ASSERT_TRUE(writer->Commit().ok());
  const auto sections = ReadAllSections(path);
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].payload, payload);
  std::remove(path.c_str());
}

TEST_F(DurableFileTest, InvalidSectionNamesRejected) {
  const std::string path = TempPath("badname");
  auto writer = DurableFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ(writer->AppendSection("", "x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(writer->AppendSection("__end__", "x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      writer
          ->AppendSection(std::string(DurableFileWriter::kMaxNameLen + 1, 'n'),
                          "x")
          .code(),
      StatusCode::kInvalidArgument);
}

TEST_F(DurableFileTest, CommitIsFinal) {
  const std::string path = TempPath("final");
  auto writer = DurableFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Commit().ok());
  EXPECT_EQ(writer->AppendSection("late", "x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer->Commit().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST_F(DurableFileTest, DroppedWriterCleansUpTempAndLeavesTargetAlone) {
  const std::string path = TempPath("dropped");
  WriteAll(path, "previous contents");
  {
    auto writer = DurableFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AppendSection("s", "p").ok());
    EXPECT_TRUE(FileExists(path + ".tmp"));
    // No Commit: destructor must unlink the temp file.
  }
  EXPECT_FALSE(FileExists(path + ".tmp"));
  EXPECT_EQ(ReadAll(path), "previous contents");
  std::remove(path.c_str());
}

// ---- Corruption and truncation detection -------------------------------

TEST_F(DurableFileTest, OpenMissingFileIsIoError) {
  EXPECT_EQ(DurableFileReader::Open(TempPath("missing")).status().code(),
            StatusCode::kIoError);
}

TEST_F(DurableFileTest, OpenNonDurableFileIsInvalidArgument) {
  const std::string path = TempPath("notdurable");
  WriteAll(path, "just some text, no magic");
  EXPECT_EQ(DurableFileReader::Open(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(DurableFileTest, TruncationAtEveryByteIsDetected) {
  const std::string path = WriteSampleFile("truncate");
  const std::string good = ReadAll(path);
  const std::string mangled = TempPath("truncate_mangled");
  // Every strict prefix of the file must fail to read cleanly. (A prefix
  // shorter than the magic fails at Open; anything else fails in Next().)
  for (size_t len = 0; len < good.size(); ++len) {
    WriteAll(mangled, good.substr(0, len));
    const Status s = TryReadAll(mangled);
    EXPECT_FALSE(s.ok()) << "prefix of " << len << " bytes read cleanly";
  }
  std::remove(path.c_str());
  std::remove(mangled.c_str());
}

TEST_F(DurableFileTest, ByteFlipAnywhereIsDetected) {
  const std::string path = WriteSampleFile("flip");
  const std::string good = ReadAll(path);
  const std::string mangled = TempPath("flip_mangled");
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    WriteAll(mangled, bad);
    const Status s = TryReadAll(mangled);
    EXPECT_FALSE(s.ok()) << "flip at byte " << i << " read cleanly";
  }
  std::remove(path.c_str());
  std::remove(mangled.c_str());
}

TEST_F(DurableFileTest, TrailingGarbageIsDetected) {
  const std::string path = WriteSampleFile("trailing");
  const std::string mangled = TempPath("trailing_mangled");
  WriteAll(mangled, ReadAll(path) + "z");
  const Status s = TryReadAll(mangled);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
  std::remove(mangled.c_str());
}

TEST_F(DurableFileTest, HostileLengthsDoNotAllocate) {
  // Frame header claiming a 4 GiB payload: must be rejected by the length
  // cap, not attempted.
  const std::string path = TempPath("hostile");
  std::string contents = "skimjoin.durable v1\n";
  const auto le32 = [&](uint32_t v) {
    contents.push_back(static_cast<char>(v & 0xFF));
    contents.push_back(static_cast<char>((v >> 8) & 0xFF));
    contents.push_back(static_cast<char>((v >> 16) & 0xFF));
    contents.push_back(static_cast<char>((v >> 24) & 0xFF));
  };
  le32(4);
  le32(0xFFFFFFFFu);
  le32(0);
  contents += "name";
  WriteAll(path, contents);
  EXPECT_EQ(TryReadAll(path).code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// ---- Failpoint integration ---------------------------------------------

TEST_F(DurableFileTest, OpenTempFailpoint) {
  failpoint::ScopedFailpoint guard("durable:open-temp", failpoint::Spec{});
  EXPECT_FALSE(DurableFileWriter::Create(TempPath("fp_open")).ok());
}

TEST_F(DurableFileTest, AppendErrorIsStickyAndTempCleanedUp) {
  const std::string path = TempPath("fp_append");
  WriteAll(path, "old");
  {
    auto writer = DurableFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    Status s;
    {
      failpoint::Spec spec;  // kError: the next write fails, nothing lands
      failpoint::ScopedFailpoint guard("durable:append", spec);
      s = writer->AppendSection("s", "p");
    }
    EXPECT_EQ(s.code(), StatusCode::kIoError);
    // The writer is dead: everything now reports the first failure.
    EXPECT_EQ(writer->AppendSection("s2", "p2"), s);
    EXPECT_EQ(writer->Commit(), s);
  }
  EXPECT_FALSE(FileExists(path + ".tmp"));
  EXPECT_EQ(ReadAll(path), "old");
  std::remove(path.c_str());
}

TEST_F(DurableFileTest, CrashDuringAppendLeavesTornTempAndOldFile) {
  const std::string path = TempPath("fp_crash_append");
  WriteAll(path, "old contents");
  {
    auto writer = DurableFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AppendSection("first", "ok").ok());
    failpoint::Spec spec;
    spec.mode = failpoint::Mode::kCrash;
    spec.torn_bytes = 5;  // crash 5 bytes into the frame
    failpoint::ScopedFailpoint guard("durable:append", spec);
    const Status s = writer->AppendSection("second", "lost");
    EXPECT_TRUE(failpoint::IsSimulatedCrash(s));
  }
  // Crash semantics: temp file left behind exactly as the crash left it,
  // target untouched.
  EXPECT_TRUE(FileExists(path + ".tmp"));
  EXPECT_EQ(ReadAll(path), "old contents");
  // The torn temp file must not read cleanly.
  EXPECT_FALSE(TryReadAll(path + ".tmp").ok());
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(DurableFileTest, CrashAtRenameLeavesOldFile) {
  const std::string path = TempPath("fp_crash_rename");
  WriteAll(path, "old contents");
  {
    auto writer = DurableFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AppendSection("s", "p").ok());
    failpoint::Spec spec;
    spec.mode = failpoint::Mode::kCrash;
    failpoint::ScopedFailpoint guard("durable:rename", spec);
    const Status s = writer->Commit();
    EXPECT_TRUE(failpoint::IsSimulatedCrash(s));
  }
  EXPECT_EQ(ReadAll(path), "old contents");
  // The temp file a real crash would leave is complete here (the crash hit
  // after fsync, before rename) — but the target was never replaced.
  EXPECT_TRUE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(DurableFileTest, FsyncFailpointFailsCommit) {
  const std::string path = TempPath("fp_fsync");
  auto writer = DurableFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  failpoint::ScopedFailpoint guard("durable:fsync", failpoint::Spec{});
  EXPECT_FALSE(writer->Commit().ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_GE(failpoint::HitCount("durable:fsync"), 1u);
}

// ---- EINTR retry loops -------------------------------------------------

TEST_F(DurableFileTest, SignalStormDuringWriteAndReadIsInvisible) {
  // Every open/write/read/fsync under a storm of simulated EINTR
  // interrupts must retry and complete as if no signal ever landed. The
  // failpoint needs a `limit`: each firing models one interrupt, and the
  // wrappers loop until an evaluation passes.
  const std::string path = TempPath("eintr");
  const uint64_t hits_before = failpoint::HitCount("durable:eintr");

  failpoint::Spec spec;
  spec.limit = 32;  // 32 interrupts sprayed across the syscalls below
  failpoint::ScopedFailpoint guard("durable:eintr", spec);

  auto writer = DurableFileWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE(writer->AppendSection("alpha", "interrupted payload").ok());
  ASSERT_TRUE(writer->AppendSection("beta", std::string(500, 'e')).ok());
  ASSERT_TRUE(writer->Commit().ok());

  const std::vector<DurableSection> sections = ReadAllSections(path);
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].payload, "interrupted payload");
  EXPECT_EQ(sections[1].payload, std::string(500, 'e'));

  ASSERT_TRUE(AtomicWriteFile(path, "eintr-atomic").ok());
  EXPECT_EQ(ReadAll(path), "eintr-atomic");

  // All 32 interrupts fired (and were retried through), plus at least one
  // passing evaluation per completed syscall.
  EXPECT_GT(failpoint::HitCount("durable:eintr"), hits_before + 32);
  std::remove(path.c_str());
}

// ---- AtomicWriteFile ---------------------------------------------------

TEST_F(DurableFileTest, AtomicWriteFileReplacesContents) {
  const std::string path = TempPath("atomic");
  ASSERT_TRUE(AtomicWriteFile(path, "first version").ok());
  EXPECT_EQ(ReadAll(path), "first version");
  ASSERT_TRUE(AtomicWriteFile(path, "second version").ok());
  EXPECT_EQ(ReadAll(path), "second version");
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST_F(DurableFileTest, AtomicWriteFileFailureLeavesOldContents) {
  const std::string path = TempPath("atomic_fail");
  ASSERT_TRUE(AtomicWriteFile(path, "stable").ok());
  {
    failpoint::Spec spec;
    spec.mode = failpoint::Mode::kTornWrite;
    spec.torn_bytes = 2;
    failpoint::ScopedFailpoint guard("durable:append", spec);
    EXPECT_FALSE(AtomicWriteFile(path, "replacement").ok());
  }
  EXPECT_EQ(ReadAll(path), "stable");
  EXPECT_FALSE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST_F(DurableFileTest, AtomicWriteFileCrashLeavesTemp) {
  const std::string path = TempPath("atomic_crash");
  ASSERT_TRUE(AtomicWriteFile(path, "stable").ok());
  Status s;
  {
    failpoint::Spec spec;
    spec.mode = failpoint::Mode::kCrash;
    failpoint::ScopedFailpoint guard("durable:rename", spec);
    s = AtomicWriteFile(path, "replacement");
  }
  EXPECT_TRUE(failpoint::IsSimulatedCrash(s));
  EXPECT_EQ(ReadAll(path), "stable");
  EXPECT_TRUE(FileExists(path + ".tmp"));
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(DurableFileTest, AtomicWriteFileToUnwritableDirIsIoError) {
  EXPECT_EQ(AtomicWriteFile("/no/such/dir/file.txt", "x").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace util
}  // namespace skimjoin
