#include "hashing/tabulation_hash.h"

#include <cmath>
#include <cstdlib>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace skimjoin {
namespace hashing {
namespace {

TEST(TabulationHashTest, DeterministicGivenSameRngState) {
  Rng a_rng(4);
  Rng b_rng(4);
  TabulationHash a(&a_rng);
  TabulationHash b(&b_rng);
  for (uint64_t x = 0; x < 500; ++x) EXPECT_EQ(a(x), b(x));
}

TEST(TabulationHashTest, DifferentSeedsDiffer) {
  Rng a_rng(4);
  Rng b_rng(5);
  TabulationHash a(&a_rng);
  TabulationHash b(&b_rng);
  int equal = 0;
  for (uint64_t x = 0; x < 200; ++x) equal += (a(x) == b(x));
  EXPECT_LE(equal, 1);
}

TEST(TabulationHashTest, ZeroKeyHashesToXorOfZeroEntries) {
  Rng rng(6);
  TabulationHash h(&rng);
  // h(0) is some fixed value; two calls agree (sanity of lookup path).
  EXPECT_EQ(h(0), h(0));
}

TEST(TabulationHashTest, DistinctKeysRarelyCollide) {
  Rng rng(9);
  TabulationHash h(&rng);
  std::set<uint64_t> outputs;
  for (uint64_t x = 0; x < 5000; ++x) outputs.insert(h(x));
  EXPECT_EQ(outputs.size(), 5000u);  // 64-bit outputs: collisions ~impossible
}

TEST(TabulationHashTest, BucketRange) {
  Rng rng(2);
  TabulationHash h(&rng);
  for (uint64_t buckets : {1ull, 3ull, 64ull, 257ull}) {
    for (uint64_t x = 0; x < 300; ++x) EXPECT_LT(h.Bucket(x, buckets), buckets);
  }
}

TEST(TabulationHashTest, BucketRoughlyUniform) {
  Rng rng(15);
  TabulationHash h(&rng);
  constexpr uint64_t kBuckets = 16;
  constexpr int kDraws = 32000;
  std::vector<int> histogram(kBuckets, 0);
  for (int x = 0; x < kDraws; ++x) {
    ++histogram[h.Bucket(static_cast<uint64_t>(x), kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(histogram[b], expected, 6 * std::sqrt(expected));
  }
}

TEST(TabulationHashTest, SignIsPlusMinusOneAndBalanced) {
  Rng rng(23);
  TabulationHash h(&rng);
  int64_t sum = 0;
  constexpr int kValues = 40000;
  for (int x = 0; x < kValues; ++x) {
    const int64_t s = h.Sign(static_cast<uint64_t>(x));
    ASSERT_TRUE(s == 1 || s == -1);
    sum += s;
  }
  EXPECT_LT(std::llabs(sum), 5 * static_cast<int64_t>(std::sqrt(kValues)));
}

TEST(TabulationHashTest, HighBytesMatter) {
  Rng rng(31);
  TabulationHash h(&rng);
  // Keys differing only in the top byte must (almost surely) hash apart.
  const uint64_t base = 0x1234;
  int equal = 0;
  for (uint64_t top = 1; top < 100; ++top) {
    equal += (h(base) == h(base | (top << 56)));
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace hashing
}  // namespace skimjoin
