#include "hashing/prime_field.h"

#include "gtest/gtest.h"
#include "util/random.h"

namespace skimjoin {
namespace hashing {
namespace {

// Reference modular multiply via 128-bit remainder.
uint64_t ReferenceMulMod(uint64_t a, uint64_t b) {
  return static_cast<uint64_t>(static_cast<__uint128_t>(a) * b %
                               kMersennePrime61);
}

TEST(PrimeFieldTest, PrimeConstant) {
  EXPECT_EQ(kMersennePrime61, (uint64_t{1} << 61) - 1);
}

TEST(PrimeFieldTest, AddModSimpleCases) {
  EXPECT_EQ(AddMod61(0, 0), 0u);
  EXPECT_EQ(AddMod61(1, 2), 3u);
  EXPECT_EQ(AddMod61(kMersennePrime61 - 1, 1), 0u);
  EXPECT_EQ(AddMod61(kMersennePrime61 - 1, 2), 1u);
}

TEST(PrimeFieldTest, MulModSimpleCases) {
  EXPECT_EQ(MulMod61(0, 12345), 0u);
  EXPECT_EQ(MulMod61(1, 12345), 12345u);
  EXPECT_EQ(MulMod61(kMersennePrime61 - 1, kMersennePrime61 - 1), 1u);
}

TEST(PrimeFieldTest, MulModMatchesReferenceOnRandomInputs) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t a = rng.NextUint64Below(kMersennePrime61);
    const uint64_t b = rng.NextUint64Below(kMersennePrime61);
    ASSERT_EQ(MulMod61(a, b), ReferenceMulMod(a, b)) << a << " * " << b;
  }
}

TEST(PrimeFieldTest, ResultsStayInField) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t a = rng.NextUint64Below(kMersennePrime61);
    const uint64_t b = rng.NextUint64Below(kMersennePrime61);
    EXPECT_LT(MulMod61(a, b), kMersennePrime61);
    EXPECT_LT(AddMod61(a, b), kMersennePrime61);
  }
}

TEST(PrimeFieldTest, FoldToField61CongruentModP) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x = rng.NextUint64();
    const uint64_t folded = FoldToField61(x);
    EXPECT_LT(folded, kMersennePrime61);
    EXPECT_EQ(folded, static_cast<uint64_t>(
                          static_cast<__uint128_t>(x) % kMersennePrime61));
  }
}

TEST(PrimeFieldTest, FoldEdgeCases) {
  EXPECT_EQ(FoldToField61(0), 0u);
  EXPECT_EQ(FoldToField61(kMersennePrime61), 0u);
  EXPECT_EQ(FoldToField61(kMersennePrime61 + 5), 5u);
  EXPECT_EQ(FoldToField61(UINT64_MAX),
            static_cast<uint64_t>(static_cast<__uint128_t>(UINT64_MAX) %
                                  kMersennePrime61));
}

TEST(PrimeFieldTest, ReduceMersenne61HandlesMaxProduct) {
  const __uint128_t max_product =
      static_cast<__uint128_t>(kMersennePrime61 - 1) * (kMersennePrime61 - 1);
  EXPECT_EQ(ReduceMersenne61(max_product),
            static_cast<uint64_t>(max_product % kMersennePrime61));
}

TEST(PrimeFieldTest, IsConstexprUsable) {
  constexpr uint64_t kProduct = MulMod61(3, 5);
  static_assert(kProduct == 15);
  constexpr uint64_t kSum = AddMod61(kMersennePrime61 - 1, 1);
  static_assert(kSum == 0);
  SUCCEED();
}

}  // namespace
}  // namespace hashing
}  // namespace skimjoin
