// Concurrency-plane tests (DESIGN.md §13): the persistent WorkerPool, the
// pooled ParallelIngestor, and the relaxed-consistency ConcurrentIngestor.
// Three properties matter:
//   1. EXACTNESS — after Flush, the shared synopsis is counter-for-counter
//      identical to a sequential ingest (linearity makes relaxation
//      lossless at the linearization point).
//   2. BOUNDED-STALENESS CONSISTENCY — a reader under ReaderLock can never
//      observe a partially-propagated replica. For an insert-only CountMin
//      stream every table's counter-row sum equals the total propagated
//      weight, so unequal row sums would be direct evidence of a torn
//      propagation.
//   3. RACE-FREEDOM — the torture test drives concurrent AbsorbBatch /
//      reader / Flush traffic and is built under TSan in CI (the sanitize
//      matrix), where any unsynchronized access to replicas, pending
//      counts, or the shared synopsis becomes a hard failure.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "ingest/concurrent_ingestor.h"
#include "ingest/parallel_ingestor.h"
#include "ingest/worker_pool.h"
#include "query/engine.h"
#include "sketch/count_min_sketch.h"
#include "sketch/hash_sketch.h"
#include "stream/stream_element.h"
#include "stream/zipf.h"
#include "util/logging.h"
#include "util/random.h"

namespace skimjoin {
namespace {

using stream::StreamElement;

std::vector<StreamElement> MixedStream(uint64_t count, uint64_t domain,
                                       uint64_t seed) {
  Rng zipf_rng(seed);
  std::vector<StreamElement> elements =
      stream::ZipfDistribution(domain, 1.1).GenerateElements(count, &zipf_rng);
  Rng rng(seed + 1);
  for (StreamElement& element : elements) {
    const uint64_t roll = rng.NextUint64Below(10);
    if (roll == 0) element.weight = -1;
    if (roll == 1) element.weight = 3;
  }
  return elements;
}

// ---- WorkerPool ------------------------------------------------------------

TEST(WorkerPoolTest, RunsShardAddressedTasksToCompletion) {
  ingest::WorkerPool pool(4);
  ASSERT_EQ(4u, pool.num_workers());
  std::vector<uint64_t> per_worker(4, 0);
  for (int round = 0; round < 50; ++round) {
    for (uint64_t w = 0; w < 4; ++w) {
      pool.Submit(w, [&per_worker, w] { per_worker[w] += w + 1; });
    }
    pool.Barrier();  // Also the happens-before edge for reading per_worker.
  }
  for (uint64_t w = 0; w < 4; ++w) EXPECT_EQ(50 * (w + 1), per_worker[w]);
}

TEST(WorkerPoolTest, BarrierWithNothingSubmittedReturnsImmediately) {
  ingest::WorkerPool pool(2);
  pool.Barrier();
  pool.Barrier();
}

TEST(WorkerPoolTest, DestructorDrainsSubmittedTasks) {
  std::atomic<uint64_t> ran{0};
  {
    ingest::WorkerPool pool(3);
    for (int i = 0; i < 300; ++i) {
      pool.Submit(static_cast<uint64_t>(i), [&ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No Barrier: ~WorkerPool must finish the queue, not abandon it.
  }
  EXPECT_EQ(300u, ran.load());
}

TEST(WorkerPoolTest, PinningIsBestEffort) {
  ingest::WorkerPool pool(2, ingest::WorkerPool::Options{true});
  std::atomic<uint64_t> ran{0};
  pool.Submit(0, [&ran] { ran.fetch_add(1); });
  pool.Submit(1, [&ran] { ran.fetch_add(1); });
  pool.Barrier();
  EXPECT_EQ(2u, ran.load());
  EXPECT_LE(pool.pinned_workers(), pool.num_workers());
}

// ---- ParallelIngestor on the persistent pool -------------------------------

TEST(ParallelIngestorPoolTest, ManyBatchesAcrossPoolReuseStayExact) {
  auto sequential = *sketch::HashSketch::Create({7, 128}, 11);
  auto master = *sketch::HashSketch::Create({7, 128}, 11);
  auto ingestor =
      *ingest::ParallelIngestor<sketch::HashSketch>::Create(master, 4);
  // Many absorb/flush rounds through the same pool: exactness must survive
  // worker-thread reuse, including batches small enough to collapse inline.
  for (uint64_t round = 0; round < 6; ++round) {
    const auto batch = MixedStream(round % 2 == 0 ? 40000 : 100, 1u << 14,
                                   /*seed=*/100 + round);
    sequential.UpdateBatch(batch);
    ingestor.AbsorbBatch(batch);
    if (round % 2 == 1) ingestor.FlushInto(&master);
  }
  ingestor.FlushInto(&master);
  EXPECT_EQ(sequential.CounterArray().size(), master.CounterArray().size());
  for (size_t i = 0; i < sequential.CounterArray().size(); ++i) {
    ASSERT_EQ(sequential.CounterArray()[i], master.CounterArray()[i]) << i;
  }
}

// ---- ConcurrentIngestor ----------------------------------------------------

TEST(ConcurrentIngestorTest, CreateValidatesArguments) {
  auto sketch = *sketch::HashSketch::Create({5, 64}, 1);
  EXPECT_FALSE(ingest::ConcurrentIngestor<sketch::HashSketch>::Create(
                   nullptr, {})
                   .ok());
  ingest::ConcurrentIngestOptions zero_workers;
  zero_workers.num_workers = 0;
  EXPECT_FALSE(ingest::ConcurrentIngestor<sketch::HashSketch>::Create(
                   &sketch, zero_workers)
                   .ok());
  ingest::ConcurrentIngestOptions zero_interval;
  zero_interval.propagation_interval_elements = 0;
  EXPECT_FALSE(ingest::ConcurrentIngestor<sketch::HashSketch>::Create(
                   &sketch, zero_interval)
                   .ok());
}

TEST(ConcurrentIngestorTest, FlushIsExactAgainstSequentialIngest) {
  auto sequential = *sketch::HashSketch::Create({7, 128}, 5);
  auto shared = *sketch::HashSketch::Create({7, 128}, 5);
  ingest::ConcurrentIngestOptions options;
  options.num_workers = 3;
  options.propagation_interval_elements = 512;  // Force mid-stream epochs.
  auto ingestor = *ingest::ConcurrentIngestor<sketch::HashSketch>::Create(
      &shared, options);
  for (uint64_t round = 0; round < 8; ++round) {
    const auto batch =
        MixedStream(round % 3 == 0 ? 123 : 20000, 1u << 14, 40 + round);
    sequential.UpdateBatch(batch);
    ingestor->AbsorbBatch(batch);
  }
  ingestor->Flush();
  EXPECT_EQ(0u, ingestor->epoch_lag());
  EXPECT_GT(ingestor->epoch(), 0u);
  {
    auto lock = ingestor->ReaderLock();
    ASSERT_EQ(sequential.CounterArray().size(),
              ingestor->shared().CounterArray().size());
    for (size_t i = 0; i < sequential.CounterArray().size(); ++i) {
      ASSERT_EQ(sequential.CounterArray()[i],
                ingestor->shared().CounterArray()[i])
          << i;
    }
  }
}

TEST(ConcurrentIngestorTest, EpochLagTracksUnpropagatedElements) {
  auto shared = *sketch::HashSketch::Create({5, 64}, 2);
  ingest::ConcurrentIngestOptions options;
  options.num_workers = 2;
  // Interval far above everything submitted: nothing propagates until
  // Flush, so lag must equal the exact element count.
  options.propagation_interval_elements = 1u << 30;
  auto ingestor = *ingest::ConcurrentIngestor<sketch::HashSketch>::Create(
      &shared, options);
  const auto batch = MixedStream(5000, 1u << 12, 9);
  ingestor->AbsorbBatch(batch);
  EXPECT_LE(ingestor->epoch_lag(), 5000u);
  ingestor->Flush();
  EXPECT_EQ(0u, ingestor->epoch_lag());
  EXPECT_EQ(5000u, ingestor->stats().elements_absorbed);
}

/// The bounded-staleness consistency invariant: insert-only weight-1
/// traffic into CountMin adds exactly 1 to one bucket PER TABLE per
/// element, so under any ReaderLock snapshot all table-row sums are equal
/// (and equal the propagated element count). A torn propagation — some
/// rows of a replica merged, others not — is exactly what would break the
/// equality.
TEST(ConcurrentIngestorTest, ReadersNeverObservePartialPropagation) {
  constexpr uint64_t kTables = 5;
  constexpr uint64_t kBuckets = 64;
  constexpr uint64_t kBatch = 4096;
  constexpr uint64_t kBatches = 64;
  auto shared = *sketch::CountMinSketch::Create({kTables, kBuckets}, 3);
  ingest::ConcurrentIngestOptions options;
  options.num_workers = 2;
  options.propagation_interval_elements = 1000;  // Many mid-stream epochs.
  auto ingestor = *ingest::ConcurrentIngestor<sketch::CountMinSketch>::Create(
      &shared, options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> snapshots{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto lock = ingestor->ReaderLock();
        const auto counters = ingestor->shared().CounterArray();
        int64_t first_row = 0;
        for (uint64_t b = 0; b < kBuckets; ++b) first_row += counters[b];
        for (uint64_t t = 1; t < kTables; ++t) {
          int64_t row = 0;
          for (uint64_t b = 0; b < kBuckets; ++b) {
            row += counters[t * kBuckets + b];
          }
          if (row != first_row) torn.store(true, std::memory_order_relaxed);
        }
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Rng rng(77);
  std::vector<StreamElement> batch(kBatch);
  for (uint64_t i = 0; i < kBatches; ++i) {
    for (StreamElement& element : batch) {
      element = stream::Insert(rng.NextUint64Below(1u << 14));
    }
    ingestor->AbsorbBatch(batch);
  }
  ingestor->Flush();
  stop.store(true);
  for (std::thread& reader : readers) reader.join();

  EXPECT_FALSE(torn.load()) << "a reader saw a partially-propagated epoch";
  EXPECT_GT(snapshots.load(), 0u);
  // And the flushed total is exact.
  auto lock = ingestor->ReaderLock();
  const auto counters = ingestor->shared().CounterArray();
  int64_t row = 0;
  for (uint64_t b = 0; b < kBuckets; ++b) row += counters[b];
  EXPECT_EQ(static_cast<int64_t>(kBatch * kBatches), row);
}

/// TSan torture: concurrent AbsorbBatch (driver), point-estimate readers,
/// stats/epoch polling, and mid-stream Flush calls. Correctness assertions
/// are deliberately light — the payload is the interleaving itself, which
/// the sanitize matrix runs under ThreadSanitizer.
TEST(ConcurrentIngestorTest, TortureConcurrentAbsorbReadFlush) {
  auto shared = *sketch::HashSketch::Create({5, 64}, 13);
  ingest::ConcurrentIngestOptions options;
  options.num_workers = 3;
  options.propagation_interval_elements = 257;  // Prime: ragged epochs.
  options.max_lag_elements = 4096;              // Exercise forced locks.
  auto ingestor = *ingest::ConcurrentIngestor<sketch::HashSketch>::Create(
      &shared, options);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(1000 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        {
          auto lock = ingestor->ReaderLock();
          (void)ingestor->shared().PointEstimate(rng.NextUint64Below(4096));
        }
        (void)ingestor->epoch_lag();
        (void)ingestor->epoch();
        // On single-core runners a spinning reader starves the ingest
        // workers; yielding keeps the interleaving without the stall.
        std::this_thread::yield();
      }
    });
  }

  for (uint64_t round = 0; round < 20; ++round) {
    const auto batch = MixedStream(2000 + round * 37, 1u << 12, 500 + round);
    ingestor->AbsorbBatch(batch);
    if (round % 10 == 9) ingestor->Flush();
  }
  ingestor->Flush();
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(0u, ingestor->epoch_lag());
}

// ---- Engine integration ----------------------------------------------------

/// Builds an engine with one frequency query over stream "s" and feeds it
/// `updates` in `batches` slices. Concurrent mode per `options`.
struct EngineUnderTest {
  std::unique_ptr<query::Engine> engine;
  query::QueryId fq = 0;
};

EngineUnderTest BuildAndFeed(const std::vector<query::StreamUpdate>& updates,
                             uint64_t domain,
                             std::optional<query::Engine::IngestOptions>
                                 options) {
  EngineUnderTest out;
  out.engine = std::make_unique<query::Engine>();
  if (options.has_value()) {
    SKIMJOIN_CHECK_OK(out.engine->SetIngestOptions(*options));
  }
  SKIMJOIN_CHECK(out.engine->RegisterStream({"s", domain}).ok());
  query::FrequencyQuerySpec freq;
  freq.stream = "s";
  auto fq = out.engine->AddFrequencyQuery(freq, 5);
  SKIMJOIN_CHECK(fq.ok());
  out.fq = *fq;
  // Several batches so the concurrent path crosses propagation boundaries
  // repeatedly and reuses its persistent workers.
  const size_t kSlices = 8;
  const size_t per = updates.size() / kSlices;
  for (size_t s = 0; s < kSlices; ++s) {
    const size_t begin = s * per;
    const size_t end = (s + 1 == kSlices) ? updates.size() : begin + per;
    SKIMJOIN_CHECK_OK(out.engine->UpdateBatch(
        "s", std::span<const query::StreamUpdate>(updates.data() + begin,
                                                  end - begin)));
  }
  return out;
}

std::vector<query::StreamUpdate> EngineStream(uint64_t count, uint64_t domain,
                                              uint64_t seed) {
  std::vector<query::StreamUpdate> updates;
  updates.reserve(count);
  for (const StreamElement& element : MixedStream(count, domain, seed)) {
    updates.push_back({element.value, element.weight, 0});
  }
  return updates;
}

TEST(EngineConcurrentIngestTest, FlushedAnswersMatchSequentialEngine) {
  const uint64_t kDomain = 1u << 12;
  const auto updates = EngineStream(30000, kDomain, 61);

  EngineUnderTest sequential = BuildAndFeed(updates, kDomain, std::nullopt);
  query::Engine::IngestOptions options;
  options.shards = 2;
  options.concurrent = true;
  options.propagation_interval_elements = 1024;
  EngineUnderTest concurrent = BuildAndFeed(updates, kDomain, options);

  // Mid-stream (pre-flush) answers must be legal bounded-staleness reads —
  // no crash, no lock-up — even while workers may still be absorbing.
  ASSERT_TRUE(concurrent.engine->AnswerPointFrequency(concurrent.fq, 1).ok());

  concurrent.engine->FlushIngest();
  Rng rng(123);
  for (int i = 0; i < 200; ++i) {
    const uint64_t value = rng.NextUint64Below(kDomain);
    const auto expected =
        sequential.engine->AnswerPointFrequency(sequential.fq, value);
    const auto got =
        concurrent.engine->AnswerPointFrequency(concurrent.fq, value);
    ASSERT_TRUE(expected.ok() && got.ok());
    ASSERT_EQ(*expected, *got) << "value=" << value;
  }
  const auto expected_hh =
      sequential.engine->AnswerHeavyHitters(sequential.fq, 50);
  const auto got_hh = concurrent.engine->AnswerHeavyHitters(concurrent.fq, 50);
  ASSERT_TRUE(expected_hh.ok() && got_hh.ok());
  EXPECT_EQ(*expected_hh, *got_hh);
}

TEST(EngineConcurrentIngestTest, SerializeFlushesImplicitly) {
  const uint64_t kDomain = 1u << 12;
  const auto updates = EngineStream(20000, kDomain, 62);

  EngineUnderTest sequential = BuildAndFeed(updates, kDomain, std::nullopt);
  query::Engine::IngestOptions options;
  options.shards = 2;
  options.concurrent = true;
  options.propagation_interval_elements = 1u << 20;  // Nothing volunteers.
  EngineUnderTest concurrent = BuildAndFeed(updates, kDomain, options);

  // No explicit FlushIngest: SerializeQuerySynopsis must linearize on its
  // own so the distributed delta-pull payload is exact.
  std::string expected, got;
  SKIMJOIN_CHECK_OK(
      sequential.engine->SerializeQuerySynopsis(sequential.fq, &expected));
  SKIMJOIN_CHECK_OK(
      concurrent.engine->SerializeQuerySynopsis(concurrent.fq, &got));
  EXPECT_EQ(expected, got);
}

TEST(EngineConcurrentIngestTest, EpochLagGaugeDropsToZeroAfterFlush) {
  const uint64_t kDomain = 1u << 12;
  const auto updates = EngineStream(20000, kDomain, 63);
  query::Engine::IngestOptions options;
  options.shards = 2;
  options.concurrent = true;
  options.propagation_interval_elements = 1u << 20;  // Flush does the work.
  EngineUnderTest under = BuildAndFeed(updates, kDomain, options);

  under.engine->FlushIngest();
  const metrics::Snapshot snapshot = under.engine->MetricsSnapshot();
  bool saw_lag = false;
  bool saw_concurrent = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "ingest.s.epoch_lag") {
      saw_lag = true;
      EXPECT_EQ(0.0, value);
    }
    if (name == "engine.ingest_concurrent") {
      saw_concurrent = true;
      EXPECT_EQ(1.0, value);
    }
  }
  EXPECT_TRUE(saw_lag);
  EXPECT_TRUE(saw_concurrent);
}

TEST(EngineConcurrentIngestTest, ModeSwitchesNeverLoseElements) {
  const uint64_t kDomain = 1u << 10;
  query::Engine engine;
  ASSERT_TRUE(engine.RegisterStream({"s", kDomain}).ok());
  query::FrequencyQuerySpec freq;
  freq.stream = "s";
  auto fq = engine.AddFrequencyQuery(freq, 5);
  ASSERT_TRUE(fq.ok());

  query::Engine reference;
  ASSERT_TRUE(reference.RegisterStream({"s", kDomain}).ok());
  auto ref_fq = reference.AddFrequencyQuery(freq, 5);
  ASSERT_TRUE(ref_fq.ok());

  // inline → concurrent → sharded → concurrent → inline, feeding through
  // every transition; SetIngestOptions must flush so nothing is dropped.
  query::Engine::IngestOptions concurrent_mode;
  concurrent_mode.shards = 2;
  concurrent_mode.concurrent = true;
  concurrent_mode.propagation_interval_elements = 512;
  const std::vector<std::optional<query::Engine::IngestOptions>> phases = {
      std::nullopt, concurrent_mode, query::Engine::IngestOptions{2},
      concurrent_mode, std::nullopt};
  for (size_t phase = 0; phase < phases.size(); ++phase) {
    if (phases[phase].has_value()) {
      ASSERT_TRUE(engine.SetIngestOptions(*phases[phase]).ok());
    } else {
      ASSERT_TRUE(engine.SetIngestOptions({}).ok());
    }
    const auto updates = EngineStream(6000, kDomain, 70 + phase);
    ASSERT_TRUE(engine.UpdateBatch("s", updates).ok());
    ASSERT_TRUE(reference.UpdateBatch("s", updates).ok());
  }
  engine.FlushIngest();
  std::string expected, got;
  SKIMJOIN_CHECK_OK(reference.SerializeQuerySynopsis(*ref_fq, &expected));
  SKIMJOIN_CHECK_OK(engine.SerializeQuerySynopsis(*fq, &got));
  EXPECT_EQ(expected, got);
}

}  // namespace
}  // namespace skimjoin
