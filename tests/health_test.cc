// Engine::HealthReport() integration tests: the acceptance pin for the
// sketch-health subsystem. A skewed stream pushed through an undersized
// synopsis must surface as a finding naming the right stream and query
// ids, the health gauges must land in the metrics snapshot with HELP
// text, and — the non-negotiable — every paper-estimator answer must be
// bit-identical with the profiler on and off.

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "query/engine.h"
#include "stream/zipf.h"
#include "util/metrics.h"
#include "util/random.h"

namespace skimjoin {
namespace query {
namespace {

std::vector<StreamUpdate> ZipfUpdates(double z, uint64_t domain,
                                      uint64_t count, uint64_t seed) {
  Rng rng(seed);
  const stream::ZipfDistribution distribution(domain, z);
  std::vector<StreamUpdate> updates;
  updates.reserve(count);
  for (const stream::StreamElement& element :
       distribution.GenerateElements(count, &rng)) {
    updates.push_back({.value = element.value, .count = element.weight});
  }
  return updates;
}

const HealthFinding* FindRule(const std::vector<HealthFinding>& findings,
                              const std::string& rule,
                              const std::string& subject) {
  for (const HealthFinding& finding : findings) {
    if (finding.rule == rule && finding.subject == subject) return &finding;
  }
  return nullptr;
}

// The acceptance scenario: a skewed stream into an undersized hash
// sketch. The doctor must flag collision pressure on the right query id
// with the joined stream names in the message.
TEST(HealthReportTest, UndersizedSketchFlagsCollisionPressure) {
  constexpr uint64_t kDomain = 1u << 13;
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({"f", kDomain}).ok());
  ASSERT_TRUE(engine.RegisterStream({"g", kDomain}).ok());
  JoinQuerySpec spec;
  spec.left_stream = "f";
  spec.right_stream = "g";
  spec.estimator.kind = core::EstimatorKind::kHashSketch;
  spec.estimator.space_counters = 256;  // ~32x fewer buckets than values
  const StatusOr<QueryId> id = engine.AddJoinQuery(spec, 42);
  ASSERT_TRUE(id.ok());

  // Touch every domain value so bucket occupancy saturates.
  std::vector<StreamUpdate> sweep;
  sweep.reserve(kDomain);
  for (uint64_t value = 0; value < kDomain; ++value) {
    sweep.push_back({.value = value, .count = 1});
  }
  ASSERT_TRUE(engine.UpdateBatch("f", sweep).ok());
  ASSERT_TRUE(engine.UpdateBatch("g", sweep).ok());

  const query::HealthReport report = engine.HealthReport();

  ASSERT_FALSE(report.queries.empty());
  const QueryHealth& query = report.queries.front();
  EXPECT_EQ(query.id, *id);
  EXPECT_EQ(query.kind, "join");
  EXPECT_EQ(query.streams, "f⋈g");
  ASSERT_FALSE(query.synopses.empty());
  for (const SynopsisHealth& synopsis : query.synopses) {
    EXPECT_GE(synopsis.occupancy, 0.95);
    // The occupancy inversion saturates as buckets fill, so the pressure
    // estimate undershoots the true ~32 values/bucket — it still must read
    // clearly oversubscribed (the finding itself fires on occupancy).
    EXPECT_FALSE(std::isnan(synopsis.collision_pressure));
    EXPECT_GE(synopsis.collision_pressure, 2.0);
  }

  const std::string subject = "query " + std::to_string(*id);
  const HealthFinding* finding =
      FindRule(report.findings, "collision-pressure", subject);
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->severity, HealthFinding::Severity::kWarn);
  EXPECT_NE(finding->message.find("f⋈g"), std::string::npos);
  EXPECT_NE(finding->message.find("undersized"), std::string::npos);
}

// Counter saturation: weights big enough that the p99 counter magnitude
// crosses half of int32 must raise the slim-view fallback warning.
TEST(HealthReportTest, HeavyWeightsFlagInt32Saturation) {
  constexpr uint64_t kDomain = 1u << 10;
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({"s", kDomain}).ok());
  FrequencyQuerySpec spec;
  spec.stream = "s";
  spec.space_counters = 64;
  spec.num_tables = 3;
  spec.use_dyadic = false;
  const StatusOr<QueryId> id = engine.AddFrequencyQuery(spec, 7);
  ASSERT_TRUE(id.ok());

  std::vector<StreamUpdate> heavy;
  for (uint64_t value = 0; value < kDomain; ++value) {
    heavy.push_back({.value = value, .count = 1'500'000'000});
  }
  ASSERT_TRUE(engine.UpdateBatch("s", heavy).ok());

  const query::HealthReport report = engine.HealthReport();
  const std::string subject = "query " + std::to_string(*id);
  const HealthFinding* finding =
      FindRule(report.findings, "counter-saturation", subject);
  ASSERT_NE(finding, nullptr);
  EXPECT_NE(finding->message.find("int"), std::string::npos);
}

// The bit-identity pin: the profiler observes the stream but must never
// perturb an estimate. Same seeds, same updates, profiler on vs off —
// every answer identical to the last bit.
TEST(HealthReportTest, AnswersBitIdenticalWithProfilerOnAndOff) {
  constexpr uint64_t kDomain = 1u << 12;
  const std::vector<StreamUpdate> left = ZipfUpdates(1.1, kDomain, 20'000, 5);
  const std::vector<StreamUpdate> right = ZipfUpdates(1.1, kDomain, 20'000, 6);

  const auto build_and_answer = [&](bool profiler_on, double* join_answer,
                                    std::vector<int64_t>* frequencies) {
    Engine engine;
    engine.SetProfilerEnabled(profiler_on);
    ASSERT_TRUE(engine.RegisterStream({"f", kDomain}).ok());
    ASSERT_TRUE(engine.RegisterStream({"g", kDomain}).ok());
    JoinQuerySpec join;
    join.left_stream = "f";
    join.right_stream = "g";
    join.estimator.kind = core::EstimatorKind::kSkimmedSketch;
    join.estimator.space_counters = 2048;
    const StatusOr<QueryId> join_id = engine.AddJoinQuery(join, 11);
    ASSERT_TRUE(join_id.ok());
    FrequencyQuerySpec freq;
    freq.stream = "f";
    freq.space_counters = 1024;
    const StatusOr<QueryId> freq_id = engine.AddFrequencyQuery(freq, 13);
    ASSERT_TRUE(freq_id.ok());
    ASSERT_TRUE(engine.UpdateBatch("f", left).ok());
    ASSERT_TRUE(engine.UpdateBatch("g", right).ok());
    const StatusOr<double> join_result = engine.AnswerJoin(*join_id);
    ASSERT_TRUE(join_result.ok());
    *join_answer = *join_result;
    for (uint64_t value = 0; value < 32; ++value) {
      const StatusOr<int64_t> frequency =
          engine.AnswerPointFrequency(*freq_id, value);
      ASSERT_TRUE(frequency.ok());
      frequencies->push_back(*frequency);
    }
  };

  double join_on = 0.0, join_off = 0.0;
  std::vector<int64_t> freq_on, freq_off;
  build_and_answer(true, &join_on, &freq_on);
  build_and_answer(false, &join_off, &freq_off);
  // Exact double equality on purpose: the profiler must be invisible to
  // the estimators, not merely close.
  EXPECT_EQ(join_on, join_off);
  EXPECT_EQ(freq_on, freq_off);
}

TEST(HealthReportTest, StreamProfileAccessorAndKillSwitch) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({"f", 1u << 10}).ok());
  EXPECT_FALSE(engine.StreamProfile("nope").ok());

  ASSERT_TRUE(engine.Update("f", {.value = 3, .count = 2}).ok());
  StatusOr<util::StreamProfiler::Snapshot> profile =
      engine.StreamProfile("f");
  ASSERT_TRUE(profile.ok());
#ifndef SKIMJOIN_DISABLE_PROFILER
  EXPECT_EQ(profile->observations, 1u);
  EXPECT_EQ(profile->net_mass, 2);
#endif

  // The runtime kill switch stops observation without losing prior state.
  engine.SetProfilerEnabled(false);
  EXPECT_FALSE(engine.profiler_enabled());
  ASSERT_TRUE(engine.Update("f", {.value = 4, .count = 1}).ok());
  profile = engine.StreamProfile("f");
  ASSERT_TRUE(profile.ok());
#ifndef SKIMJOIN_DISABLE_PROFILER
  EXPECT_EQ(profile->observations, 1u);
#endif
}

TEST(HealthReportTest, StreamRulesFireOnDropsAndDeletes) {
  constexpr uint64_t kDomain = 64;
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({"f", kDomain}).ok());
  // Batch ingest skips out-of-domain elements and counts them as drops.
  std::vector<StreamUpdate> batch;
  batch.push_back({.value = 1, .count = 2});
  batch.push_back({.value = kDomain + 5, .count = 1});
  batch.push_back({.value = 2, .count = -2});
  ASSERT_TRUE(engine.UpdateBatch("f", batch).ok());

  const query::HealthReport report = engine.HealthReport();
  EXPECT_NE(FindRule(report.findings, "domain-drops", "stream f"), nullptr);
#ifndef SKIMJOIN_DISABLE_PROFILER
  EXPECT_NE(FindRule(report.findings, "delete-heavy", "stream f"), nullptr);
#endif
}

// The health gauges published by HealthReport must appear in the metrics
// snapshot, and — the HELP-coverage satellite — every family exported to
// Prometheus must carry a # HELP line.
TEST(HealthReportTest, GaugesPublishedAndEveryFamilyHasHelp) {
  constexpr uint64_t kDomain = 1u << 10;
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({"f", kDomain}).ok());
  ASSERT_TRUE(engine.RegisterStream({"g", kDomain}).ok());
  JoinQuerySpec join;
  join.left_stream = "f";
  join.right_stream = "g";
  join.estimator.kind = core::EstimatorKind::kSkimmedSketch;
  join.estimator.space_counters = 512;
  ASSERT_TRUE(engine.AddJoinQuery(join, 3).ok());
  FrequencyQuerySpec freq;
  freq.stream = "f";
  freq.space_counters = 256;
  const StatusOr<QueryId> freq_id = engine.AddFrequencyQuery(freq, 4);
  ASSERT_TRUE(freq_id.ok());
  const std::vector<StreamUpdate> updates = ZipfUpdates(1.0, kDomain, 5000, 9);
  ASSERT_TRUE(engine.UpdateBatch("f", updates).ok());
  ASSERT_TRUE(engine.UpdateBatch("g", updates).ok());
  ASSERT_TRUE(engine.AnswerPointFrequency(*freq_id, 0).ok());
  (void)engine.HealthReport();

  const metrics::Snapshot snapshot = engine.MetricsSnapshot();
  bool saw_occupancy = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name.find(".health.occupancy") != std::string::npos) {
      saw_occupancy = true;
      EXPECT_GT(value, 0.0);
    }
  }
  EXPECT_TRUE(saw_occupancy);

  // Every "# TYPE <family> ..." line must be directly preceded by a
  // "# HELP <family> ..." line.
  const std::string prom = metrics::ToPrometheusText(snapshot);
  std::istringstream lines(prom);
  std::string line, previous;
  size_t families = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      ++families;
      const std::string family = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_EQ(previous.rfind("# HELP " + family + " ", 0), 0u)
          << "family " << family << " exported without HELP";
    }
    previous = line;
  }
  EXPECT_GT(families, 10u);
}

}  // namespace
}  // namespace query
}  // namespace skimjoin
