#include "query/multi_join_hash.h"

#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace skimjoin {
namespace query {
namespace {

MultiJoinHashConfig ChainOfThree() {
  MultiJoinHashConfig config;
  config.num_relations = 3;
  config.num_tables = 5;
  config.num_buckets = 64;
  return config;
}

MultiJoinHashEstimator MustCreate(const MultiJoinHashConfig& config,
                                  uint64_t seed) {
  StatusOr<MultiJoinHashEstimator> est =
      MultiJoinHashEstimator::Create(config, seed);
  EXPECT_TRUE(est.ok()) << est.status();
  return *std::move(est);
}

TEST(MultiJoinHashTest, CreateValidatesConfig) {
  MultiJoinHashConfig config = ChainOfThree();
  config.num_relations = 1;
  EXPECT_FALSE(MultiJoinHashEstimator::Create(config, 1).ok());
  config = ChainOfThree();
  config.num_tables = 0;
  EXPECT_FALSE(MultiJoinHashEstimator::Create(config, 1).ok());
  config = ChainOfThree();
  config.num_buckets = 0;
  EXPECT_FALSE(MultiJoinHashEstimator::Create(config, 1).ok());
  EXPECT_TRUE(MultiJoinHashEstimator::Create(ChainOfThree(), 1).ok());
}

TEST(MultiJoinHashTest, UpdateRoutingValidated) {
  MultiJoinHashEstimator est = MustCreate(ChainOfThree(), 2);
  EXPECT_FALSE(est.UpdateEnd(1, 0, 1).ok());     // middle relation
  EXPECT_FALSE(est.UpdateMiddle(0, 0, 0, 1).ok());  // end relation
  EXPECT_FALSE(est.UpdateEnd(5, 0, 1).ok());     // unknown relation
  EXPECT_FALSE(est.UpdateMiddle(5, 0, 0, 1).ok());
  EXPECT_TRUE(est.UpdateEnd(0, 3, 1).ok());
  EXPECT_TRUE(est.UpdateMiddle(1, 3, 9, 1).ok());
  EXPECT_TRUE(est.UpdateEnd(2, 9, 1).ok());
}

TEST(MultiJoinHashTest, EmptyEstimateIsZero) {
  MultiJoinHashEstimator est = MustCreate(ChainOfThree(), 3);
  EXPECT_DOUBLE_EQ(est.Estimate(), 0.0);
}

TEST(MultiJoinHashTest, SingleMatchingTupleChain) {
  MultiJoinHashEstimator est = MustCreate(ChainOfThree(), 4);
  ASSERT_TRUE(est.UpdateEnd(0, 7, 1).ok());
  ASSERT_TRUE(est.UpdateMiddle(1, 7, 9, 1).ok());
  ASSERT_TRUE(est.UpdateEnd(2, 9, 1).ok());
  // Signs square away along the chain: exactly 1.
  EXPECT_DOUBLE_EQ(est.Estimate(), 1.0);
}

TEST(MultiJoinHashTest, ScalesWithMultiplicities) {
  MultiJoinHashEstimator est = MustCreate(ChainOfThree(), 5);
  ASSERT_TRUE(est.UpdateEnd(0, 7, 4).ok());
  ASSERT_TRUE(est.UpdateMiddle(1, 7, 9, 3).ok());
  ASSERT_TRUE(est.UpdateEnd(2, 9, 2).ok());
  EXPECT_DOUBLE_EQ(est.Estimate(), 24.0);
}

TEST(MultiJoinHashTest, NonMatchingChainEstimatesZeroInExpectation) {
  MultiJoinHashEstimator est = MustCreate(ChainOfThree(), 6);
  // Middle relation connects (7, 9) but neither end matches.
  ASSERT_TRUE(est.UpdateEnd(0, 1, 5).ok());
  ASSERT_TRUE(est.UpdateMiddle(1, 7, 9, 5).ok());
  ASSERT_TRUE(est.UpdateEnd(2, 2, 5).ok());
  // With 64 buckets these values land apart for this seed: exact zero.
  EXPECT_DOUBLE_EQ(est.Estimate(), 0.0);
}

TEST(MultiJoinHashTest, DeletesCancel) {
  MultiJoinHashEstimator est = MustCreate(ChainOfThree(), 7);
  ASSERT_TRUE(est.UpdateEnd(0, 7, 1).ok());
  ASSERT_TRUE(est.UpdateMiddle(1, 7, 9, 1).ok());
  ASSERT_TRUE(est.UpdateEnd(2, 9, 1).ok());
  ASSERT_TRUE(est.UpdateMiddle(1, 7, 9, -1).ok());
  EXPECT_DOUBLE_EQ(est.Estimate(), 0.0);
}

TEST(MultiJoinHashTest, TwoRelationChainMatchesBinarySemantics) {
  MultiJoinHashConfig config;
  config.num_relations = 2;
  config.num_tables = 5;
  config.num_buckets = 128;
  MultiJoinHashEstimator est = MustCreate(config, 8);
  ASSERT_TRUE(est.UpdateEnd(0, 3, 10).ok());
  ASSERT_TRUE(est.UpdateEnd(1, 3, 7).ok());
  EXPECT_DOUBLE_EQ(est.Estimate(), 70.0);
}

TEST(MultiJoinHashTest, UnbiasedAcrossSeedsOnRandomInstance) {
  constexpr uint64_t kDomain = 16;
  std::vector<int64_t> r0(kDomain, 0);
  std::vector<std::vector<int64_t>> r1(kDomain,
                                       std::vector<int64_t>(kDomain, 0));
  std::vector<int64_t> r2(kDomain, 0);
  Rng rng(9);
  for (int i = 0; i < 80; ++i) r0[rng.NextUint64Below(kDomain)] += 1;
  for (int i = 0; i < 80; ++i) {
    r1[rng.NextUint64Below(kDomain)][rng.NextUint64Below(kDomain)] += 1;
  }
  for (int i = 0; i < 80; ++i) r2[rng.NextUint64Below(kDomain)] += 1;
  double exact = 0.0;
  for (uint64_t u = 0; u < kDomain; ++u) {
    for (uint64_t v = 0; v < kDomain; ++v) {
      exact += static_cast<double>(r0[u]) * static_cast<double>(r1[u][v]) *
               static_cast<double>(r2[v]);
    }
  }
  ASSERT_GT(exact, 0.0);

  MultiJoinHashConfig config;
  config.num_relations = 3;
  config.num_tables = 1;
  config.num_buckets = 16;
  double sum = 0.0;
  constexpr int kSeeds = 300;
  for (int seed = 0; seed < kSeeds; ++seed) {
    MultiJoinHashEstimator est =
        MustCreate(config, static_cast<uint64_t>(seed) + 3000);
    for (uint64_t u = 0; u < kDomain; ++u) {
      if (r0[u] != 0) {
        ASSERT_TRUE(est.UpdateEnd(0, u, r0[u]).ok());
      }
      for (uint64_t v = 0; v < kDomain; ++v) {
        if (r1[u][v] != 0) {
          ASSERT_TRUE(est.UpdateMiddle(1, u, v, r1[u][v]).ok());
        }
      }
    }
    for (uint64_t v = 0; v < kDomain; ++v) {
      if (r2[v] != 0) {
        ASSERT_TRUE(est.UpdateEnd(2, v, r2[v]).ok());
      }
    }
    sum += est.Estimate();
  }
  EXPECT_NEAR(sum / kSeeds, exact, 0.35 * exact);
}

TEST(MultiJoinHashTest, FourRelationChain) {
  MultiJoinHashConfig config;
  config.num_relations = 4;
  config.num_tables = 5;
  config.num_buckets = 32;
  MultiJoinHashEstimator est = MustCreate(config, 10);
  ASSERT_TRUE(est.UpdateEnd(0, 1, 2).ok());
  ASSERT_TRUE(est.UpdateMiddle(1, 1, 2, 3).ok());
  ASSERT_TRUE(est.UpdateMiddle(2, 2, 3, 5).ok());
  ASSERT_TRUE(est.UpdateEnd(3, 3, 7).ok());
  EXPECT_DOUBLE_EQ(est.Estimate(), 2.0 * 3 * 5 * 7);
}

TEST(MultiJoinHashTest, SpaceAccounting) {
  MultiJoinHashEstimator est = MustCreate(ChainOfThree(), 11);
  // Two end relations: 5·64 each; one middle: 5·64².
  EXPECT_EQ(est.TotalCounters(), 2u * 5 * 64 + 5u * 64 * 64);
}

}  // namespace
}  // namespace query
}  // namespace skimjoin
