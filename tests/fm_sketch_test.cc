#include "sketch/fm_sketch.h"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "gtest/gtest.h"
#include "util/random.h"

namespace skimjoin {
namespace sketch {
namespace {

FmSketch MustCreate(uint64_t num_maps, uint64_t seed) {
  StatusOr<FmSketch> sketch = FmSketch::Create(num_maps, seed);
  EXPECT_TRUE(sketch.ok()) << sketch.status();
  return *std::move(sketch);
}

TEST(FmSketchTest, CreateValidates) {
  EXPECT_FALSE(FmSketch::Create(0, 1).ok());
  EXPECT_TRUE(FmSketch::Create(1, 1).ok());
}

TEST(FmSketchTest, EmptySketchEstimatesNearZeroDistinct) {
  FmSketch sketch = MustCreate(64, 1);
  // With every position unset the estimate is num_maps/phi ≈ 83 — the
  // method's intrinsic floor; just check it did not blow up.
  EXPECT_LT(sketch.EstimateDistinctCount(), 100.0);
}

TEST(FmSketchTest, EstimateGrowsWithDistinctCount) {
  FmSketch small = MustCreate(64, 2);
  FmSketch large = MustCreate(64, 2);
  for (uint64_t v = 0; v < 500; ++v) small.Update(v, 1);
  for (uint64_t v = 0; v < 50000; ++v) large.Update(v, 1);
  EXPECT_GT(large.EstimateDistinctCount(), small.EstimateDistinctCount());
}

TEST(FmSketchTest, EstimateWithinConstantFactorOfTruth) {
  constexpr uint64_t kDistinct = 20000;
  FmSketch sketch = MustCreate(256, 3);
  for (uint64_t v = 0; v < kDistinct; ++v) sketch.Update(v, 1);
  const double estimate = sketch.EstimateDistinctCount();
  EXPECT_GT(estimate, kDistinct / 2.0);
  EXPECT_LT(estimate, kDistinct * 2.0);
}

TEST(FmSketchTest, DuplicatesDoNotInflateTheEstimate) {
  FmSketch once = MustCreate(128, 4);
  FmSketch many = MustCreate(128, 4);
  for (uint64_t v = 0; v < 1000; ++v) once.Update(v, 1);
  for (int rep = 0; rep < 20; ++rep) {
    for (uint64_t v = 0; v < 1000; ++v) many.Update(v, 1);
  }
  // Counters differ but set-bit patterns are identical.
  EXPECT_DOUBLE_EQ(once.EstimateDistinctCount(), many.EstimateDistinctCount());
}

TEST(FmSketchTest, MatchedDeletesCancelExactly) {
  FmSketch sketch = MustCreate(64, 5);
  const FmSketch empty = MustCreate(64, 5);
  for (uint64_t v = 0; v < 3000; ++v) sketch.Update(v, 1);
  for (uint64_t v = 0; v < 3000; ++v) sketch.Update(v, -1);
  EXPECT_DOUBLE_EQ(sketch.EstimateDistinctCount(),
                   empty.EstimateDistinctCount());
}

TEST(FmSketchTest, PartialDeletesShrinkTheEstimate) {
  FmSketch sketch = MustCreate(256, 6);
  for (uint64_t v = 0; v < 50000; ++v) sketch.Update(v, 1);
  const double before = sketch.EstimateDistinctCount();
  for (uint64_t v = 1000; v < 50000; ++v) sketch.Update(v, -1);
  const double after = sketch.EstimateDistinctCount();
  EXPECT_LT(after, before / 4.0);
}

TEST(FmSketchTest, MergeEqualsUnion) {
  FmSketch part1 = MustCreate(128, 7);
  FmSketch part2 = MustCreate(128, 7);
  FmSketch whole = MustCreate(128, 7);
  for (uint64_t v = 0; v < 4000; ++v) {
    part1.Update(v, 1);
    whole.Update(v, 1);
  }
  for (uint64_t v = 4000; v < 8000; ++v) {
    part2.Update(v, 1);
    whole.Update(v, 1);
  }
  part1.Merge(part2);
  EXPECT_DOUBLE_EQ(part1.EstimateDistinctCount(),
                   whole.EstimateDistinctCount());
}

TEST(FmSketchTest, CompatibilityChecks) {
  FmSketch a = MustCreate(64, 8);
  FmSketch same = MustCreate(64, 8);
  FmSketch other_seed = MustCreate(64, 9);
  FmSketch other_maps = MustCreate(32, 8);
  EXPECT_TRUE(a.CompatibleWith(same));
  EXPECT_FALSE(a.CompatibleWith(other_seed));
  EXPECT_FALSE(a.CompatibleWith(other_maps));
}

TEST(FmSketchDeathTest, MergeIncompatibleAborts) {
  FmSketch a = MustCreate(64, 1);
  FmSketch b = MustCreate(64, 2);
  EXPECT_DEATH(a.Merge(b), "incompatible");
}

TEST(FmSketchTest, SpaceAccounting) {
  EXPECT_EQ(MustCreate(16, 1).TotalCounters(), 16u * 64);
}

// Relative accuracy improves with more maps (property over a small sweep).
class FmAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FmAccuracyTest, WithinTheoreticalEnvelope) {
  const uint64_t maps = GetParam();
  constexpr uint64_t kDistinct = 30000;
  FmSketch sketch = MustCreate(maps, 11);
  for (uint64_t v = 0; v < kDistinct; ++v) sketch.Update(v * 977 + 13, 1);
  const double estimate = sketch.EstimateDistinctCount();
  // FM standard error ≈ 0.78/sqrt(maps) in log2 scale; allow a wide
  // envelope so the test is seed-stable.
  const double envelope = 4.0 * 0.78 / std::sqrt(static_cast<double>(maps));
  const double log_ratio = std::log2(estimate / kDistinct);
  EXPECT_LT(std::abs(log_ratio), 1.0 + envelope) << "maps=" << maps;
}

INSTANTIATE_TEST_SUITE_P(Maps, FmAccuracyTest,
                         ::testing::Values(32, 64, 128, 256, 512));

}  // namespace
}  // namespace sketch
}  // namespace skimjoin
