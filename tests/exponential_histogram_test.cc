#include "stream/exponential_histogram.h"

#include <cstdlib>
#include <utility>

#include "gtest/gtest.h"
#include "util/random.h"

namespace skimjoin {
namespace stream {
namespace {

ExponentialHistogram MustCreate(uint64_t window, double epsilon) {
  StatusOr<ExponentialHistogram> eh =
      ExponentialHistogram::Create(window, epsilon);
  EXPECT_TRUE(eh.ok()) << eh.status();
  return *std::move(eh);
}

TEST(ExponentialHistogramTest, CreateValidates) {
  EXPECT_FALSE(ExponentialHistogram::Create(0, 0.1).ok());
  EXPECT_FALSE(ExponentialHistogram::Create(10, 0.0).ok());
  EXPECT_FALSE(ExponentialHistogram::Create(10, 1.5).ok());
  EXPECT_TRUE(ExponentialHistogram::Create(10, 0.1).ok());
}

TEST(ExponentialHistogramTest, EmptyEstimatesZero) {
  ExponentialHistogram eh = MustCreate(100, 0.1);
  EXPECT_EQ(eh.Estimate(), 0);
  EXPECT_EQ(eh.num_buckets(), 0u);
}

TEST(ExponentialHistogramTest, ExactWhileFewOnes) {
  // With few 1s no merging happens and the count is exact.
  ExponentialHistogram eh = MustCreate(1000, 0.5);
  for (int i = 0; i < 3; ++i) {
    eh.Arrive(true);
    eh.Arrive(false);
  }
  // Oldest bucket has size 1 → estimate = 3 - 1/2 = 3 (integer division).
  EXPECT_EQ(eh.Estimate(), 3);
  EXPECT_EQ(eh.UpperBound(), 3);
  EXPECT_EQ(eh.LowerBound(), 3);
}

TEST(ExponentialHistogramTest, ZerosDoNotCreateBuckets) {
  ExponentialHistogram eh = MustCreate(50, 0.1);
  for (int i = 0; i < 200; ++i) eh.Arrive(false);
  EXPECT_EQ(eh.Estimate(), 0);
  EXPECT_EQ(eh.num_buckets(), 0u);
}

TEST(ExponentialHistogramTest, AllOnesWindowEstimateWithinEpsilon) {
  constexpr uint64_t kWindow = 1000;
  constexpr double kEpsilon = 0.1;
  ExponentialHistogram eh = MustCreate(kWindow, kEpsilon);
  for (int i = 0; i < 5000; ++i) eh.Arrive(true);
  // True windowed count = 1000.
  const double error =
      std::abs(static_cast<double>(eh.Estimate()) - 1000.0) / 1000.0;
  EXPECT_LE(error, kEpsilon + 0.01);
}

TEST(ExponentialHistogramTest, BoundsBracketTruthOnRandomStreams) {
  constexpr uint64_t kWindow = 500;
  ExponentialHistogram eh = MustCreate(kWindow, 0.2);
  Rng rng(7);
  std::vector<bool> history;
  for (int i = 0; i < 4000; ++i) {
    const bool one = rng.NextUint64Below(100) < 37;
    history.push_back(one);
    eh.Arrive(one);
    if (i % 500 == 499) {
      int64_t exact = 0;
      const size_t start =
          history.size() > kWindow ? history.size() - kWindow : 0;
      for (size_t j = start; j < history.size(); ++j) exact += history[j];
      ASSERT_LE(eh.LowerBound(), exact) << "at arrival " << i;
      ASSERT_GE(eh.UpperBound(), exact) << "at arrival " << i;
      const double error =
          std::abs(static_cast<double>(eh.Estimate()) -
                   static_cast<double>(exact)) /
          std::max<double>(1.0, static_cast<double>(exact));
      ASSERT_LE(error, 0.25) << "at arrival " << i;
    }
  }
}

TEST(ExponentialHistogramTest, OldOnesExpire) {
  ExponentialHistogram eh = MustCreate(10, 0.1);
  for (int i = 0; i < 5; ++i) eh.Arrive(true);
  for (int i = 0; i < 20; ++i) eh.Arrive(false);
  EXPECT_EQ(eh.Estimate(), 0);
}

TEST(ExponentialHistogramTest, SpaceStaysLogarithmic) {
  constexpr uint64_t kWindow = 1u << 16;
  ExponentialHistogram eh = MustCreate(kWindow, 0.1);
  for (uint64_t i = 0; i < 2 * kWindow; ++i) eh.Arrive(true);
  // DGIM bound: (1/(2ε) + 2)·(log(2εW) + 1) buckets ≈ 7·(log W) here; far
  // below the window size. Allow a loose multiple.
  EXPECT_LT(eh.num_buckets(), 200u);
}

// Tighter epsilon → more buckets → tighter estimates (parameterized).
class EhEpsilonTest : public ::testing::TestWithParam<double> {};

TEST_P(EhEpsilonTest, ErrorWithinConfiguredEpsilon) {
  const double epsilon = GetParam();
  constexpr uint64_t kWindow = 2048;
  ExponentialHistogram eh = MustCreate(kWindow, epsilon);
  for (int i = 0; i < 10000; ++i) eh.Arrive(true);
  const double error =
      std::abs(static_cast<double>(eh.Estimate()) -
               static_cast<double>(kWindow)) /
      static_cast<double>(kWindow);
  EXPECT_LE(error, epsilon + 0.01) << "epsilon " << epsilon;
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EhEpsilonTest,
                         ::testing::Values(0.5, 0.25, 0.1, 0.05, 0.02));

}  // namespace
}  // namespace stream
}  // namespace skimjoin
