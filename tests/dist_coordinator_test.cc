// Coordinator tests against real in-process workers (each Serve()-ing on
// its own thread over a real Unix socket): merged answers are bit-identical
// to a single local engine, RPCs stay inside their deadline + retry budget
// when a shard is unreachable, chaos-injected frame corruption is retried
// through, a dead shard degrades answers to flagged partials, and a worker
// restarted from its checkpoint is re-adopted without double-merging.

#include "dist/coordinator.h"

#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/worker.h"
#include "gtest/gtest.h"
#include "query/engine.h"
#include "util/event_log.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/random.h"

namespace skimjoin {
namespace dist {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// One worker Serve()-ing on a background thread; stoppable and
/// restartable (same options → same socket and checkpoint).
class WorkerHarness {
 public:
  explicit WorkerHarness(WorkerOptions options)
      : options_(std::move(options)) {
    Start();
  }
  ~WorkerHarness() { Stop(); }

  void Start() {
    StatusOr<std::unique_ptr<Worker>> worker = Worker::Create(options_);
    ASSERT_TRUE(worker.ok()) << worker.status();
    worker_ = std::move(*worker);
    thread_ = std::thread([this] {
      const Status status = worker_->Serve();
      EXPECT_TRUE(status.ok()) << status;
    });
  }

  void Stop() {
    if (worker_ != nullptr) worker_->RequestStop();
    if (thread_.joinable()) thread_.join();
    worker_.reset();
  }

  void Restart() {
    Stop();
    Start();
  }

 private:
  WorkerOptions options_;
  std::unique_ptr<Worker> worker_;
  std::thread thread_;
};

WorkerOptions MakeWorkerOptions(std::string socket, std::string shard) {
  WorkerOptions options;
  options.socket_path = std::move(socket);
  options.shard_name = std::move(shard);
  return options;
}

CoordinatorOptions FastOptions() {
  CoordinatorOptions options;
  options.rpc_timeout = milliseconds(2000);
  options.rpc_attempts = 3;
  options.backoff_base = milliseconds(1);
  options.backoff_cap = milliseconds(10);
  options.down_after_failures = 2;
  return options;
}

query::JoinQuerySpec SkimmedJoinSpec() {
  query::JoinQuerySpec spec;
  spec.left_stream = "f";
  spec.right_stream = "g";
  spec.estimator.kind = core::EstimatorKind::kSkimmedSketch;
  spec.estimator.space_counters = 1024;
  return spec;
}

/// Feeds the same deterministic workload to a backend and a local engine.
std::vector<query::StreamUpdate> Workload(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<query::StreamUpdate> updates;
  updates.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    updates.push_back({rng.NextUint64Below(1u << 12), 1, 0});
  }
  return updates;
}

TEST(CoordinatorTest, MergedAnswersAreBitIdenticalToLocalEngine) {
  const std::string dir = ::testing::TempDir();
  WorkerHarness w0(MakeWorkerOptions(dir + "/coord_ident_0.sock", "s0"));
  WorkerHarness w1(MakeWorkerOptions(dir + "/coord_ident_1.sock", "s1"));
  Coordinator coordinator({{"s0", dir + "/coord_ident_0.sock"},
                           {"s1", dir + "/coord_ident_1.sock"}},
                          FastOptions());

  query::Engine engine;
  const query::StreamSpec f{"f", 1u << 12};
  const query::StreamSpec g{"g", 1u << 12};
  ASSERT_TRUE(coordinator.RegisterStream(f).ok());
  ASSERT_TRUE(coordinator.RegisterStream(g).ok());
  ASSERT_TRUE(engine.RegisterStream(f).ok());
  ASSERT_TRUE(engine.RegisterStream(g).ok());

  const uint64_t kSeed = 77;
  StatusOr<query::QueryId> dist_join =
      coordinator.AddJoinQuery(SkimmedJoinSpec(), kSeed);
  ASSERT_TRUE(dist_join.ok()) << dist_join.status();
  StatusOr<query::QueryId> local_join =
      engine.AddJoinQuery(SkimmedJoinSpec(), kSeed);
  ASSERT_TRUE(local_join.ok()) << local_join.status();

  query::FrequencyQuerySpec freq;
  freq.stream = "f";
  freq.space_counters = 512;
  StatusOr<query::QueryId> dist_freq =
      coordinator.AddFrequencyQuery(freq, kSeed + 1);
  ASSERT_TRUE(dist_freq.ok()) << dist_freq.status();
  StatusOr<query::QueryId> local_freq =
      engine.AddFrequencyQuery(freq, kSeed + 1);
  ASSERT_TRUE(local_freq.ok()) << local_freq.status();

  const std::vector<query::StreamUpdate> f_updates = Workload(1, 500);
  const std::vector<query::StreamUpdate> g_updates = Workload(2, 500);
  ASSERT_TRUE(coordinator.UpdateBatch("f", f_updates).ok());
  ASSERT_TRUE(coordinator.UpdateBatch("g", g_updates).ok());
  ASSERT_TRUE(engine.UpdateBatch("f", f_updates).ok());
  ASSERT_TRUE(engine.UpdateBatch("g", g_updates).ok());

  StatusOr<double> dist_answer = coordinator.AnswerJoin(*dist_join);
  StatusOr<double> local_answer = engine.AnswerJoin(*local_join);
  ASSERT_TRUE(dist_answer.ok()) << dist_answer.status();
  ASSERT_TRUE(local_answer.ok()) << local_answer.status();
  // Bit-identical, not approximately equal: merging shard synopses by
  // linearity reconstructs the exact counters a single engine builds.
  EXPECT_EQ(*local_answer, *dist_answer);

  for (const uint64_t value : {f_updates[0].value, f_updates[1].value,
                               f_updates[2].value, uint64_t{4000}}) {
    StatusOr<int64_t> dist_point =
        coordinator.AnswerPointFrequency(*dist_freq, value);
    StatusOr<int64_t> local_point =
        engine.AnswerPointFrequency(*local_freq, value);
    ASSERT_TRUE(dist_point.ok()) << dist_point.status();
    ASSERT_TRUE(local_point.ok()) << local_point.status();
    EXPECT_EQ(*local_point, *dist_point) << "value " << value;
  }

  StatusOr<EstimateReport> report =
      coordinator.AnswerJoinWithReport(*dist_join);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->partial);
  ASSERT_EQ(2u, report->shards.size());
  for (const ShardContribution& shard : report->shards) {
    EXPECT_TRUE(shard.fresh) << shard.shard;
    EXPECT_EQ("healthy", shard.health) << shard.shard;
    EXPECT_EQ(0u, shard.epochs_behind) << shard.shard;
  }
}

TEST(CoordinatorTest, UnreachableShardStaysInsideRetryBudgetAndDeadline) {
  CoordinatorOptions options = FastOptions();
  options.rpc_timeout = milliseconds(100);
  Coordinator coordinator(
      {{"ghost", ::testing::TempDir() + "/no_such_worker.sock"}}, options);

  const auto start = steady_clock::now();
  const Status status =
      coordinator.RegisterStream(query::StreamSpec{"f", 1u << 12});
  const auto elapsed = steady_clock::now() - start;
  ASSERT_FALSE(status.ok());
  // 3 attempts × 100ms deadline + backoffs ≤ 10ms each, with slack.
  EXPECT_LT(elapsed, milliseconds(2000));

  const std::vector<query::DistShardStatus> statuses =
      coordinator.ShardStatuses();
  ASSERT_EQ(1u, statuses.size());
  EXPECT_EQ("down", statuses[0].health);
  EXPECT_GE(statuses[0].rpc_failures, 2u);
}

TEST(CoordinatorTest, ChaoticFrameCorruptionIsRetriedThrough) {
  const std::string dir = ::testing::TempDir();
  WorkerHarness worker(MakeWorkerOptions(dir + "/coord_chaos.sock", "s0"));
  CoordinatorOptions options = FastOptions();
  options.rpc_attempts = 6;
  Coordinator coordinator({{"s0", dir + "/coord_chaos.sock"}}, options);

  ASSERT_TRUE(coordinator.RegisterStream({"f", 1u << 12}).ok());
  ASSERT_TRUE(coordinator.RegisterStream({"g", 1u << 12}).ok());
  StatusOr<query::QueryId> join =
      coordinator.AddJoinQuery(SkimmedJoinSpec(), 7);
  ASSERT_TRUE(join.ok()) << join.status();
  ASSERT_TRUE(coordinator.UpdateBatch("f", Workload(1, 200)).ok());
  ASSERT_TRUE(coordinator.UpdateBatch("g", Workload(2, 200)).ok());
  StatusOr<double> clean_answer = coordinator.AnswerJoin(*join);
  ASSERT_TRUE(clean_answer.ok()) << clean_answer.status();

  // Probabilistic CRC corruption on every Send (workers and coordinator
  // alike — they share the process). The schedule is deterministic from
  // the printed seed; the retry budget must ride it out.
  const uint64_t kChaosSeed = 20260808;
  SCOPED_TRACE("chaos seed " + std::to_string(kChaosSeed));
  failpoint::SeedChaos(kChaosSeed);
  {
    failpoint::Spec spec;
    spec.one_in = 4;
    failpoint::ScopedFailpoint guard("dist:frame-crc", spec);
    StatusOr<double> chaotic_answer = coordinator.AnswerJoin(*join);
    ASSERT_TRUE(chaotic_answer.ok()) << chaotic_answer.status();
    EXPECT_EQ(*clean_answer, *chaotic_answer);
  }

  // Corruption gone: the next pull promotes the shard back to healthy.
  StatusOr<double> recovered = coordinator.AnswerJoin(*join);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(*clean_answer, *recovered);
  EXPECT_EQ("healthy", coordinator.ShardStatuses()[0].health);
}

TEST(CoordinatorTest, DeadShardYieldsFlaggedPartialAnswer) {
  const std::string dir = ::testing::TempDir();
  auto w0 = std::make_unique<WorkerHarness>(
      MakeWorkerOptions(dir + "/coord_part_0.sock", "s0"));
  WorkerHarness w1(MakeWorkerOptions(dir + "/coord_part_1.sock", "s1"));
  CoordinatorOptions options = FastOptions();
  options.rpc_timeout = milliseconds(200);
  Coordinator coordinator({{"s0", dir + "/coord_part_0.sock"},
                           {"s1", dir + "/coord_part_1.sock"}},
                          options);

  ASSERT_TRUE(coordinator.RegisterStream({"f", 1u << 12}).ok());
  ASSERT_TRUE(coordinator.RegisterStream({"g", 1u << 12}).ok());
  StatusOr<query::QueryId> join =
      coordinator.AddJoinQuery(SkimmedJoinSpec(), 7);
  ASSERT_TRUE(join.ok()) << join.status();
  ASSERT_TRUE(coordinator.UpdateBatch("f", Workload(1, 300)).ok());
  ASSERT_TRUE(coordinator.UpdateBatch("g", Workload(2, 300)).ok());

  // Warm the caches while both shards live.
  StatusOr<EstimateReport> healthy_report =
      coordinator.AnswerJoinWithReport(*join);
  ASSERT_TRUE(healthy_report.ok()) << healthy_report.status();
  ASSERT_FALSE(healthy_report->partial);

  // Kill shard s0 and answer again: the cached s0 delta keeps the answer
  // available, but the report must flag it partial and name the shard.
  w0.reset();
  StatusOr<EstimateReport> degraded =
      coordinator.AnswerJoinWithReport(*join);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_TRUE(degraded->partial);
  ASSERT_EQ(2u, degraded->shards.size());
  bool found_stale_s0 = false;
  for (const ShardContribution& shard : degraded->shards) {
    if (shard.shard == "s0") {
      EXPECT_FALSE(shard.fresh);
      found_stale_s0 = true;
    } else {
      EXPECT_TRUE(shard.fresh) << shard.shard;
    }
  }
  EXPECT_TRUE(found_stale_s0);
  // The cached deltas cover everything ingested, so even the degraded
  // estimate matches the healthy one exactly.
  EXPECT_EQ(healthy_report->estimate, degraded->estimate);
}

TEST(CoordinatorTest, RestartedWorkerIsReadoptedWithoutDoubleMerge) {
  const std::string dir = ::testing::TempDir();
  WorkerOptions worker_options;
  worker_options.socket_path = dir + "/coord_restart.sock";
  worker_options.shard_name = "s0";
  worker_options.checkpoint_path = dir + "/coord_restart.ckpt";
  // TempDir persists across runs; a stale checkpoint would smuggle last
  // run's state into this one.
  ::unlink(worker_options.checkpoint_path.c_str());
  WorkerHarness worker(worker_options);
  Coordinator coordinator({{"s0", worker_options.socket_path}},
                          FastOptions());

  ASSERT_TRUE(coordinator.RegisterStream({"f", 1u << 12}).ok());
  ASSERT_TRUE(coordinator.RegisterStream({"g", 1u << 12}).ok());
  StatusOr<query::QueryId> join =
      coordinator.AddJoinQuery(SkimmedJoinSpec(), 7);
  ASSERT_TRUE(join.ok()) << join.status();
  ASSERT_TRUE(coordinator.UpdateBatch("f", Workload(1, 300)).ok());
  ASSERT_TRUE(coordinator.UpdateBatch("g", Workload(2, 300)).ok());
  ASSERT_TRUE(coordinator.CheckpointShards().ok());

  StatusOr<double> before = coordinator.AnswerJoin(*join);
  ASSERT_TRUE(before.ok()) << before.status();
  const uint64_t incarnation_before = coordinator.ShardStatuses()[0].incarnation;

  // Kill and restart from the checkpoint: the worker comes back with a
  // bumped incarnation, the coordinator re-adopts it (replaying the
  // registrations), and the answer is bit-identical — the full-state delta
  // replaces the cache wholesale, so nothing can merge twice.
  worker.Restart();
  StatusOr<double> after = coordinator.AnswerJoin(*join);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(*before, *after);
  // Answer twice more: double-merge would inflate the estimate.
  StatusOr<double> again = coordinator.AnswerJoin(*join);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(*before, *again);

  const std::vector<query::DistShardStatus> statuses =
      coordinator.ShardStatuses();
  EXPECT_GT(statuses[0].incarnation, incarnation_before);
  EXPECT_EQ("healthy", statuses[0].health);

  // The restarted shard keeps serving ingest too.
  ASSERT_TRUE(coordinator.UpdateBatch("f", Workload(3, 100)).ok());
  StatusOr<double> moved = coordinator.AnswerJoin(*join);
  ASSERT_TRUE(moved.ok()) << moved.status();
}

TEST(CoordinatorTest, ChainJoinMergedAnswerIsBitIdenticalToLocalEngine) {
  for (query::ChainJoinQuerySpec::Method method :
       {query::ChainJoinQuerySpec::Method::kAgmsGrid,
        query::ChainJoinQuerySpec::Method::kHashSketch}) {
    const std::string dir = ::testing::TempDir();
    const std::string tag =
        method == query::ChainJoinQuerySpec::Method::kAgmsGrid ? "grid"
                                                               : "hash";
    WorkerHarness w0(
        MakeWorkerOptions(dir + "/coord_chain_" + tag + "_0.sock", "s0"));
    WorkerHarness w1(
        MakeWorkerOptions(dir + "/coord_chain_" + tag + "_1.sock", "s1"));
    Coordinator coordinator({{"s0", dir + "/coord_chain_" + tag + "_0.sock"},
                             {"s1", dir + "/coord_chain_" + tag + "_1.sock"}},
                            FastOptions());
    query::Engine engine;

    ASSERT_TRUE(coordinator.RegisterRelation({"a", 1, 64}).ok());
    ASSERT_TRUE(coordinator.RegisterRelation({"b", 2, 64}).ok());
    ASSERT_TRUE(coordinator.RegisterRelation({"c", 1, 64}).ok());
    ASSERT_TRUE(engine.RegisterRelation({"a", 1, 64}).ok());
    ASSERT_TRUE(engine.RegisterRelation({"b", 2, 64}).ok());
    ASSERT_TRUE(engine.RegisterRelation({"c", 1, 64}).ok());

    query::ChainJoinQuerySpec spec;
    spec.relations = {"a", "b", "c"};
    spec.method = method;
    const uint64_t kSeed = 23;
    StatusOr<query::QueryId> dist_query =
        coordinator.AddChainJoinQuery(spec, kSeed);
    ASSERT_TRUE(dist_query.ok()) << dist_query.status();
    StatusOr<query::QueryId> local_query =
        engine.AddChainJoinQuery(spec, kSeed);
    ASSERT_TRUE(local_query.ok()) << local_query.status();

    // Tuples land on both shards (attributes[0] % 2 routing).
    Rng rng(5);
    for (int t = 0; t < 200; ++t) {
      const uint64_t x = rng.NextUint64Below(64);
      const uint64_t y = rng.NextUint64Below(64);
      ASSERT_TRUE(coordinator.UpdateRelation("a", {x}, 1).ok());
      ASSERT_TRUE(coordinator.UpdateRelation("b", {x, y}, 1).ok());
      ASSERT_TRUE(coordinator.UpdateRelation("c", {y}, 1).ok());
      ASSERT_TRUE(engine.UpdateRelation("a", {x}, 1).ok());
      ASSERT_TRUE(engine.UpdateRelation("b", {x, y}, 1).ok());
      ASSERT_TRUE(engine.UpdateRelation("c", {y}, 1).ok());
    }

    StatusOr<double> dist_answer = coordinator.AnswerChainJoin(*dist_query);
    StatusOr<double> local_answer = engine.AnswerChainJoin(*local_query);
    ASSERT_TRUE(dist_answer.ok()) << tag << ": " << dist_answer.status();
    ASSERT_TRUE(local_answer.ok()) << tag << ": " << local_answer.status();
    // Bit-identical: merging shard chain synopses by linearity rebuilds
    // the exact counters one engine would hold.
    EXPECT_EQ(*local_answer, *dist_answer) << tag;

    StatusOr<EstimateReport> report =
        coordinator.AnswerChainJoinWithReport(*dist_query);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_FALSE(report->partial) << tag;
    EXPECT_EQ(2u, report->shards.size()) << tag;
  }
}

TEST(CoordinatorTest, ChainJoinValidatesRegistrationAndArity) {
  const std::string dir = ::testing::TempDir();
  WorkerHarness w0(MakeWorkerOptions(dir + "/coord_chainval.sock", "s0"));
  Coordinator coordinator({{"s0", dir + "/coord_chainval.sock"}},
                          FastOptions());
  ASSERT_TRUE(coordinator.RegisterRelation({"a", 1, 64}).ok());
  EXPECT_EQ(coordinator.RegisterRelation({"a", 1, 64}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(coordinator.RegisterRelation({"bad", 0, 64}).ok());

  query::ChainJoinQuerySpec spec;
  spec.relations = {"a", "ghost"};
  EXPECT_FALSE(coordinator.AddChainJoinQuery(spec, 1).ok());

  EXPECT_EQ(coordinator.UpdateRelation("ghost", {1}, 1).code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(coordinator.UpdateRelation("a", {1, 2}, 1).ok());  // arity
}

TEST(CoordinatorTest, FleetMetricsSnapshotLabelsShardSeries) {
  const std::string dir = ::testing::TempDir();
  WorkerHarness w0(MakeWorkerOptions(dir + "/coord_fleetm_0.sock", "s0"));
  WorkerHarness w1(MakeWorkerOptions(dir + "/coord_fleetm_1.sock", "s1"));
  Coordinator coordinator({{"s0", dir + "/coord_fleetm_0.sock"},
                           {"s1", dir + "/coord_fleetm_1.sock"}},
                          FastOptions());
  ASSERT_TRUE(coordinator.RegisterStream({"f", 1u << 12}).ok());
  const std::vector<query::StreamUpdate> updates = Workload(9, 500);
  ASSERT_TRUE(coordinator.UpdateBatch("f", updates).ok());

  StatusOr<metrics::Snapshot> snapshot = coordinator.FleetMetricsSnapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();

  // Every shard's ingest series appears with a shard label, and the
  // labeled values sum to the single-process total (every element landed
  // on exactly one shard).
  uint64_t labeled_sum = 0;
  int labeled_series = 0;
  bool saw_coordinator_series = false;
  for (const auto& [name, value] : snapshot->counters) {
    std::string base, shard;
    if (metrics::SplitShardLabel(name, &base, &shard)) {
      if (base == "ingest.f.elements_absorbed") {
        labeled_sum += value;
        ++labeled_series;
        EXPECT_TRUE(shard == "0" || shard == "1") << name;
      }
    } else if (name.rfind("dist.", 0) == 0) {
      saw_coordinator_series = true;  // coordinator's own series, unlabeled
    }
  }
  EXPECT_EQ(2, labeled_series);
  EXPECT_EQ(updates.size(), labeled_sum);
  EXPECT_TRUE(saw_coordinator_series);

  // The RPC latency histograms are part of the operator surface.
  bool saw_update_latency = false;
  for (const auto& [name, histogram] : snapshot->histograms) {
    if (name == "dist.rpc.update_batch.latency_ns") {
      saw_update_latency = true;
      EXPECT_GT(histogram.count, 0u);
    }
  }
  EXPECT_TRUE(saw_update_latency);

  // The merged snapshot renders per-shard Prometheus series and keeps the
  // sorted-by-name invariant the exporter's # TYPE grouping relies on.
  const std::string prom = metrics::ToPrometheusText(*snapshot);
  EXPECT_NE(prom.find("ingest_f_elements_absorbed{shard=\"0\"}"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("ingest_f_elements_absorbed{shard=\"1\"}"),
            std::string::npos)
      << prom;
}

TEST(CoordinatorTest, ScrapeFleetEventsTagsOriginShard) {
  const std::string dir = ::testing::TempDir();
  WorkerHarness w0(MakeWorkerOptions(dir + "/coord_fleete.sock", "s0"));
  Coordinator coordinator({{"s0", dir + "/coord_fleete.sock"}},
                          FastOptions());
  ASSERT_TRUE(coordinator.ProbeHealth().ok());

  // In-process workers share the global event log, so this emission IS a
  // worker-side event from the scrape's point of view.
  EventLog::Global().Emit(LogLevel::kWarn, "fleet_scrape_probe",
                          {{"payload", "torn frame on shard"}});
  ASSERT_TRUE(coordinator.ScrapeFleetEvents().ok());

  bool found_tagged_copy = false;
  for (const LogEvent& event :
       EventLog::Global().Tail(EventLog::kDefaultRingCapacity)) {
    if (event.event != "fleet_scrape_probe") continue;
    bool has_origin_shard = false, has_origin_seq = false, has_payload = false;
    for (const auto& [key, value] : event.fields) {
      if (key == "origin_shard" && value == "0") has_origin_shard = true;
      if (key == "origin_seq") has_origin_seq = true;
      if (key == "payload" && value == "torn frame on shard") {
        has_payload = true;
      }
    }
    if (has_origin_shard) {
      EXPECT_TRUE(has_origin_seq);
      EXPECT_TRUE(has_payload);  // original fields survive the re-emission
      found_tagged_copy = true;
    }
  }
  EXPECT_TRUE(found_tagged_copy);
}

TEST(CoordinatorTest, FleetTraceTogglesAndDumpsWorkerSpans) {
  const std::string dir = ::testing::TempDir();
  WorkerHarness w0(MakeWorkerOptions(dir + "/coord_fleett.sock", "s0"));
  Coordinator coordinator({{"s0", dir + "/coord_fleett.sock"}},
                          FastOptions());
  ASSERT_TRUE(coordinator.RegisterStream({"f", 1u << 12}).ok());

  (void)metrics::TraceRecorder::Global().DrainAsChromeTrace();  // clean slate
  ASSERT_TRUE(coordinator.SetFleetTracing(true).ok());
  ASSERT_TRUE(coordinator.UpdateBatch("f", Workload(4, 50)).ok());
  ASSERT_TRUE(coordinator.SetFleetTracing(false).ok());

  StatusOr<std::string> trace = coordinator.DumpFleetTrace();
  ASSERT_TRUE(trace.ok()) << trace.status();
  // The in-process worker shares this process's recorder, so its ingest
  // span and the coordinator's fan-out root both land in the dump, linked
  // by the propagated ids (the multi-process version of this assertion
  // lives in dist_integration_test).
  EXPECT_NE(trace->find("\"coordinator.update_batch\""), std::string::npos)
      << *trace;
  EXPECT_NE(trace->find("\"worker.ingest\""), std::string::npos) << *trace;
  EXPECT_NE(trace->find("\"trace_id\""), std::string::npos) << *trace;
  EXPECT_NE(trace->find("\"process_name\""), std::string::npos) << *trace;
  // Dump drains: a second dump is empty until tracing records again.
  StatusOr<std::string> empty = coordinator.DumpFleetTrace();
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_EQ(empty->find("\"worker.ingest\""), std::string::npos);
}

TEST(CoordinatorTest, RejectsNonDistributableSpecs) {
  Coordinator coordinator(
      {{"s0", ::testing::TempDir() + "/coord_reject.sock"}}, FastOptions());
  query::JoinQuerySpec predicated = SkimmedJoinSpec();
  predicated.left_predicate = query::RangePredicate{0, 100};
  EXPECT_FALSE(coordinator.AddJoinQuery(predicated, 1).ok());

  query::JoinQuerySpec sum_join = SkimmedJoinSpec();
  sum_join.left_input = query::AggregateInput::kMeasure;
  EXPECT_FALSE(coordinator.AddJoinQuery(sum_join, 1).ok());
}

}  // namespace
}  // namespace dist
}  // namespace skimjoin
