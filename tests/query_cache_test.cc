// Correctness tests for the engine's epoch-invalidated QueryCache and the
// slim-view point read path (DESIGN.md §11): cached answers must be
// bit-identical to fresh recomputation, a single-element update to any
// participating stream must invalidate, and a checkpoint/restore round trip
// must drop the cache and re-seed epochs without changing any answer.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "query/engine.h"
#include "query/query_cache.h"
#include "sketch/kernel_options.h"
#include "util/metrics.h"
#include "util/random.h"

namespace skimjoin {
namespace query {
namespace {

StreamSpec Packets() { return {"packets", 1u << 10}; }
StreamSpec Flows() { return {"flows", 1u << 10}; }

JoinQuerySpec BasicJoinSpec() {
  JoinQuerySpec spec;
  spec.left_stream = "packets";
  spec.right_stream = "flows";
  spec.estimator.kind = core::EstimatorKind::kSkimmedSketch;
  spec.estimator.space_counters = 1024;
  return spec;
}

FrequencyQuerySpec BasicFreqSpec() {
  FrequencyQuerySpec spec;
  spec.stream = "packets";
  spec.space_counters = 512;
  return spec;
}

void FeedBoth(Engine* engine, uint64_t seed, int n) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(
        engine->Update("packets", {rng.NextUint64Below(1u << 10), 1, 0}).ok());
    ASSERT_TRUE(
        engine->Update("flows", {rng.NextUint64Below(1u << 10), 1, 0}).ok());
  }
}

Engine::ReadPathOptions CacheOn() {
  Engine::ReadPathOptions options;
  options.use_query_cache = true;
  return options;
}

// Unit-level: the cache distinguishes miss / hit / invalidation and scopes
// point entries by (query, value).
TEST(QueryCacheUnitTest, OutcomesAndScoping) {
  QueryCache cache;
  QueryCache::Outcome outcome;
  EXPECT_FALSE(cache.LookupJoin(1, {5, 7}, &outcome).has_value());
  EXPECT_EQ(outcome, QueryCache::Outcome::kMiss);

  cache.StoreJoin(1, {5, 7}, 123.5);
  auto hit = cache.LookupJoin(1, {5, 7}, &outcome);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(outcome, QueryCache::Outcome::kHit);
  EXPECT_DOUBLE_EQ(*hit, 123.5);

  // One stream advanced: the entry is stale, not missing.
  EXPECT_FALSE(cache.LookupJoin(1, {6, 7}, &outcome).has_value());
  EXPECT_EQ(outcome, QueryCache::Outcome::kInvalidated);

  cache.StorePoint(2, 42, {9}, -3);
  EXPECT_TRUE(cache.LookupPoint(2, 42, {9}, &outcome).has_value());
  EXPECT_FALSE(cache.LookupPoint(2, 43, {9}, &outcome).has_value());
  EXPECT_EQ(outcome, QueryCache::Outcome::kMiss);
  EXPECT_FALSE(cache.LookupPoint(3, 42, {9}, &outcome).has_value());

  EXPECT_EQ(cache.EntryCount(), 2u);
  cache.DropQuery(2);
  EXPECT_EQ(cache.EntryCount(), 1u);
  cache.DropAll();
  EXPECT_EQ(cache.EntryCount(), 0u);
}

TEST(QueryCacheTest, CachedJoinAnswerBitIdenticalToFresh) {
  Engine cached, fresh;
  for (Engine* engine : {&cached, &fresh}) {
    ASSERT_TRUE(engine->RegisterStream(Packets()).ok());
    ASSERT_TRUE(engine->RegisterStream(Flows()).ok());
    ASSERT_TRUE(engine->AddJoinQuery(BasicJoinSpec(), 42).ok());
    FeedBoth(engine, 777, 500);
  }
  cached.SetReadPathOptions(CacheOn());

  StatusOr<double> miss = cached.AnswerJoin(1);
  StatusOr<double> hit = cached.AnswerJoin(1);
  StatusOr<double> reference = fresh.AnswerJoin(1);
  ASSERT_TRUE(miss.ok() && hit.ok() && reference.ok());
  EXPECT_EQ(*miss, *reference);  // bit-identical, not just close
  EXPECT_EQ(*hit, *reference);

  StatusOr<Engine::QueryCacheStats> stats = cached.QueryCacheStatsFor(1);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->enabled);
  EXPECT_EQ(stats->hits, 1u);
  EXPECT_EQ(stats->misses, 1u);
  EXPECT_EQ(stats->invalidations, 0u);
}

TEST(QueryCacheTest, SingleElementUpdateToEitherStreamInvalidates) {
  Engine cached, fresh;
  for (Engine* engine : {&cached, &fresh}) {
    ASSERT_TRUE(engine->RegisterStream(Packets()).ok());
    ASSERT_TRUE(engine->RegisterStream(Flows()).ok());
    ASSERT_TRUE(engine->AddJoinQuery(BasicJoinSpec(), 42).ok());
    FeedBoth(engine, 888, 300);
  }
  cached.SetReadPathOptions(CacheOn());

  ASSERT_TRUE(cached.AnswerJoin(1).ok());  // miss, stores
  uint64_t expected_invalidations = 0;
  for (const std::string& stream : {std::string("packets"),
                                    std::string("flows")}) {
    ASSERT_TRUE(cached.Update(stream, {3, 1, 0}).ok());
    ASSERT_TRUE(fresh.Update(stream, {3, 1, 0}).ok());
    StatusOr<double> recomputed = cached.AnswerJoin(1);
    StatusOr<double> reference = fresh.AnswerJoin(1);
    ASSERT_TRUE(recomputed.ok() && reference.ok());
    EXPECT_EQ(*recomputed, *reference) << "after updating " << stream;
    ++expected_invalidations;
    StatusOr<Engine::QueryCacheStats> stats = cached.QueryCacheStatsFor(1);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->invalidations, expected_invalidations)
        << "after updating " << stream;
  }
}

TEST(QueryCacheTest, PointAnswersCachedPerValueAndInvalidated) {
  Engine cached, fresh;
  for (Engine* engine : {&cached, &fresh}) {
    ASSERT_TRUE(engine->RegisterStream(Packets()).ok());
    ASSERT_TRUE(engine->RegisterStream(Flows()).ok());
    ASSERT_TRUE(engine->AddFrequencyQuery(BasicFreqSpec(), 9).ok());
    FeedBoth(engine, 999, 400);
  }
  cached.SetReadPathOptions(CacheOn());

  for (uint64_t value : {7u, 7u, 11u}) {  // miss, hit, miss
    StatusOr<int64_t> answer = cached.AnswerPointFrequency(1, value);
    StatusOr<int64_t> reference = fresh.AnswerPointFrequency(1, value);
    ASSERT_TRUE(answer.ok() && reference.ok());
    EXPECT_EQ(*answer, *reference) << "value " << value;
  }
  StatusOr<Engine::QueryCacheStats> stats = cached.QueryCacheStatsFor(1);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->hits, 1u);
  EXPECT_EQ(stats->misses, 2u);

  // An update to the participating stream invalidates every cached value.
  ASSERT_TRUE(cached.Update("packets", {7, 1, 0}).ok());
  ASSERT_TRUE(fresh.Update("packets", {7, 1, 0}).ok());
  StatusOr<int64_t> recomputed = cached.AnswerPointFrequency(1, 7);
  StatusOr<int64_t> reference = fresh.AnswerPointFrequency(1, 7);
  ASSERT_TRUE(recomputed.ok() && reference.ok());
  EXPECT_EQ(*recomputed, *reference);
  stats = cached.QueryCacheStatsFor(1);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->invalidations, 1u);
}

// The slim-view read path must be indistinguishable from the fat path,
// interleaved with ingest (each refresh re-derives the packed counters).
TEST(QueryCacheTest, SlimViewPointPathBitIdenticalToFat) {
  Engine slim, fat;
  for (Engine* engine : {&slim, &fat}) {
    ASSERT_TRUE(engine->RegisterStream(Packets()).ok());
    ASSERT_TRUE(engine->RegisterStream(Flows()).ok());
    ASSERT_TRUE(engine->AddFrequencyQuery(BasicFreqSpec(), 31).ok());
  }
  Engine::ReadPathOptions options;
  options.use_slim_views = true;
  slim.SetReadPathOptions(options);

  Rng rng(4242);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 200; ++i) {
      const uint64_t value = rng.NextUint64Below(1u << 10);
      ASSERT_TRUE(slim.Update("packets", {value, 1, 0}).ok());
      ASSERT_TRUE(fat.Update("packets", {value, 1, 0}).ok());
    }
    for (int probe = 0; probe < 32; ++probe) {
      const uint64_t value = rng.NextUint64Below(1u << 10);
      StatusOr<int64_t> slim_answer = slim.AnswerPointFrequency(1, value);
      StatusOr<int64_t> fat_answer = fat.AnswerPointFrequency(1, value);
      ASSERT_TRUE(slim_answer.ok() && fat_answer.ok());
      ASSERT_EQ(*slim_answer, *fat_answer)
          << "round " << round << " value " << value;
    }
  }
}

// Cache + slim together, including kernel switches on the write side: the
// read path must stay bit-identical through every combination.
TEST(QueryCacheTest, CacheAndSlimComposeAcrossKernelSwitches) {
  Engine tested, reference;
  for (Engine* engine : {&tested, &reference}) {
    ASSERT_TRUE(engine->RegisterStream(Packets()).ok());
    ASSERT_TRUE(engine->RegisterStream(Flows()).ok());
    ASSERT_TRUE(engine->AddFrequencyQuery(BasicFreqSpec(), 5).ok());
    ASSERT_TRUE(engine->AddJoinQuery(BasicJoinSpec(), 6).ok());
  }
  Engine::ReadPathOptions options;
  options.use_query_cache = true;
  options.use_slim_views = true;
  tested.SetReadPathOptions(options);

  Rng rng(1717);
  for (int round = 0; round < 4; ++round) {
    sketch::KernelOptions kernels =
        (round % 2 == 0) ? sketch::KernelOptions::Scalar()
                         : sketch::KernelOptions{};
    tested.SetKernelOptions(kernels);
    reference.SetKernelOptions(kernels);
    for (int i = 0; i < 150; ++i) {
      const uint64_t value = rng.NextUint64Below(1u << 10);
      ASSERT_TRUE(tested.Update("packets", {value, 1, 0}).ok());
      ASSERT_TRUE(reference.Update("packets", {value, 1, 0}).ok());
      ASSERT_TRUE(tested.Update("flows", {value, 1, 0}).ok());
      ASSERT_TRUE(reference.Update("flows", {value, 1, 0}).ok());
    }
    for (int repeat = 0; repeat < 3; ++repeat) {  // hit the cache on 2nd/3rd
      StatusOr<double> tested_join = tested.AnswerJoin(2);
      StatusOr<double> reference_join = reference.AnswerJoin(2);
      ASSERT_TRUE(tested_join.ok() && reference_join.ok());
      ASSERT_EQ(*tested_join, *reference_join) << "round " << round;
      const uint64_t value = rng.NextUint64Below(1u << 10);
      StatusOr<int64_t> tested_point =
          tested.AnswerPointFrequency(1, value);
      StatusOr<int64_t> reference_point =
          reference.AnswerPointFrequency(1, value);
      ASSERT_TRUE(tested_point.ok() && reference_point.ok());
      ASSERT_EQ(*tested_point, *reference_point) << "round " << round;
    }
  }
}

TEST(QueryCacheTest, SurvivesCheckpointRestoreWithCacheDropped) {
  const std::string path = ::testing::TempDir() + "query_cache_restore_ckpt";
  Engine original;
  ASSERT_TRUE(original.RegisterStream(Packets()).ok());
  ASSERT_TRUE(original.RegisterStream(Flows()).ok());
  ASSERT_TRUE(original.AddJoinQuery(BasicJoinSpec(), 42).ok());
  ASSERT_TRUE(original.AddFrequencyQuery(BasicFreqSpec(), 9).ok());
  FeedBoth(&original, 555, 400);
  original.SetReadPathOptions(CacheOn());
  StatusOr<double> join_before = original.AnswerJoin(1);
  StatusOr<int64_t> point_before = original.AnswerPointFrequency(2, 7);
  ASSERT_TRUE(join_before.ok() && point_before.ok());
  ASSERT_TRUE(original.SaveCheckpoint(path).ok());

  Engine restored;
  StatusOr<RestoreReport> report = restored.RestoreCheckpoint(path);
  ASSERT_TRUE(report.ok()) << report.status();
  restored.SetReadPathOptions(CacheOn());

  // First answers after restore come from recomputation (the cache does not
  // survive the round trip) and must be bit-identical to pre-checkpoint.
  StatusOr<double> join_after = restored.AnswerJoin(1);
  StatusOr<int64_t> point_after = restored.AnswerPointFrequency(2, 7);
  ASSERT_TRUE(join_after.ok() && point_after.ok());
  EXPECT_EQ(*join_after, *join_before);
  EXPECT_EQ(*point_after, *point_before);
  StatusOr<Engine::QueryCacheStats> stats = restored.QueryCacheStatsFor(1);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->hits, 0u);  // nothing cached crossed the checkpoint

  // Epochs were re-seeded from the restored absorbed counters: storing and
  // invalidating keep working exactly as before the round trip.
  ASSERT_TRUE(restored.AnswerJoin(1).ok());  // hit now
  stats = restored.QueryCacheStatsFor(1);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->hits, 1u);
  ASSERT_TRUE(restored.Update("packets", {3, 1, 0}).ok());
  ASSERT_TRUE(original.Update("packets", {3, 1, 0}).ok());
  StatusOr<double> join_updated = restored.AnswerJoin(1);
  StatusOr<double> join_original = original.AnswerJoin(1);
  ASSERT_TRUE(join_updated.ok() && join_original.ok());
  EXPECT_EQ(*join_updated, *join_original);
  stats = restored.QueryCacheStatsFor(1);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->invalidations, 1u);
}

TEST(QueryCacheTest, StatsRejectUnknownAndNonCachedQueries) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  EXPECT_EQ(engine.QueryCacheStatsFor(99).status().code(),
            StatusCode::kNotFound);
  DistinctCountQuerySpec distinct;
  distinct.stream = "packets";
  distinct.num_maps = 16;
  StatusOr<QueryId> id = engine.AddDistinctCountQuery(distinct, 1);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(engine.QueryCacheStatsFor(*id).status().code(),
            StatusCode::kNotFound);
}

TEST(QueryCacheTest, CacheCountersAppearInMetricsSnapshot) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  ASSERT_TRUE(engine.RegisterStream(Flows()).ok());
  ASSERT_TRUE(engine.AddJoinQuery(BasicJoinSpec(), 42).ok());
  engine.SetReadPathOptions(CacheOn());
  FeedBoth(&engine, 123, 50);
  ASSERT_TRUE(engine.AnswerJoin(1).ok());
  ASSERT_TRUE(engine.AnswerJoin(1).ok());

  const metrics::Snapshot snapshot = engine.MetricsSnapshot();
  uint64_t hits = 0, misses = 0;
  bool saw_hits = false, saw_misses = false, saw_invalidations = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "query.1.cache_hits") {
      saw_hits = true;
      hits = value;
    } else if (name == "query.1.cache_misses") {
      saw_misses = true;
      misses = value;
    } else if (name == "query.1.cache_invalidations") {
      saw_invalidations = true;
    }
  }
  EXPECT_TRUE(saw_hits && saw_misses && saw_invalidations);
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(misses, 1u);
}

TEST(QueryCacheTest, DisablingCacheDropsEntries) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  ASSERT_TRUE(engine.RegisterStream(Flows()).ok());
  ASSERT_TRUE(engine.AddJoinQuery(BasicJoinSpec(), 42).ok());
  FeedBoth(&engine, 321, 100);
  engine.SetReadPathOptions(CacheOn());
  ASSERT_TRUE(engine.AnswerJoin(1).ok());  // miss, stores

  engine.SetReadPathOptions(Engine::ReadPathOptions{});  // off: drops
  engine.SetReadPathOptions(CacheOn());
  ASSERT_TRUE(engine.AnswerJoin(1).ok());  // must be a miss again
  StatusOr<Engine::QueryCacheStats> stats = engine.QueryCacheStatsFor(1);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->hits, 0u);
  EXPECT_EQ(stats->misses, 2u);
}

}  // namespace
}  // namespace query
}  // namespace skimjoin
