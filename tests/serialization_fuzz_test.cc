// Fuzz-style deserialization tests: DeserializeFrom consumes UNTRUSTED
// bytes (synopses shipped between sites), so hostile or corrupt records
// must come back as INVALID_ARGUMENT — never a crash, never an allocation
// beyond the configurable cap. Covers oversized headers, dimension-product
// overflow, truncation at every prefix length, flipped bytes, and the
// explicit end-sentinel that distinguishes a complete counter block from
// one truncated at a counter boundary.
//
// The same discipline applies one layer down: dist wire frames arrive from
// the network, so a recorded coordinator/worker exchange is replayed here
// through the incremental frame decoder under truncation and bit-flips —
// every mutation must come back as a Status (or "need more bytes"), never
// a crash and never a payload allocation beyond kMaxFramePayload.

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "core/dyadic_skim.h"
#include "core/skimmed_sketch.h"
#include "dist/frame.h"
#include "gtest/gtest.h"
#include "sketch/agms_sketch.h"
#include "sketch/hash_sketch.h"
#include "sketch/serial_limits.h"
#include "util/random.h"

namespace skimjoin {
namespace {

template <typename Sketch>
std::string Serialized(const Sketch& sketch) {
  std::stringstream buffer;
  EXPECT_TRUE(sketch.SerializeTo(buffer).ok());
  return buffer.str();
}

void ExpectHashSketchRejected(const std::string& text) {
  std::stringstream in(text);
  StatusOr<sketch::HashSketch> result = sketch::HashSketch::DeserializeFrom(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(HashSketchFuzzTest, OversizedHeaderRejectedWithoutAllocating) {
  // 10^12 counters would be 8 TB; must be rejected by the cap, not tried.
  ExpectHashSketchRejected(
      "skimjoin.hash_sketch v2\n1000000 1000000 1\n0 0 0\nend\n");
  ExpectHashSketchRejected(
      "skimjoin.hash_sketch v2\n1 99999999999999 1\n0\nend\n");
}

TEST(HashSketchFuzzTest, DimensionProductOverflowRejected) {
  // 2^32 x 2^32 wraps to 0 in uint64 multiplication; the divide-based guard
  // must still reject it.
  ExpectHashSketchRejected(
      "skimjoin.hash_sketch v2\n4294967296 4294967296 1\n0\nend\n");
  ExpectHashSketchRejected(
      "skimjoin.hash_sketch v2\n18446744073709551615 3 1\n0\nend\n");
}

TEST(HashSketchFuzzTest, ZeroDimensionRejected) {
  ExpectHashSketchRejected("skimjoin.hash_sketch v2\n0 16 1\nend\n");
  ExpectHashSketchRejected("skimjoin.hash_sketch v2\n3 0 1\nend\n");
}

TEST(HashSketchFuzzTest, TruncationAtEveryPrefixRejectedOrExact) {
  auto sketch = *sketch::HashSketch::Create({3, 8}, 1);
  for (int i = 0; i < 200; ++i) sketch.Update(i % 50, 1 - 2 * (i % 2));
  const std::string full = Serialized(sketch);
  // Every strict prefix except "full minus the final newline" (the format is
  // whitespace-delimited, so the sentinel still parses there) must fail.
  for (size_t len = 0; len + 1 < full.size(); ++len) {
    std::stringstream in(full.substr(0, len));
    StatusOr<sketch::HashSketch> result =
        sketch::HashSketch::DeserializeFrom(in);
    ASSERT_FALSE(result.ok()) << "prefix length " << len;
  }
  std::stringstream in(full);
  EXPECT_TRUE(sketch::HashSketch::DeserializeFrom(in).ok());
}

TEST(HashSketchFuzzTest, MissingSentinelRejected) {
  // A record chopped exactly at a counter boundary used to be accepted;
  // the sentinel closes that hole.
  auto sketch = *sketch::HashSketch::Create({2, 4}, 1);
  sketch.Update(3, 9);
  std::string text = Serialized(sketch);
  const auto pos = text.rfind("end\n");
  ASSERT_NE(pos, std::string::npos);
  ExpectHashSketchRejected(text.substr(0, pos));
}

TEST(HashSketchFuzzTest, ByteFlipsNeverCrash) {
  auto sketch = *sketch::HashSketch::Create({3, 16}, 2);
  for (int i = 0; i < 500; ++i) sketch.Update(i % 40, 1);
  const std::string full = Serialized(sketch);
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = full;
    const size_t pos = rng.NextUint64Below(mutated.size());
    mutated[pos] = static_cast<char>(rng.NextUint64Below(256));
    std::stringstream in(mutated);
    // Must terminate without crashing; result may be ok (benign digit flip)
    // or INVALID_ARGUMENT — both are acceptable, aborting is not.
    (void)sketch::HashSketch::DeserializeFrom(in);
  }
}

TEST(HashSketchFuzzTest, NegativeCountersAreLegalStreamData) {
  // Deletes drive counters negative; a record full of them must round-trip.
  auto sketch = *sketch::HashSketch::Create({3, 8}, 1);
  for (int i = 0; i < 100; ++i) sketch.Update(i % 20, -3);
  std::stringstream buffer(Serialized(sketch));
  StatusOr<sketch::HashSketch> restored =
      sketch::HashSketch::DeserializeFrom(buffer);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->CompatibleWith(sketch));
}

TEST(AgmsSketchFuzzTest, OversizedAndTruncatedRejected) {
  std::stringstream oversized(
      "skimjoin.agms_sketch v2\n123456789123 123456789 1\n0\nend\n");
  StatusOr<sketch::AgmsSketch> result =
      sketch::AgmsSketch::DeserializeFrom(oversized);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  auto sketch = *sketch::AgmsSketch::Create({4, 3}, 1);
  sketch.Update(1, 1);
  const std::string full = Serialized(sketch);
  std::stringstream truncated(full.substr(0, full.size() - 5));
  EXPECT_FALSE(sketch::AgmsSketch::DeserializeFrom(truncated).ok());
}

TEST(DyadicSkimmerFuzzTest, HostileExactLevelSizeRejected) {
  // A huge power-of-two domain makes every shallow level "exact" with
  // billions of counters; the cap must reject before the resize.
  std::stringstream hostile(
      "skimjoin.dyadic_skimmer v3\n9223372036854775808\nexact "
      "4611686018427387904\n0\nend\n");
  StatusOr<core::DyadicSkimmer> result =
      core::DyadicSkimmer::DeserializeFrom(hostile);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DyadicSkimmerFuzzTest, UnknownLevelKindRejected) {
  std::stringstream hostile(
      "skimjoin.dyadic_skimmer v3\n16\nwhatever 8\nend\n");
  EXPECT_FALSE(core::DyadicSkimmer::DeserializeFrom(hostile).ok());
}

TEST(SkimmedSketchFuzzTest, HostileHeaderRejectedBeforeNestedRecords) {
  // num_tables * num_buckets far beyond the cap; must fail on the header,
  // not inside a nested allocation.
  std::stringstream hostile(
      "skimjoin.skimmed_sketch v2\n65536 99999999 99999999 0 0 2 2 0.5 0 "
      "7\n");
  StatusOr<core::SkimmedSketch> result =
      core::SkimmedSketch::DeserializeFrom(hostile);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  // Invalid config values (zero tables, bad slack) rejected by the same
  // validation Create applies.
  std::stringstream bad_config(
      "skimjoin.skimmed_sketch v2\n65536 0 512 0 0 2 2 0.5 0 7\n");
  EXPECT_FALSE(core::SkimmedSketch::DeserializeFrom(bad_config).ok());
  std::stringstream bad_slack(
      "skimjoin.skimmed_sketch v2\n65536 7 512 0 0 2 2 7.5 0 7\n");
  EXPECT_FALSE(core::SkimmedSketch::DeserializeFrom(bad_slack).ok());
}

TEST(SkimmedSketchFuzzTest, TruncationSweepNeverCrashes) {
  core::SkimmedSketchConfig config;
  config.domain_size = 64;
  config.num_buckets = 16;
  config.dyadic_num_buckets = 4;
  auto sketch = *core::SkimmedSketch::Create(config, 3);
  for (int i = 0; i < 300; ++i) sketch.Update(i % 64, 1);
  const std::string full = Serialized(sketch);
  for (size_t len = 0; len + 1 < full.size(); len += 7) {
    std::stringstream in(full.substr(0, len));
    EXPECT_FALSE(core::SkimmedSketch::DeserializeFrom(in).ok())
        << "prefix length " << len;
  }
  std::stringstream in(full);
  EXPECT_TRUE(core::SkimmedSketch::DeserializeFrom(in).ok());
}

// ---- dist wire frames ---------------------------------------------------

// Drains a byte stream through the incremental decoder exactly the way
// FrameChannel::Receive does: decode frames off the front until the decoder
// asks for more bytes (returns the frames seen so far) or rejects the
// stream (returns the rejection).
StatusOr<int> DrainFrames(std::string_view stream) {
  int frames = 0;
  while (true) {
    size_t consumed = 0;
    StatusOr<std::optional<dist::Frame>> decoded =
        dist::TryDecodeFrame(stream, &consumed);
    if (!decoded.ok()) return decoded.status();
    if (!decoded->has_value()) return frames;
    stream.remove_prefix(consumed);
    ++frames;
  }
}

// A realistic session transcript: several back-to-back frames whose
// payloads include a full serialized sketch (what delta pulls actually
// carry), an empty payload, and every byte value.
std::string RecordedExchange() {
  auto sketch = *sketch::HashSketch::Create({3, 16}, 2);
  for (int i = 0; i < 200; ++i) sketch.Update(i % 40, 1 - 2 * (i % 3 == 0));
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  return dist::EncodeFrame(1, "hello shard=s0") +
         dist::EncodeFrame(2, "") +
         dist::EncodeFrame(3, Serialized(sketch)) +
         dist::EncodeFrame(4, binary);
}

TEST(WireFrameFuzzTest, RecordedExchangeReplaysCleanly) {
  StatusOr<int> frames = DrainFrames(RecordedExchange());
  ASSERT_TRUE(frames.ok()) << frames.status();
  EXPECT_EQ(*frames, 4);
}

TEST(WireFrameFuzzTest, TruncationAtEveryPrefixIsContained) {
  const std::string full = RecordedExchange();
  for (size_t len = 0; len < full.size(); ++len) {
    StatusOr<int> frames = DrainFrames(std::string_view(full).substr(0, len));
    // A strict prefix either decodes the frames that are whole and waits
    // for more bytes, or is rejected — but it can never yield all four
    // frames, and it must never crash.
    if (frames.ok()) {
      EXPECT_LT(*frames, 4) << "prefix of " << len << " bytes";
    } else {
      EXPECT_EQ(frames.status().code(), StatusCode::kInvalidArgument)
          << frames.status();
    }
  }
}

TEST(WireFrameFuzzTest, BitFlipAnywhereNeverSurvivesToAllFrames) {
  const std::string full = RecordedExchange();
  for (size_t i = 0; i < full.size(); ++i) {
    std::string bad = full;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    StatusOr<int> frames = DrainFrames(bad);
    // The flip may land past the frames already decoded (fewer frames, then
    // "need more" from a corrupted length word) or trip magic/CRC/length
    // validation — but a stream with a flipped bit can never replay as the
    // original four intact frames.
    EXPECT_FALSE(frames.ok() && *frames == 4) << "flip at byte " << i;
  }
}

TEST(WireFrameFuzzTest, RandomMutationsNeverCrashTheDecoder) {
  const std::string full = RecordedExchange();
  Rng rng(20260808);
  for (int trial = 0; trial < 1000; ++trial) {
    std::string mutated = full;
    const int edits = 1 + static_cast<int>(rng.NextUint64Below(8));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.NextUint64Below(mutated.size());
      mutated[pos] = static_cast<char>(rng.NextUint64Below(256));
    }
    // Termination without a crash is the property; any Status is fine.
    (void)DrainFrames(mutated);
  }
}

TEST(WireFrameFuzzTest, HostileLengthRejectedBeforeAllocation) {
  // Valid magic + a length word past the cap: must be rejected from the
  // 16 header bytes alone, long before any payload could be buffered.
  std::string header;
  const auto le32 = [&header](uint32_t v) {
    header.push_back(static_cast<char>(v & 0xFF));
    header.push_back(static_cast<char>((v >> 8) & 0xFF));
    header.push_back(static_cast<char>((v >> 16) & 0xFF));
    header.push_back(static_cast<char>((v >> 24) & 0xFF));
  };
  le32(dist::kFrameMagic);
  le32(1);                                                    // type
  le32(static_cast<uint32_t>(dist::kMaxFramePayload) + 1u);   // length
  le32(0);                                                    // crc
  StatusOr<int> frames = DrainFrames(header);
  ASSERT_FALSE(frames.ok());
  EXPECT_EQ(frames.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerialLimitsTest, CapIsConfigurableAndRestorable) {
  auto sketch = *sketch::HashSketch::Create({4, 1024}, 1);
  const std::string record = Serialized(sketch);

  // Tighten the cap below this record's 4096 counters: now rejected.
  sketch::SetMaxDeserializeCounters(1000);
  EXPECT_EQ(sketch::MaxDeserializeCounters(), 1000u);
  {
    std::stringstream in(record);
    StatusOr<sketch::HashSketch> result =
        sketch::HashSketch::DeserializeFrom(in);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }

  // 0 restores the default, and the record loads again.
  sketch::SetMaxDeserializeCounters(0);
  EXPECT_EQ(sketch::MaxDeserializeCounters(),
            sketch::kDefaultMaxDeserializeCounters);
  std::stringstream in(record);
  EXPECT_TRUE(sketch::HashSketch::DeserializeFrom(in).ok());
}

}  // namespace
}  // namespace skimjoin
