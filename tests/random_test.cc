#include "util/random.h"

#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace skimjoin {
namespace {

TEST(Mix64Test, IsDeterministic) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_NE(Mix64(12345), Mix64(12346));
}

TEST(Mix64Test, SpreadsNearbyInputs) {
  // Consecutive inputs should produce outputs differing in many bits.
  for (uint64_t x = 0; x < 64; ++x) {
    const uint64_t diff = Mix64(x) ^ Mix64(x + 1);
    EXPECT_GE(__builtin_popcountll(diff), 10) << "x=" << x;
  }
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7);
  Rng b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.NextUint64() == b.NextUint64());
  EXPECT_LE(equal, 1);
}

TEST(RngTest, ZeroSeedStillProducesVariedOutput) {
  Rng rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.NextUint64());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(RngTest, NextUint64BelowRespectsBound) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextUint64Below(bound), bound);
    }
  }
}

TEST(RngTest, NextUint64BelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextUint64Below(1), 0u);
}

TEST(RngTest, NextUint64BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> histogram(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.NextUint64Below(kBound)];
  for (uint64_t b = 0; b < kBound; ++b) {
    // Expected 10000 ± a few hundred; 4-sigma window ≈ ±380.
    EXPECT_NEAR(histogram[b], kDraws / static_cast<int>(kBound), 600)
        << "bucket " << b;
  }
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng parent(42);
  Rng fork_a = parent.Fork(1);
  Rng fork_a_again = Rng(42).Fork(1);
  Rng fork_b = parent.Fork(2);
  EXPECT_EQ(fork_a.NextUint64(), fork_a_again.NextUint64());
  // Forks with different indices produce different streams.
  Rng a2 = parent.Fork(1);
  Rng b2 = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a2.NextUint64() == b2.NextUint64());
  EXPECT_LE(equal, 1);
  (void)fork_b;
}

TEST(RngTest, ForkDoesNotDisturbParentStream) {
  Rng a(9);
  Rng b(9);
  (void)a.Fork(17);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

}  // namespace
}  // namespace skimjoin
