#include "query/shell.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "query/dist_backend.h"
#include "stream/trace_io.h"
#include "util/event_log.h"
#include "util/metrics.h"
#include "util/status.h"

namespace skimjoin {
namespace query {
namespace {

// Executes one line and returns the single response line (without '\n').
std::string Exec(Shell* shell, const std::string& line) {
  std::ostringstream out;
  EXPECT_TRUE(shell->ExecuteLine(line, out));
  std::string text = out.str();
  if (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

// The CLI hangs gauge refreshing for its background metrics writer off
// this hook; Run must fire it after every line, including the last one.
TEST(ShellTest, PostCommandHookFiresAfterEveryLine) {
  Shell shell;
  int fired = 0;
  shell.set_post_command_hook([&fired] { ++fired; });
  std::istringstream script("stream f 64\nupdate f 1\nquit\n");
  std::ostringstream out;
  EXPECT_EQ(shell.Run(script, out), 0);
  EXPECT_EQ(fired, 3);
  shell.set_post_command_hook(nullptr);
  std::istringstream more("count f\n");
  EXPECT_EQ(shell.Run(more, out), 0);
  EXPECT_EQ(fired, 3);
}

TEST(ShellTest, CommentsAndBlankLinesAreSilent) {
  Shell shell;
  std::ostringstream out;
  EXPECT_TRUE(shell.ExecuteLine("", out));
  EXPECT_TRUE(shell.ExecuteLine("# just a comment", out));
  EXPECT_EQ(out.str(), "");
}

TEST(ShellTest, UnknownCommandReportsError) {
  Shell shell;
  EXPECT_EQ(Exec(&shell, "frobnicate 1 2"),
            "error: unknown command: frobnicate (try `help`)");
}

TEST(ShellTest, HelpListsCommands) {
  Shell shell;
  EXPECT_NE(Exec(&shell, "help").find("join"), std::string::npos);
}

TEST(ShellTest, StreamRegistrationAndErrors) {
  Shell shell;
  EXPECT_EQ(Exec(&shell, "stream flows 1024"), "ok");
  EXPECT_NE(Exec(&shell, "stream flows 1024").find("ALREADY_EXISTS"),
            std::string::npos);
  EXPECT_NE(Exec(&shell, "stream"), "ok");  // usage error
}

TEST(ShellTest, JoinQueryEndToEnd) {
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "stream g 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "join q f g skimmed 2048"), "ok");
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(Exec(&shell, "update f 7"), "ok");
    ASSERT_EQ(Exec(&shell, "update g 7"), "ok");
  }
  const std::string answer = Exec(&shell, "answer q");
  ASSERT_EQ(answer.rfind("ok ", 0), 0u) << answer;
  const double value = std::stod(answer.substr(3));
  EXPECT_NEAR(value, 2500.0, 250.0);
}

TEST(ShellTest, SelfJoinAndMethodParsing) {
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "selfjoin sq f agms 512"), "ok");
  EXPECT_NE(Exec(&shell, "selfjoin bad f warp-drive 512").find("unknown method"),
            std::string::npos);
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(Exec(&shell, "update f 3"), "ok");
  }
  const std::string answer = Exec(&shell, "answer sq");
  ASSERT_EQ(answer.rfind("ok ", 0), 0u);
  EXPECT_NEAR(std::stod(answer.substr(3)), 400.0, 40.0);
}

TEST(ShellTest, DuplicateQueryNamesRejected) {
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "freq q f 2048"), "ok");
  EXPECT_NE(Exec(&shell, "selfjoin q f agms 512").find("already in use"),
            std::string::npos);
}

TEST(ShellTest, UpdateWithCountAndMeasure) {
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "update f 5 3"), "ok");      // count 3
  ASSERT_EQ(Exec(&shell, "update f 5 -1 0"), "ok");   // delete
  EXPECT_EQ(Exec(&shell, "count f"), "ok 2");
  EXPECT_NE(Exec(&shell, "update f 9999"), "ok");     // out of domain
}

TEST(ShellTest, FrequencyQueryPointAndHeavy) {
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "freq hh f 4096"), "ok");
  ASSERT_EQ(Exec(&shell, "update f 42 500"), "ok");
  EXPECT_EQ(Exec(&shell, "point hh 42"), "ok 500");
  EXPECT_EQ(Exec(&shell, "heavy hh 100"), "ok 42:500");
  EXPECT_NE(Exec(&shell, "point nope 42"), "ok 500");
}

TEST(ShellTest, DistinctQuery) {
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 4096"), "ok");
  ASSERT_EQ(Exec(&shell, "distinct d f 256"), "ok");
  for (int v = 0; v < 1000; ++v) {
    ASSERT_EQ(Exec(&shell, "update f " + std::to_string(v)), "ok");
  }
  const std::string answer = Exec(&shell, "answer d");
  ASSERT_EQ(answer.rfind("ok ", 0), 0u);
  const double distinct = std::stod(answer.substr(3));
  EXPECT_GT(distinct, 400.0);
  EXPECT_LT(distinct, 2500.0);
}

TEST(ShellTest, TopKQueryEndToEnd) {
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "topk t f 2 4096"), "ok");
  ASSERT_EQ(Exec(&shell, "update f 10 300"), "ok");
  ASSERT_EQ(Exec(&shell, "update f 20 200"), "ok");
  ASSERT_EQ(Exec(&shell, "update f 30 100"), "ok");
  EXPECT_EQ(Exec(&shell, "top t"), "ok 10:300 20:200");
  EXPECT_NE(Exec(&shell, "top nope"), "ok");
  EXPECT_NE(Exec(&shell, "topk t f 2 4096"), "ok");  // duplicate name
}

TEST(ShellTest, QuantileQueryEndToEnd) {
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 4096"), "ok");
  ASSERT_EQ(Exec(&shell, "quantile q f 0.05"), "ok");
  for (uint64_t v = 0; v < 1000; ++v) {
    ASSERT_EQ(Exec(&shell, "update f " + std::to_string(v)), "ok");
  }
  const std::string answer = Exec(&shell, "phi q 0.5");
  ASSERT_EQ(answer.rfind("ok ", 0), 0u) << answer;
  const double median = std::stod(answer.substr(3));
  EXPECT_NEAR(median, 500.0, 110.0);
  EXPECT_NE(Exec(&shell, "phi nope 0.5"), answer);
  EXPECT_NE(Exec(&shell, "quantile bad f 0.9"), "ok");  // epsilon too large
}

TEST(ShellTest, LoadReplaysTraceFiles) {
  const std::string path = ::testing::TempDir() + "/shell.trace";
  ASSERT_TRUE(stream::WriteTrace(path, {stream::Insert(1), stream::Insert(1),
                                        stream::Delete(1), stream::Insert(2)})
                  .ok());
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 16"), "ok");
  EXPECT_EQ(Exec(&shell, "load f " + path), "ok 4");
  EXPECT_EQ(Exec(&shell, "count f"), "ok 2");
  EXPECT_NE(Exec(&shell, "load f /no/such/file"), "ok");
  std::remove(path.c_str());
}

TEST(ShellTest, RunProcessesScriptsAndCountsErrors) {
  std::istringstream script(
      "stream f 64\n"
      "stream f 64\n"      // duplicate → error
      "update f 3\n"
      "bogus\n"            // error
      "count f\n"
      "quit\n"
      "update f 3\n");     // after quit: never executed
  std::ostringstream out;
  Shell shell;
  EXPECT_EQ(shell.Run(script, out), 2);
  const std::string text = out.str();
  EXPECT_NE(text.find("ok 1"), std::string::npos);
  // The post-quit update must not have run.
  EXPECT_EQ(*shell.engine().StreamElementCount("f"), 1);
}

TEST(ShellTest, CheckpointRestoreRoundTripKeepsNamesAndAnswers) {
  const std::string path = ::testing::TempDir() + "/shell.ckpt";
  Shell saver;
  ASSERT_EQ(Exec(&saver, "stream f 1024"), "ok");
  ASSERT_EQ(Exec(&saver, "freq hh f 4096"), "ok");
  ASSERT_EQ(Exec(&saver, "quantile med f 0.05"), "ok");
  for (uint64_t v = 0; v < 500; ++v) {
    ASSERT_EQ(Exec(&saver, "update f " + std::to_string(v % 64)), "ok");
  }
  ASSERT_EQ(Exec(&saver, "checkpoint " + path), "ok");

  Shell restorer;
  ASSERT_EQ(Exec(&restorer, "restore " + path), "ok");
  // Query names survive via checkpoint metadata, and answers are identical.
  EXPECT_EQ(Exec(&restorer, "count f"), Exec(&saver, "count f"));
  EXPECT_EQ(Exec(&restorer, "point hh 7"), Exec(&saver, "point hh 7"));
  EXPECT_EQ(Exec(&restorer, "phi med 0.5"), Exec(&saver, "phi med 0.5"));
  // Restored shells keep working: the stream accepts further updates.
  EXPECT_EQ(Exec(&restorer, "update f 7"), "ok");
  std::remove(path.c_str());
}

TEST(ShellTest, RestoreRefusesOccupiedShellAndMissingFile) {
  const std::string path = ::testing::TempDir() + "/shell-occupied.ckpt";
  Shell saver;
  ASSERT_EQ(Exec(&saver, "stream f 64"), "ok");
  ASSERT_EQ(Exec(&saver, "checkpoint " + path), "ok");
  // A shell that has registered anything cannot restore in place.
  EXPECT_NE(Exec(&saver, "restore " + path).find("FAILED_PRECONDITION"),
            std::string::npos);
  Shell fresh;
  EXPECT_NE(Exec(&fresh, "restore /no/such/file.ckpt"), "ok");
  EXPECT_NE(Exec(&fresh, "restore " + path + " sloppy"), "ok");  // bad mode
  std::remove(path.c_str());
}

TEST(ShellTest, PartialRestoreReportsUnsupportedQueries) {
  const std::string path = ::testing::TempDir() + "/shell-partial.ckpt";
  Shell saver;
  ASSERT_EQ(Exec(&saver, "stream f 1024"), "ok");
  ASSERT_EQ(Exec(&saver, "stream g 1024"), "ok");
  // Sampling joins have no serializable synopsis: strict restore refuses the
  // checkpoint, `restore ... partial` re-registers the query empty.
  ASSERT_EQ(Exec(&saver, "join sj f g sampling 2048"), "ok");
  ASSERT_EQ(Exec(&saver, "checkpoint " + path), "ok");

  Shell strict;
  EXPECT_NE(Exec(&strict, "restore " + path).find("UNIMPLEMENTED"),
            std::string::npos);
  Shell partial;
  EXPECT_EQ(Exec(&partial, "restore " + path + " partial"), "ok lost 1");
  // The name still resolves; the re-registered query answers from scratch.
  EXPECT_EQ(Exec(&partial, "answer sj").rfind("ok ", 0), 0u);
  std::remove(path.c_str());
}

TEST(ShellTest, SeedChangesQueryRandomness) {
  Shell shell;
  ASSERT_EQ(Exec(&shell, "seed 12345"), "ok");
  ASSERT_EQ(Exec(&shell, "stream f 64"), "ok");
  ASSERT_EQ(Exec(&shell, "selfjoin q f skimmed 1024"), "ok");
  EXPECT_NE(Exec(&shell, "seed"), "ok");  // usage error
}

TEST(ShellTest, StreamsReportsPerStreamIngestStats) {
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "stream g 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "update f 7 3"), "ok");
  ASSERT_EQ(Exec(&shell, "update f 9"), "ok");
  const std::string response = Exec(&shell, "streams");
  EXPECT_EQ(response.rfind("ok ", 0), 0u) << response;
  EXPECT_NE(response.find("f:count=4,absorbed=2,dropped=0,batches=0,"
                          "merges=0,absorb_nanos="),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("g:count=0,absorbed=0"), std::string::npos)
      << response;
  EXPECT_NE(response.find("merge_nanos="), std::string::npos) << response;
}

TEST(ShellTest, StatsReportsEngineTotals) {
  Shell shell;
  EXPECT_EQ(Exec(&shell, "stats"),
            "ok streams=0 relations=0 queries=0 absorbed=0 dropped=0 "
            "batches=0 merges=0");
  ASSERT_EQ(Exec(&shell, "stream f 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "selfjoin q f agms 512"), "ok");
  ASSERT_EQ(Exec(&shell, "update f 7"), "ok");
  ASSERT_EQ(Exec(&shell, "update f 8"), "ok");
  EXPECT_EQ(Exec(&shell, "stats"),
            "ok streams=1 relations=0 queries=1 absorbed=2 dropped=0 "
            "batches=0 merges=0");
}

TEST(ShellTest, MetricsJsonIsOneLine) {
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 64"), "ok");
  ASSERT_EQ(Exec(&shell, "update f 3"), "ok");
  const std::string response = Exec(&shell, "metrics");
  EXPECT_EQ(response.rfind("ok {", 0), 0u) << response;
  EXPECT_EQ(response.find('\n'), std::string::npos) << response;
  EXPECT_NE(response.find("\"ingest.f.elements_absorbed\":1"),
            std::string::npos)
      << response;
  // Explicit `json` is the same as the default.
  EXPECT_EQ(Exec(&shell, "metrics json").rfind("ok {", 0), 0u);
  EXPECT_NE(Exec(&shell, "metrics xml"), "ok");  // usage error
}

TEST(ShellTest, MetricsPromIsMultiLine) {
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 64"), "ok");
  ASSERT_EQ(Exec(&shell, "update f 3"), "ok");
  std::ostringstream out;
  EXPECT_TRUE(shell.ExecuteLine("metrics prom", out));
  const std::string response = out.str();
  EXPECT_EQ(response.rfind("ok\n", 0), 0u) << response;
  EXPECT_NE(response.find("# TYPE ingest_f_elements_absorbed counter\n"
                          "ingest_f_elements_absorbed 1\n"),
            std::string::npos)
      << response;
}

TEST(ShellTest, HelpMentionsObservabilityCommands) {
  Shell shell;
  const std::string help = Exec(&shell, "help");
  EXPECT_NE(help.find("streams"), std::string::npos);
  EXPECT_NE(help.find("stats"), std::string::npos);
  EXPECT_NE(help.find("metrics"), std::string::npos);
}

// The registry is the single source of truth for `help`: every registered
// command must appear in the help output, and every registered name must be
// accepted by the dispatcher (no "unknown command" for a listed name).
TEST(ShellTest, HelpListsEveryRegisteredCommand) {
  Shell shell;
  std::ostringstream out;
  EXPECT_TRUE(shell.ExecuteLine("help", out));
  const std::string help = out.str();
  EXPECT_EQ(help.rfind("ok\n", 0), 0u) << help;
  ASSERT_FALSE(Shell::CommandHelp().empty());
  for (const auto& [name, synopsis] : Shell::CommandHelp()) {
    EXPECT_NE(help.find(synopsis), std::string::npos)
        << "help output is missing the synopsis for `" << name << "`";
    // Every synopsis leads with its command name.
    EXPECT_EQ(synopsis.rfind(name, 0), 0u) << synopsis;
  }
  // The key commands of every PR so far are registered.
  std::vector<std::string> names;
  for (const auto& [name, synopsis] : Shell::CommandHelp()) {
    names.push_back(name);
  }
  for (const char* expected :
       {"stream", "join", "selfjoin", "update", "answer", "checkpoint",
        "restore", "metrics", "explain", "logs", "alerts", "help", "quit"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "command registry is missing `" << expected << "`";
  }
}

TEST(ShellTest, EveryRegisteredCommandIsDispatched) {
  for (const auto& [name, synopsis] : Shell::CommandHelp()) {
    Shell shell;  // fresh shell per command: `quit` ends a session
    std::ostringstream out;
    shell.ExecuteLine(name, out);
    EXPECT_EQ(out.str().find("unknown command"), std::string::npos)
        << "`" << name << "` is in the registry but not dispatched: "
        << out.str();
  }
}

TEST(ShellTest, ExplainRendersProvenanceTable) {
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "stream g 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "join q f g skimmed 2048"), "ok");
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(Exec(&shell, "update f " + std::to_string(i % 10)), "ok");
    ASSERT_EQ(Exec(&shell, "update g " + std::to_string(i % 10)), "ok");
  }
  std::ostringstream out;
  EXPECT_TRUE(shell.ExecuteLine("explain q", out));
  const std::string response = out.str();
  EXPECT_EQ(response.rfind("ok\n", 0), 0u) << response;
  EXPECT_NE(response.find("estimate report [skimmed]"), std::string::npos)
      << response;
  EXPECT_NE(response.find("ci_lower"), std::string::npos);
  EXPECT_NE(response.find("skim.dense_count_f"), std::string::npos);
  // The table's estimate agrees with the one-line answer path.
  const std::string answer = Exec(&shell, "answer q");
  EXPECT_EQ(answer.rfind("ok ", 0), 0u);

  EXPECT_NE(Exec(&shell, "explain nope"), "ok");
  EXPECT_NE(Exec(&shell, "explain"), "ok");  // usage error
}

TEST(ShellTest, ExplainCoversSelfJoinQueries) {
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "selfjoin sq f agms 512"), "ok");
  for (int i = 0; i < 20; ++i) ASSERT_EQ(Exec(&shell, "update f 3"), "ok");
  std::ostringstream out;
  EXPECT_TRUE(shell.ExecuteLine("explain sq", out));
  EXPECT_NE(out.str().find("estimate report [agms]"), std::string::npos)
      << out.str();
}

TEST(ShellTest, LogsCommandSurfacesEventRing) {
  EventLog::Global().Clear();
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "stream g 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "join q f g agms 512"), "ok");
  for (int i = 0; i < 30; ++i) {
    ASSERT_EQ(Exec(&shell, "update f " + std::to_string(i % 8)), "ok");
    ASSERT_EQ(Exec(&shell, "update g " + std::to_string((i + 3) % 8)), "ok");
  }
  // Empty ring: "ok 0" and nothing else.
  EXPECT_EQ(Exec(&shell, "logs"), "ok 0");

  // Drive a ci_blowup event end-to-end: zero threshold, then a report-path
  // answer (`explain` — the plain `answer` path computes no CI).
  ASSERT_EQ(Exec(&shell, "alerts inf 0"), "ok");
  ASSERT_EQ(Exec(&shell, "explain q").rfind("ok", 0), 0u);
  std::ostringstream out;
  EXPECT_TRUE(shell.ExecuteLine("logs 5", out));
  const std::string response = out.str();
  EXPECT_EQ(response.rfind("ok 1\n", 0), 0u) << response;
  EXPECT_NE(response.find("\"event\":\"ci_blowup\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"level\":\"warn\""), std::string::npos);

  // `alerts inf inf` disables both monitors again.
  ASSERT_EQ(Exec(&shell, "alerts inf inf"), "ok");
  ASSERT_EQ(Exec(&shell, "explain q").rfind("ok", 0), 0u);
  EXPECT_EQ(Exec(&shell, "logs").rfind("ok 1", 0), 0u);

  EXPECT_NE(Exec(&shell, "logs nope"), "ok 1");   // usage error
  EXPECT_NE(Exec(&shell, "alerts 0.5"), "ok");    // usage error
  EXPECT_NE(Exec(&shell, "alerts a b"), "ok");    // usage error
  EventLog::Global().Clear();
}

// CLI --explain parity: with always-explain enabled, `answer` on a join
// query prints the one-line answer and then the same provenance table.
TEST(ShellTest, AlwaysExplainAnswersWithTable) {
  Shell shell;
  shell.set_always_explain(true);
  ASSERT_EQ(Exec(&shell, "stream f 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "stream g 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "join q f g hash-sketch 1024"), "ok");
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(Exec(&shell, "update f 5"), "ok");
    ASSERT_EQ(Exec(&shell, "update g 5"), "ok");
  }
  std::ostringstream out;
  EXPECT_TRUE(shell.ExecuteLine("answer q", out));
  const std::string response = out.str();
  EXPECT_EQ(response.rfind("ok ", 0), 0u) << response;
  EXPECT_NE(response.find("estimate report [hash-sketch]"), std::string::npos)
      << response;
  // The first line's value is the report's estimate (bit-identical paths).
  const double value = std::stod(response.substr(3));
  EXPECT_NEAR(value, 400.0, 40.0);
}

// ---- logs level filter -------------------------------------------------

TEST(ShellTest, LogsLevelFilterSelectsAtOrAboveLevel) {
  EventLog::Global().Clear();
  Shell shell;
  EventLog::Global().Emit(LogLevel::kDebug, "dbg_event", {});
  EventLog::Global().Emit(LogLevel::kInfo, "info_event", {});
  EventLog::Global().Emit(LogLevel::kWarn, "warn_event", {});
  EventLog::Global().Emit(LogLevel::kError, "error_event", {});

  // `logs warn` keeps warn and error only.
  std::ostringstream out;
  EXPECT_TRUE(shell.ExecuteLine("logs warn", out));
  std::string response = out.str();
  EXPECT_EQ(response.rfind("ok 2\n", 0), 0u) << response;
  EXPECT_NE(response.find("warn_event"), std::string::npos);
  EXPECT_NE(response.find("error_event"), std::string::npos);
  EXPECT_EQ(response.find("info_event"), std::string::npos);

  // Count applies AFTER the filter: the 1 most recent warn-or-worse event.
  out.str("");
  EXPECT_TRUE(shell.ExecuteLine("logs 1 warn", out));
  response = out.str();
  EXPECT_EQ(response.rfind("ok 1\n", 0), 0u) << response;
  EXPECT_NE(response.find("error_event"), std::string::npos);
  EXPECT_EQ(response.find("warn_event"), std::string::npos);

  // Count and level tokens are accepted in either order.
  out.str("");
  EXPECT_TRUE(shell.ExecuteLine("logs error 3", out));
  EXPECT_EQ(out.str().rfind("ok 1\n", 0), 0u) << out.str();

  // `logs debug` sees everything.
  out.str("");
  EXPECT_TRUE(shell.ExecuteLine("logs debug", out));
  EXPECT_EQ(out.str().rfind("ok 4\n", 0), 0u) << out.str();

  // Usage errors: two counts, two levels, junk token.
  EXPECT_EQ(Exec(&shell, "logs 1 2").rfind("error:", 0), 0u);
  EXPECT_EQ(Exec(&shell, "logs warn info").rfind("error:", 0), 0u);
  EXPECT_EQ(Exec(&shell, "logs loud").rfind("error:", 0), 0u);
  EventLog::Global().Clear();
}

// ---- distributed backend dispatch --------------------------------------

// Engine-free DistBackend double: canned statuses, counts calls. Lets the
// shell's dist dispatch be tested without sockets or worker processes.
class FakeDistBackend : public DistBackend {
 public:
  Status RegisterStream(const StreamSpec&) override { return OkStatus(); }
  StatusOr<QueryId> AddJoinQuery(const JoinQuerySpec&, uint64_t) override {
    return QueryId{7};
  }
  StatusOr<QueryId> AddSelfJoinQuery(const SelfJoinQuerySpec&,
                                     uint64_t) override {
    return QueryId{8};
  }
  StatusOr<QueryId> AddFrequencyQuery(const FrequencyQuerySpec&,
                                      uint64_t) override {
    return QueryId{9};
  }
  Status Update(const std::string&, const StreamUpdate&) override {
    ++updates;
    return OkStatus();
  }
  Status UpdateBatch(const std::string&,
                     std::span<const StreamUpdate> batch) override {
    updates += static_cast<int>(batch.size());
    return OkStatus();
  }
  StatusOr<double> AnswerJoin(QueryId) override { return 42.0; }
  StatusOr<EstimateReport> AnswerJoinWithReport(QueryId) override {
    EstimateReport report;
    report.estimate = 42.0;
    return report;
  }
  StatusOr<int64_t> AnswerPointFrequency(QueryId, uint64_t) override {
    return 5;
  }
  Status CheckpointShards() override {
    ++checkpoints;
    return OkStatus();
  }
  Status ProbeHealth() override {
    ++probes;
    return OkStatus();
  }
  std::vector<DistShardStatus> ShardStatuses() override {
    DistShardStatus s0;
    s0.shard = "s0";
    s0.health = "healthy";
    s0.incarnation = 1;
    s0.last_acked_epoch = 3;
    DistShardStatus s1;
    s1.shard = "s1";
    s1.health = "down";
    s1.rpc_failures = 2;
    return {s0, s1};
  }
  uint64_t NumShards() const override { return 2; }

  int updates = 0;
  int checkpoints = 0;
  int probes = 0;
};

TEST(ShellTest, WorkersAndShardsRequireABackend) {
  Shell shell;
  EXPECT_EQ(Exec(&shell, "workers"), "error: no distributed backend attached");
  EXPECT_EQ(Exec(&shell, "shards"), "error: no distributed backend attached");
}

TEST(ShellTest, DistBackendRoutesCommandsAndRendersFleet) {
  FakeDistBackend backend;
  Shell shell;
  shell.set_dist_backend(&backend);

  ASSERT_EQ(Exec(&shell, "stream f 1024"), "ok");
  ASSERT_EQ(Exec(&shell, "join q f f agms 64"), "ok");
  ASSERT_EQ(Exec(&shell, "update f 3"), "ok");
  EXPECT_EQ(backend.updates, 1);
  EXPECT_EQ(Exec(&shell, "answer q"), "ok 42");
  ASSERT_EQ(Exec(&shell, "checkpoint ignored-path"), "ok");
  EXPECT_EQ(backend.checkpoints, 1);

  const std::string workers = Exec(&shell, "workers");
  EXPECT_EQ(backend.probes, 1);
  EXPECT_EQ(workers.rfind("ok 2\n", 0), 0u) << workers;
  EXPECT_NE(workers.find("s0 health=healthy incarnation=1 epoch=3"),
            std::string::npos)
      << workers;
  EXPECT_NE(workers.find("s1 health=down"), std::string::npos) << workers;
  EXPECT_EQ(Exec(&shell, "shards"), "ok 2 routing=value%2 s0 s1");

  // Local-only commands must error, not silently act on the empty engine.
  for (const char* line :
       {"distinct d f 256", "topk t f 4", "count f", "streams", "stats",
        "load f /dev/null", "restore /tmp/x", "cache on"}) {
    const std::string response = Exec(&shell, line);
    EXPECT_EQ(response.rfind("error:", 0), 0u) << line << " -> " << response;
    EXPECT_NE(response.find("not supported with a distributed backend"),
              std::string::npos)
        << line << " -> " << response;
  }

  // Detaching restores the local engine path.
  shell.set_dist_backend(nullptr);
  EXPECT_EQ(Exec(&shell, "streams").rfind("ok", 0), 0u);
}

// ---- fleet telemetry commands ------------------------------------------

// FakeDistBackend inherits the default (kUnimplemented) fleet virtuals, so
// it stands in for a backend predating the telemetry plane; these doubles
// layer the new surface on top of it.

// Fleet-capable double: canned merged snapshot, scrape that re-emits one
// tagged event, recorded tracing toggles, canned merged trace.
class FleetFakeBackend : public FakeDistBackend {
 public:
  StatusOr<metrics::Snapshot> FleetMetricsSnapshot() override {
    // Name-sorted, like a real Registry::TakeSnapshot merge.
    metrics::Snapshot snapshot;
    snapshot.counters.emplace_back("dist.batches_routed", 9);
    snapshot.counters.emplace_back(
        metrics::LabeledName("ingest.f.elements_absorbed", {{"shard", "0"}}),
        3);
    snapshot.counters.emplace_back(
        metrics::LabeledName("ingest.f.elements_absorbed", {{"shard", "1"}}),
        4);
    return snapshot;
  }
  Status ScrapeFleetEvents() override {
    ++scrapes;
    EventLog::Global().Emit(LogLevel::kInfo, "fleet_probe",
                            {{"origin_shard", "1"}, {"origin_seq", "17"}});
    return OkStatus();
  }
  Status SetFleetTracing(bool enable) override {
    tracing = enable;
    return OkStatus();
  }
  StatusOr<std::string> DumpFleetTrace() override {
    return std::string(R"({"traceEvents":[{"name":"fleet_span"}]})");
  }

  int scrapes = 0;
  bool tracing = false;
};

// Has a coordinator-local registry but no fleet path: `metrics` must fall
// back to it with the banner.
class LocalRegistryBackend : public FakeDistBackend {
 public:
  LocalRegistryBackend() { registry_.GetCounter("dist.rpc.sent")->Increment(3); }
  metrics::Registry* MetricsRegistry() override { return &registry_; }

 private:
  metrics::Registry registry_;
};

class ScrapeFailsBackend : public FleetFakeBackend {
 public:
  Status ScrapeFleetEvents() override { return InternalError("s1 hung up"); }
};

TEST(ShellTest, FleetRequiresABackendAndToleratesMissingScrape) {
  Shell shell;
  EXPECT_EQ(Exec(&shell, "fleet"), "error: no distributed backend attached");

  // A pre-telemetry backend: kUnimplemented scrape is expected, NOT flagged
  // as incomplete — only real scrape failures earn the suffix.
  FakeDistBackend backend;
  shell.set_dist_backend(&backend);
  const std::string fleet = Exec(&shell, "fleet");
  EXPECT_EQ(backend.probes, 1);
  EXPECT_EQ(fleet.rfind("ok 2 shards\n", 0), 0u) << fleet;
  EXPECT_EQ(fleet.find("event scrape incomplete"), std::string::npos) << fleet;
  EXPECT_NE(fleet.find("s0 health=healthy incarnation=1 epoch=3"),
            std::string::npos)
      << fleet;
  EXPECT_NE(fleet.find("s1 health=down"), std::string::npos) << fleet;

  ScrapeFailsBackend failing;
  shell.set_dist_backend(&failing);
  const std::string incomplete = Exec(&shell, "fleet");
  EXPECT_EQ(incomplete.rfind("ok 2 shards (event scrape incomplete)\n", 0), 0u)
      << incomplete;
}

TEST(ShellTest, FleetScrapesEventsIntoTheLocalLog) {
  EventLog::Global().Clear();
  FleetFakeBackend backend;
  Shell shell;
  shell.set_dist_backend(&backend);
  const std::string fleet = Exec(&shell, "fleet");
  EXPECT_EQ(fleet.rfind("ok 2 shards\n", 0), 0u) << fleet;
  EXPECT_EQ(backend.probes, 1);
  EXPECT_EQ(backend.scrapes, 1);

  // The scraped event is now in the local log, findable by shard.
  std::ostringstream out;
  EXPECT_TRUE(shell.ExecuteLine("logs --shard 1", out));
  EXPECT_EQ(backend.scrapes, 2);  // `logs --shard` refreshes first
  const std::string logs = out.str();
  EXPECT_EQ(logs.rfind("ok 2\n", 0), 0u) << logs;
  EXPECT_NE(logs.find("fleet_probe"), std::string::npos) << logs;
  EXPECT_NE(logs.find("\"origin_shard\":\"1\""), std::string::npos) << logs;
  EventLog::Global().Clear();
}

TEST(ShellTest, LogsShardFilterKeepsOnlyThatShardsEvents) {
  EventLog::Global().Clear();
  FleetFakeBackend backend;
  Shell shell;
  shell.set_dist_backend(&backend);
  EventLog::Global().Emit(LogLevel::kInfo, "local_event", {{"src", "coord"}});

  std::ostringstream out;
  EXPECT_TRUE(shell.ExecuteLine("logs --shard 1", out));
  EXPECT_EQ(out.str().rfind("ok 1\n", 0), 0u) << out.str();
  EXPECT_NE(out.str().find("fleet_probe"), std::string::npos) << out.str();
  EXPECT_EQ(out.str().find("local_event"), std::string::npos) << out.str();

  // No events carry origin_shard=0; the local event must not leak through.
  EXPECT_EQ(Exec(&shell, "logs --shard 0"), "ok 0");

  // Usage errors: duplicate flag, missing value.
  EXPECT_EQ(Exec(&shell, "logs --shard 1 --shard 2").rfind("error:", 0), 0u);
  EXPECT_EQ(Exec(&shell, "logs --shard").rfind("error:", 0), 0u);
  EventLog::Global().Clear();
}

TEST(ShellTest, TraceCommandsDriveTheLocalRecorderWithoutABackend) {
  metrics::TraceRecorder::Global().Disable();
  (void)metrics::TraceRecorder::Global().DrainAsChromeTrace();  // start clean
  Shell shell;
  EXPECT_EQ(Exec(&shell, "trace start"), "ok");
  { metrics::TraceSpan span("shell_test.local_span", "test"); }
  const std::string path = ::testing::TempDir() + "/shell-local.trace.json";
  const std::string dump = Exec(&shell, "trace dump " + path);
  EXPECT_EQ(dump.rfind("ok ", 0), 0u) << dump;
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("shell_test.local_span"), std::string::npos)
      << content.str();
  EXPECT_EQ(Exec(&shell, "trace stop"), "ok");

  EXPECT_EQ(Exec(&shell, "trace"), "error: usage: trace start|stop|dump <file>");
  EXPECT_EQ(Exec(&shell, "trace dump"), "error: usage: trace dump <file>");
  EXPECT_EQ(Exec(&shell, "trace bounce").rfind("error: usage:", 0), 0u);
  std::remove(path.c_str());
}

TEST(ShellTest, TraceCommandsRouteToTheFleetWithABackend) {
  FleetFakeBackend backend;
  Shell shell;
  shell.set_dist_backend(&backend);
  EXPECT_EQ(Exec(&shell, "trace start"), "ok");
  EXPECT_TRUE(backend.tracing);
  EXPECT_EQ(Exec(&shell, "trace stop"), "ok");
  EXPECT_FALSE(backend.tracing);

  const std::string path = ::testing::TempDir() + "/shell-fleet.trace.json";
  const std::string dump = Exec(&shell, "trace dump " + path);
  EXPECT_EQ(dump.rfind("ok ", 0), 0u) << dump;
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("fleet_span"), std::string::npos)
      << content.str();
  std::remove(path.c_str());

  // A backend without fleet tracing surfaces the error instead of silently
  // toggling only the local recorder.
  FakeDistBackend legacy;
  shell.set_dist_backend(&legacy);
  const std::string response = Exec(&shell, "trace start");
  EXPECT_EQ(response.rfind("error:", 0), 0u) << response;
  EXPECT_NE(response.find("fleet tracing"), std::string::npos) << response;
}

TEST(ShellTest, MetricsRoutesToTheFleetSnapshotInDistMode) {
  FleetFakeBackend backend;
  Shell shell;
  shell.set_dist_backend(&backend);

  // Bare `metrics` means the fleet in dist mode — no banner.
  const std::string json = Exec(&shell, "metrics");
  EXPECT_EQ(json.rfind("ok ", 0), 0u) << json;
  EXPECT_NE(json.find("\"fleet\""), std::string::npos) << json;
  EXPECT_EQ(json.find("coordinator-local"), std::string::npos) << json;

  const std::string prom = Exec(&shell, "metrics fleet prom");
  EXPECT_EQ(prom.rfind("ok\n", 0), 0u) << prom;
  EXPECT_NE(prom.find("ingest_f_elements_absorbed{shard=\"0\"} 3"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("ingest_f_elements_absorbed{shard=\"1\"} 4"),
            std::string::npos)
      << prom;
}

TEST(ShellTest, MetricsFallsBackToCoordinatorLocalWithABanner) {
  LocalRegistryBackend backend;
  Shell shell;
  shell.set_dist_backend(&backend);

  const std::string fallback = Exec(&shell, "metrics");
  EXPECT_EQ(fallback.rfind("ok ", 0), 0u) << fallback;
  EXPECT_NE(fallback.find("(coordinator-local; use 'metrics fleet')"),
            std::string::npos)
      << fallback;
  EXPECT_NE(fallback.find("dist.rpc.sent"), std::string::npos) << fallback;

  const std::string prom = Exec(&shell, "metrics prom");
  EXPECT_NE(prom.find("# (coordinator-local; use 'metrics fleet')"),
            std::string::npos)
      << prom;

  // Explicitly asking for the fleet must error, not silently downgrade.
  EXPECT_EQ(Exec(&shell, "metrics fleet").rfind("error:", 0), 0u);

  // Backend exposing neither a fleet path nor a registry: a plain error.
  FakeDistBackend bare;
  shell.set_dist_backend(&bare);
  EXPECT_EQ(Exec(&shell, "metrics"),
            "error: the attached distributed backend exposes no metrics");

  // `metrics fleet` without any backend at all.
  shell.set_dist_backend(nullptr);
  EXPECT_EQ(Exec(&shell, "metrics fleet"),
            "error: no distributed backend attached");
}

// ---- logs --shard composed with the level filter -----------------------

// Satellite pin: `logs --shard <k>` and a level token compose in either
// token order.
TEST(ShellTest, LogsShardFilterComposesWithLevelInEitherOrder) {
  EventLog::Global().Clear();
  FleetFakeBackend backend;
  Shell shell;
  shell.set_dist_backend(&backend);
  EventLog::Global().Emit(LogLevel::kWarn, "victim_warn",
                          {{"origin_shard", "1"}, {"origin_seq", "18"}});
  EventLog::Global().Emit(LogLevel::kWarn, "bystander_warn",
                          {{"origin_shard", "0"}, {"origin_seq", "4"}});

  for (const char* line : {"logs --shard 1 warn", "logs warn --shard 1"}) {
    std::ostringstream out;
    EXPECT_TRUE(shell.ExecuteLine(line, out));
    const std::string logs = out.str();
    EXPECT_EQ(logs.rfind("ok 1\n", 0), 0u) << line << " -> " << logs;
    EXPECT_NE(logs.find("victim_warn"), std::string::npos) << line;
    // The refresh scrape's info-level fleet_probe is filtered by `warn`,
    // shard 0's warn by the shard filter.
    EXPECT_EQ(logs.find("fleet_probe"), std::string::npos) << line;
    EXPECT_EQ(logs.find("bystander_warn"), std::string::npos) << line;
  }
  EventLog::Global().Clear();
}

// ---- health & doctor ----------------------------------------------------

TEST(ShellTest, HealthRendersReportDoctorRendersFindings) {
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 2048"), "ok");
  ASSERT_EQ(Exec(&shell, "stream g 2048"), "ok");
  ASSERT_EQ(Exec(&shell, "join q f g hash-sketch 64"), "ok");
  for (uint64_t value = 0; value < 2048; ++value) {
    ASSERT_EQ(Exec(&shell, "update f " + std::to_string(value)), "ok");
    ASSERT_EQ(Exec(&shell, "update g " + std::to_string(value)), "ok");
  }

  const std::string health = Exec(&shell, "health");
  EXPECT_EQ(health.rfind("ok\n", 0), 0u) << health;
  EXPECT_NE(health.find("stream health"), std::string::npos) << health;
  EXPECT_NE(health.find("synopsis health"), std::string::npos) << health;
  EXPECT_NE(health.find("collision-pressure"), std::string::npos) << health;

  const std::string doctor = Exec(&shell, "doctor");
  EXPECT_EQ(doctor.rfind("ok ", 0), 0u) << doctor;
  EXPECT_NE(doctor.find("collision-pressure"), std::string::npos) << doctor;
  EXPECT_NE(doctor.find("[warn] query "), std::string::npos) << doctor;
  // The doctor prints findings only, never the tables.
  EXPECT_EQ(doctor.find("stream health"), std::string::npos) << doctor;
}

TEST(ShellTest, HealthNarrowsToQueryOrStream) {
  Shell shell;
  ASSERT_EQ(Exec(&shell, "stream f 2048"), "ok");
  ASSERT_EQ(Exec(&shell, "stream g 2048"), "ok");
  ASSERT_EQ(Exec(&shell, "join q f g hash-sketch 64"), "ok");
  ASSERT_EQ(Exec(&shell, "update f 7"), "ok");

  const std::string by_query = Exec(&shell, "health q");
  EXPECT_EQ(by_query.rfind("ok\n", 0), 0u) << by_query;
  EXPECT_NE(by_query.find("synopsis health"), std::string::npos) << by_query;
  EXPECT_EQ(by_query.find("| f "), std::string::npos) << by_query;

  const std::string by_stream = Exec(&shell, "health f");
  EXPECT_EQ(by_stream.rfind("ok\n", 0), 0u) << by_stream;
  EXPECT_NE(by_stream.find("stream health"), std::string::npos) << by_stream;
  EXPECT_EQ(by_stream.find("hash-sketch"), std::string::npos) << by_stream;

  EXPECT_EQ(Exec(&shell, "health nope"),
            "error: unknown join/frequency query or stream: nope");
}

// Fleet-capable health double: canned shard-labeled findings.
class FleetHealthBackend : public FleetFakeBackend {
 public:
  StatusOr<HealthReport> FleetHealthReport() override {
    HealthReport report;
    report.findings.push_back({HealthFinding::Severity::kWarn, "query 1",
                               "collision-pressure",
                               "hash-sketch.f occupancy 0.99 over f\u2a1dg — "
                               "the sketch is undersized for this stream",
                               "0"});
    report.findings.push_back({HealthFinding::Severity::kCritical, "shard s1",
                               "unreachable", "connect refused", "1"});
    return report;
  }
};

TEST(ShellTest, HealthAndDoctorGoFleetWideWithABackend) {
  FleetHealthBackend backend;
  Shell shell;
  shell.set_dist_backend(&backend);

  for (const char* line : {"health", "doctor"}) {
    const std::string response = Exec(&shell, line);
    EXPECT_EQ(response.rfind("ok 2\n", 0), 0u) << line << " -> " << response;
    EXPECT_NE(response.find("[warn] query 1{shard=\"0\"} collision-pressure"),
              std::string::npos)
        << response;
    EXPECT_NE(response.find("[critical] shard s1{shard=\"1\"} unreachable"),
              std::string::npos)
        << response;
  }

  // Narrowing is a local-engine feature.
  EXPECT_EQ(Exec(&shell, "health q"),
            "error: health narrowing is not supported with a distributed "
            "backend");

  // A pre-health backend reports the unimplemented status as an error.
  FakeDistBackend legacy;
  shell.set_dist_backend(&legacy);
  EXPECT_EQ(Exec(&shell, "health").rfind("error:", 0), 0u);
}

}  // namespace
}  // namespace query
}  // namespace skimjoin
