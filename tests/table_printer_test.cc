#include "util/table_printer.h"

#include <sstream>

#include "gtest/gtest.h"

namespace skimjoin {
namespace {

TEST(TablePrinterTest, PrintsTitleHeaderAndRows) {
  TablePrinter table("demo", {"a", "long-column"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  std::ostringstream os;
  table.Print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("| a "), std::string::npos);
  EXPECT_NE(text.find("long-column"), std::string::npos);
  EXPECT_NE(text.find("333"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAlignAcrossRows) {
  TablePrinter table("t", {"x"});
  table.AddRow({"1"});
  table.AddRow({"12345"});
  std::ostringstream os;
  table.Print(os);
  // Every data/header row line should have equal length.
  std::istringstream lines(os.str());
  std::string line;
  size_t width = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '|') continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(TablePrinterTest, FormatDouble) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FormatDouble(-0.5, 3), "-0.500");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 0), "2");
}

TEST(TablePrinterTest, PrintCsvEmitsHeaderAndRows) {
  TablePrinter table("csv demo", {"a", "b"});
  table.AddRow({"1", "hello"});
  table.AddRow({"2", "with,comma"});
  table.AddRow({"3", "with\"quote"});
  std::ostringstream os;
  table.PrintCsv(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# csv demo\n"), std::string::npos);
  EXPECT_NE(text.find("a,b\n"), std::string::npos);
  EXPECT_NE(text.find("1,hello\n"), std::string::npos);
  EXPECT_NE(text.find("2,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(text.find("3,\"with\"\"quote\"\n"), std::string::npos);
}

TEST(TablePrinterDeathTest, RowArityMismatchAborts) {
  TablePrinter table("t", {"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "");
}

}  // namespace
}  // namespace skimjoin
