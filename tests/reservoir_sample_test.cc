#include "sketch/reservoir_sample.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace skimjoin {
namespace sketch {
namespace {

ReservoirSample MustCreate(uint64_t capacity, uint64_t seed) {
  StatusOr<ReservoirSample> sample = ReservoirSample::Create(capacity, seed);
  EXPECT_TRUE(sample.ok()) << sample.status();
  return *std::move(sample);
}

TEST(ReservoirTest, CreateValidatesCapacity) {
  EXPECT_FALSE(ReservoirSample::Create(0, 1).ok());
  EXPECT_TRUE(ReservoirSample::Create(1, 1).ok());
}

TEST(ReservoirTest, KeepsEverythingBelowCapacity) {
  ReservoirSample sample = MustCreate(10, 1);
  for (uint64_t v = 0; v < 7; ++v) sample.Update(v, 1);
  EXPECT_EQ(sample.sample().size(), 7u);
  EXPECT_EQ(sample.stream_size(), 7);
}

TEST(ReservoirTest, NeverExceedsCapacity) {
  ReservoirSample sample = MustCreate(16, 2);
  for (uint64_t v = 0; v < 10000; ++v) sample.Update(v % 97, 1);
  EXPECT_EQ(sample.sample().size(), 16u);
  EXPECT_EQ(sample.stream_size(), 10000);
}

TEST(ReservoirTest, SampleIsRoughlyUniformOverPositions) {
  // Insert 0..999 into a capacity-100 reservoir many times; the average
  // sampled value should be near 500 (uniform over arrival positions).
  double total = 0.0;
  int count = 0;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    ReservoirSample sample = MustCreate(100, seed);
    for (uint64_t v = 0; v < 1000; ++v) sample.Update(v, 1);
    for (uint64_t v : sample.sample()) {
      total += static_cast<double>(v);
      ++count;
    }
  }
  EXPECT_NEAR(total / count, 500.0, 30.0);
}

TEST(ReservoirTest, DeleteRemovesSampledCopy) {
  ReservoirSample sample = MustCreate(10, 3);
  sample.Update(5, 1);
  sample.Update(6, 1);
  sample.Update(5, -1);
  EXPECT_EQ(sample.stream_size(), 1);
  EXPECT_EQ(std::count(sample.sample().begin(), sample.sample().end(), 5), 0);
  EXPECT_EQ(std::count(sample.sample().begin(), sample.sample().end(), 6), 1);
}

TEST(ReservoirTest, DeleteOfUnsampledValueOnlyAdjustsCount) {
  ReservoirSample sample = MustCreate(2, 4);
  sample.Update(1, 1);
  sample.Update(2, 1);
  sample.Update(99, -1);  // never sampled
  EXPECT_EQ(sample.stream_size(), 1);
  EXPECT_EQ(sample.sample().size(), 2u);
}

TEST(ReservoirDeathTest, NonUnitWeightsRejected) {
  ReservoirSample sample = MustCreate(4, 5);
  EXPECT_DEATH(sample.Update(1, 7), "unit");
  EXPECT_DEATH(sample.Update(1, 0), "unit");
}

TEST(ReservoirTest, EmptySamplesEstimateZero) {
  ReservoirSample f = MustCreate(4, 6);
  ReservoirSample g = MustCreate(4, 7);
  EXPECT_DOUBLE_EQ(ReservoirSample::EstimateJoinSize(f, g), 0.0);
}

TEST(ReservoirTest, FullyCapturedStreamsEstimateExactly) {
  // Capacity >= stream length means the "sample" is the whole stream and the
  // scaled estimate equals the exact join size.
  ReservoirSample f = MustCreate(100, 8);
  ReservoirSample g = MustCreate(100, 9);
  // f: value 1 x3, value 2 x2; g: value 1 x4, value 3 x5.
  for (int i = 0; i < 3; ++i) f.Update(1, 1);
  for (int i = 0; i < 2; ++i) f.Update(2, 1);
  for (int i = 0; i < 4; ++i) g.Update(1, 1);
  for (int i = 0; i < 5; ++i) g.Update(3, 1);
  EXPECT_DOUBLE_EQ(ReservoirSample::EstimateJoinSize(f, g), 12.0);
}

TEST(ReservoirTest, ScaledEstimateIsInRightBallparkOnUniformData) {
  // Uniform frequencies: sampling does okay. f = g = each of 100 values
  // appearing 50 times; exact join = 100 * 2500 = 250000.
  ReservoirSample f = MustCreate(400, 10);
  ReservoirSample g = MustCreate(400, 11);
  for (int rep = 0; rep < 50; ++rep) {
    for (uint64_t v = 0; v < 100; ++v) {
      f.Update(v, 1);
      g.Update(v, 1);
    }
  }
  const double estimate = ReservoirSample::EstimateJoinSize(f, g);
  EXPECT_NEAR(estimate, 250000.0, 125000.0);
}

}  // namespace
}  // namespace sketch
}  // namespace skimjoin
