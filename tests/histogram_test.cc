#include "util/histogram.h"

#include <cmath>
#include <sstream>

#include "gtest/gtest.h"

namespace skimjoin {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.ApproximateQuantile(0.5), 0.0);
}

TEST(HistogramTest, TracksExactSummaryStats) {
  Histogram h;
  h.Add(1.0);
  h.Add(3.0);
  h.Add(10.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 14.0);
  EXPECT_NEAR(h.Mean(), 14.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 10.0);
}

TEST(HistogramTest, NegativeValuesClampToFirstBucket) {
  Histogram h;
  h.Add(-5.0);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.Min(), -5.0);
  EXPECT_LE(h.ApproximateQuantile(1.0), 1.0);
}

TEST(HistogramTest, QuantilesRoughlyCorrectOnUniformData) {
  Histogram h;
  for (int i = 0; i < 10000; ++i) h.Add(static_cast<double>(i % 1000));
  const double median = h.ApproximateQuantile(0.5);
  // Log-bucketed: within a factor of 2 of 500.
  EXPECT_GT(median, 250.0);
  EXPECT_LT(median, 1100.0);
}

TEST(HistogramTest, QuantilesMonotoneInQ) {
  Histogram h;
  for (int i = 1; i <= 5000; ++i) h.Add(static_cast<double>(i));
  double previous = 0.0;
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    const double value = h.ApproximateQuantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

TEST(HistogramTest, PrintListsNonEmptyBuckets) {
  Histogram h;
  h.Add(0.5);
  h.Add(100.0);
  std::ostringstream os;
  h.Print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("count=2"), std::string::npos);
  EXPECT_NE(text.find("[0, 1)"), std::string::npos);
  EXPECT_NE(text.find("[64, 128)"), std::string::npos);
}

TEST(HistogramTest, EmptyMinMaxAreNaN) {
  Histogram h;
  // NaN, not 0.0: a 0.0 default would be indistinguishable from a recorded
  // zero (regression test — Min/Max used to return 0.0 when empty).
  EXPECT_TRUE(std::isnan(h.Min()));
  EXPECT_TRUE(std::isnan(h.Max()));
  h.Add(0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
}

TEST(HistogramTest, StdDevMatchesDirectComputation) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.StdDev(), 0.0);
  Histogram single;
  single.Add(42.0);
  EXPECT_DOUBLE_EQ(single.StdDev(), 0.0);
  Histogram h;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.Add(v);
  EXPECT_NEAR(h.StdDev(), 2.0, 1e-9);  // population sigma of this set is 2
}

TEST(HistogramTest, EmptyQuantileExtremesAreZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.ApproximateQuantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.ApproximateQuantile(1.0), 0.0);
}

TEST(HistogramTest, SingleSampleQuantilesStayInItsBucket) {
  Histogram h;
  h.Add(42.0);  // log-bucketed: lands in [32, 64)
  EXPECT_DOUBLE_EQ(h.ApproximateQuantile(0.0), 32.0);
  EXPECT_DOUBLE_EQ(h.ApproximateQuantile(1.0), 64.0);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double value = h.ApproximateQuantile(q);
    EXPECT_GE(value, 32.0) << "q=" << q;
    EXPECT_LE(value, 64.0) << "q=" << q;
  }
}

TEST(HistogramTest, AllEqualSamplesCollapseToOneBucket) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Add(5.0);  // bucket [4, 8)
  EXPECT_DOUBLE_EQ(h.ApproximateQuantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(h.ApproximateQuantile(1.0), 8.0);
  double previous = 0.0;
  for (double q : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    const double value = h.ApproximateQuantile(q);
    EXPECT_GE(value, 4.0) << "q=" << q;
    EXPECT_LE(value, 8.0) << "q=" << q;
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

TEST(HistogramTest, QuantileExtremesBracketTheData) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  // q=0 resolves to the lower edge of the first non-empty bucket (<= min);
  // q=1 to the upper edge of the last (>= max, within a factor of 2).
  EXPECT_LE(h.ApproximateQuantile(0.0), 1.0);
  EXPECT_GE(h.ApproximateQuantile(1.0), 1000.0);
  EXPECT_LE(h.ApproximateQuantile(1.0), 2000.0);
}

TEST(HistogramDeathTest, QuantileValidatesQ) {
  Histogram h;
  h.Add(1.0);
  EXPECT_DEATH((void)h.ApproximateQuantile(-0.1), "");
  EXPECT_DEATH((void)h.ApproximateQuantile(1.1), "");
}

}  // namespace
}  // namespace skimjoin
