#include "util/histogram.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "gtest/gtest.h"

namespace skimjoin {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.ApproximateQuantile(0.5), 0.0);
}

TEST(HistogramTest, TracksExactSummaryStats) {
  Histogram h;
  h.Add(1.0);
  h.Add(3.0);
  h.Add(10.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 14.0);
  EXPECT_NEAR(h.Mean(), 14.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 10.0);
}

TEST(HistogramTest, NegativeValuesClampToFirstBucket) {
  Histogram h;
  h.Add(-5.0);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.Min(), -5.0);
  EXPECT_LE(h.ApproximateQuantile(1.0), 1.0);
}

TEST(HistogramTest, QuantilesRoughlyCorrectOnUniformData) {
  Histogram h;
  for (int i = 0; i < 10000; ++i) h.Add(static_cast<double>(i % 1000));
  const double median = h.ApproximateQuantile(0.5);
  // Log-bucketed: within a factor of 2 of 500.
  EXPECT_GT(median, 250.0);
  EXPECT_LT(median, 1100.0);
}

TEST(HistogramTest, QuantilesMonotoneInQ) {
  Histogram h;
  for (int i = 1; i <= 5000; ++i) h.Add(static_cast<double>(i));
  double previous = 0.0;
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    const double value = h.ApproximateQuantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

TEST(HistogramTest, PrintListsNonEmptyBuckets) {
  Histogram h;
  h.Add(0.5);
  h.Add(100.0);
  std::ostringstream os;
  h.Print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("count=2"), std::string::npos);
  EXPECT_NE(text.find("[0, 1)"), std::string::npos);
  EXPECT_NE(text.find("[64, 128)"), std::string::npos);
}

TEST(HistogramTest, EmptyMinMaxAreNaN) {
  Histogram h;
  // NaN, not 0.0: a 0.0 default would be indistinguishable from a recorded
  // zero (regression test — Min/Max used to return 0.0 when empty).
  EXPECT_TRUE(std::isnan(h.Min()));
  EXPECT_TRUE(std::isnan(h.Max()));
  h.Add(0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
}

TEST(HistogramTest, StdDevMatchesDirectComputation) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.StdDev(), 0.0);
  Histogram single;
  single.Add(42.0);
  EXPECT_DOUBLE_EQ(single.StdDev(), 0.0);
  Histogram h;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) h.Add(v);
  EXPECT_NEAR(h.StdDev(), 2.0, 1e-9);  // population sigma of this set is 2
}

TEST(HistogramTest, EmptyQuantileExtremesAreZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.ApproximateQuantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.ApproximateQuantile(1.0), 0.0);
}

TEST(HistogramTest, SingleSampleQuantilesStayInItsBucket) {
  Histogram h;
  h.Add(42.0);  // log-bucketed: lands in [32, 64)
  EXPECT_DOUBLE_EQ(h.ApproximateQuantile(0.0), 32.0);
  // Interpolation is clamped to the observed max, not the nominal bucket
  // upper edge (64): a quantile must never exceed Max().
  EXPECT_DOUBLE_EQ(h.ApproximateQuantile(1.0), 42.0);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double value = h.ApproximateQuantile(q);
    EXPECT_GE(value, 32.0) << "q=" << q;
    EXPECT_LE(value, 42.0) << "q=" << q;
  }
}

TEST(HistogramTest, AllEqualSamplesCollapseToOneBucket) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Add(5.0);  // bucket [4, 8)
  EXPECT_DOUBLE_EQ(h.ApproximateQuantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(h.ApproximateQuantile(1.0), 5.0);  // clamped to max
  double previous = 0.0;
  for (double q : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    const double value = h.ApproximateQuantile(q);
    EXPECT_GE(value, 4.0) << "q=" << q;
    EXPECT_LE(value, 5.0) << "q=" << q;
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

TEST(HistogramTest, QuantileExtremesBracketTheData) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  // q=0 resolves to the lower edge of the first non-empty bucket (<= min);
  // q=1 is clamped to the observed max exactly.
  EXPECT_LE(h.ApproximateQuantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.ApproximateQuantile(1.0), 1000.0);
}

// Regression: samples clustered just above a power-of-two edge. Before the
// clamp, every quantile interpolated across the bucket's full nominal span
// [1024, 2048) and q=1.0 reported 2048 — nearly 2x above any sample.
TEST(HistogramTest, QuantilesClampToMaxJustAbovePowerOfTwoEdge) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Add(1025.0);  // bucket [1024, 2048)
  EXPECT_DOUBLE_EQ(h.ApproximateQuantile(1.0), 1025.0);
  for (double q : {0.01, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double value = h.ApproximateQuantile(q);
    EXPECT_GE(value, 1024.0) << "q=" << q;
    EXPECT_LE(value, h.Max()) << "q=" << q;
  }
}

// Regression: NaN reached std::log2 + an int cast (UB) and poisoned the
// exact moments. Non-finite samples are now dropped and counted.
TEST(HistogramTest, NonFiniteSamplesAreDroppedNotRecorded) {
  Histogram h;
  h.Add(2.0);
  h.Add(8.0);
  h.Add(std::nan(""));
  h.Add(std::numeric_limits<double>::infinity());
  h.Add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.DroppedCount(), 3u);
  EXPECT_DOUBLE_EQ(h.Min(), 2.0);
  EXPECT_DOUBLE_EQ(h.Max(), 8.0);
  EXPECT_DOUBLE_EQ(h.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 5.0);
  EXPECT_NEAR(h.StdDev(), 3.0, 1e-12);
  for (double q : {0.0, 0.5, 1.0}) {
    const double value = h.ApproximateQuantile(q);
    EXPECT_TRUE(std::isfinite(value)) << "q=" << q;
    EXPECT_LE(value, 8.0) << "q=" << q;
  }
}

TEST(HistogramTest, NanFirstSampleDoesNotPoisonLaterStats) {
  Histogram h;
  h.Add(std::nan(""));  // before any finite sample
  h.Add(4.0);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.DroppedCount(), 1u);
  EXPECT_DOUBLE_EQ(h.Min(), 4.0);
  EXPECT_DOUBLE_EQ(h.Max(), 4.0);
  EXPECT_DOUBLE_EQ(h.StdDev(), 0.0);
  EXPECT_FALSE(std::isnan(h.ApproximateQuantile(0.5)));
}

TEST(HistogramDeathTest, QuantileValidatesQ) {
  Histogram h;
  h.Add(1.0);
  EXPECT_DEATH((void)h.ApproximateQuantile(-0.1), "");
  EXPECT_DEATH((void)h.ApproximateQuantile(1.1), "");
}

}  // namespace
}  // namespace skimjoin
