// Round-trip tests for synopsis serialization: the deserialized sketch must
// be counter-for-counter identical, remain compatible with live sketches
// built from the same (config, seed), and support the ship-merge-join flow.

#include <sstream>
#include <utility>

#include "core/skimmed_sketch.h"
#include "gtest/gtest.h"
#include "sketch/agms_sketch.h"
#include "sketch/hash_sketch.h"
#include "util/random.h"

namespace skimjoin {
namespace {

TEST(HashSketchSerializationTest, RoundTripPreservesCounters) {
  auto sketch = *sketch::HashSketch::Create({5, 64}, 7);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    sketch.Update(rng.NextUint64Below(1000), 1);
  }
  std::stringstream buffer;
  ASSERT_TRUE(sketch.SerializeTo(buffer).ok());
  StatusOr<sketch::HashSketch> restored =
      sketch::HashSketch::DeserializeFrom(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_TRUE(restored->CompatibleWith(sketch));
  for (uint64_t t = 0; t < 5; ++t) {
    for (uint64_t b = 0; b < 64; ++b) {
      EXPECT_EQ(restored->Counter(t, b), sketch.Counter(t, b));
    }
  }
}

TEST(HashSketchSerializationTest, RejectsGarbageAndTruncation) {
  std::stringstream garbage("not a sketch at all");
  EXPECT_FALSE(sketch::HashSketch::DeserializeFrom(garbage).ok());

  auto sketch = *sketch::HashSketch::Create({3, 16}, 1);
  sketch.Update(5, 9);
  std::stringstream buffer;
  ASSERT_TRUE(sketch.SerializeTo(buffer).ok());
  std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_FALSE(sketch::HashSketch::DeserializeFrom(truncated).ok());
}

TEST(AgmsSketchSerializationTest, RoundTripPreservesCounters) {
  auto sketch = *sketch::AgmsSketch::Create({16, 5}, 3);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) sketch.Update(rng.NextUint64Below(100), 1);
  std::stringstream buffer;
  ASSERT_TRUE(sketch.SerializeTo(buffer).ok());
  StatusOr<sketch::AgmsSketch> restored =
      sketch::AgmsSketch::DeserializeFrom(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status();
  for (uint64_t i = 0; i < 16; ++i) {
    for (uint64_t j = 0; j < 5; ++j) {
      EXPECT_EQ(restored->counter(i, j), sketch.counter(i, j));
    }
  }
}

TEST(AgmsSketchSerializationTest, WrongTagRejected) {
  auto hash = *sketch::HashSketch::Create({3, 16}, 1);
  std::stringstream buffer;
  ASSERT_TRUE(hash.SerializeTo(buffer).ok());
  EXPECT_FALSE(sketch::AgmsSketch::DeserializeFrom(buffer).ok());
}

core::SkimmedSketchConfig SkimConfig(bool dyadic) {
  core::SkimmedSketchConfig config;
  config.domain_size = 1u << 10;
  config.num_tables = 5;
  config.num_buckets = 128;
  config.use_dyadic_skim = dyadic;
  config.dyadic_num_buckets = 32;
  config.threshold_scale = 2.5;
  config.recurse_slack = 0.4;
  return config;
}

TEST(SkimmedSketchSerializationTest, RoundTripNaive) {
  auto sketch = *core::SkimmedSketch::Create(SkimConfig(false), 11);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    sketch.Update(rng.NextUint64Below(1u << 10), 1);
  }
  std::stringstream buffer;
  ASSERT_TRUE(sketch.SerializeTo(buffer).ok());
  StatusOr<core::SkimmedSketch> restored =
      core::SkimmedSketch::DeserializeFrom(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_TRUE(restored->CompatibleWith(sketch));
  EXPECT_EQ(restored->config().threshold_scale, 2.5);
  for (uint64_t v = 0; v < (1u << 10); ++v) {
    EXPECT_EQ(restored->EstimatePointFrequency(v),
              sketch.EstimatePointFrequency(v));
  }
}

TEST(SkimmedSketchSerializationTest, RoundTripWithDyadicLevels) {
  auto sketch = *core::SkimmedSketch::Create(SkimConfig(true), 13);
  sketch.Update(77, 900);
  sketch.Update(901, 300);
  std::stringstream buffer;
  ASSERT_TRUE(sketch.SerializeTo(buffer).ok());
  StatusOr<core::SkimmedSketch> restored =
      core::SkimmedSketch::DeserializeFrom(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status();
  // The dyadic candidate search must work on the restored sketch.
  const core::DenseFrequencies hh = restored->HeavyHitters(200);
  EXPECT_GT(core::LookupDense(hh, 77), 800);
  EXPECT_GT(core::LookupDense(hh, 901), 200);
}

TEST(SkimmedSketchSerializationTest, ShipMergeJoinFlow) {
  // Two "sites" sketch their local streams; a coordinator deserializes,
  // merges per stream, and estimates the global join.
  const auto config = SkimConfig(false);
  auto site1_f = *core::SkimmedSketch::Create(config, 99);
  auto site2_f = *core::SkimmedSketch::Create(config, 99);
  auto g = *core::SkimmedSketch::Create(config, 99);
  for (int i = 0; i < 300; ++i) site1_f.Update(5, 1);
  for (int i = 0; i < 200; ++i) site2_f.Update(5, 1);
  for (int i = 0; i < 10; ++i) g.Update(5, 1);

  std::stringstream wire1, wire2;
  ASSERT_TRUE(site1_f.SerializeTo(wire1).ok());
  ASSERT_TRUE(site2_f.SerializeTo(wire2).ok());
  auto merged = *core::SkimmedSketch::DeserializeFrom(wire1);
  auto part2 = *core::SkimmedSketch::DeserializeFrom(wire2);
  merged.Merge(part2);

  StatusOr<double> join = core::SkimmedSketch::EstimateJoinSize(merged, g);
  ASSERT_TRUE(join.ok());
  EXPECT_DOUBLE_EQ(*join, 5000.0);
}

TEST(SkimmedSketchSerializationTest, HeaderLevelMismatchRejected) {
  auto sketch = *core::SkimmedSketch::Create(SkimConfig(false), 1);
  std::stringstream buffer;
  ASSERT_TRUE(sketch.SerializeTo(buffer).ok());
  // Corrupt the embedded level-0 record's seed field by rebuilding the
  // stream with a different header line.
  std::string text = buffer.str();
  const auto pos = text.find("skimjoin.hash_sketch v2\n");
  ASSERT_NE(pos, std::string::npos);
  // Replace the level-0 record with one whose seed differs.
  auto other = *sketch::HashSketch::Create({5, 128}, 999);
  std::stringstream other_buffer;
  ASSERT_TRUE(other.SerializeTo(other_buffer).ok());
  std::stringstream corrupted(text.substr(0, pos) + other_buffer.str());
  EXPECT_FALSE(core::SkimmedSketch::DeserializeFrom(corrupted).ok());
}

}  // namespace
}  // namespace skimjoin
