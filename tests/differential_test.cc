// Randomized differential testing: long random update/delete sequences are
// applied simultaneously to the exact reference (FrequencyVector) and to
// every synopsis, then the exact linear identities and the probabilistic
// envelopes are checked. Parameterized over seeds so each instance is an
// independent adversarial run.

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <utility>
#include <vector>

#include "core/skimmed_sketch.h"
#include "gtest/gtest.h"
#include "sketch/agms_sketch.h"
#include "sketch/count_min_sketch.h"
#include "sketch/hash_sketch.h"
#include "stream/frequency_vector.h"
#include "util/random.h"

namespace skimjoin {
namespace {

constexpr uint64_t kDomain = 1u << 10;

// A random mixed workload: bursts of inserts, deletes of previously
// inserted values, heavy values, and weighted updates.
std::vector<stream::StreamElement> RandomWorkload(uint64_t seed,
                                                  int operations) {
  Rng rng(seed);
  std::vector<stream::StreamElement> elements;
  std::vector<uint64_t> live;
  for (int i = 0; i < operations; ++i) {
    const uint64_t dice = rng.NextUint64Below(100);
    if (dice < 55 || live.empty()) {
      const uint64_t value = rng.NextUint64Below(kDomain);
      elements.push_back(stream::Insert(value));
      live.push_back(value);
    } else if (dice < 80) {
      const uint64_t index = rng.NextUint64Below(live.size());
      elements.push_back(stream::Delete(live[index]));
      live[index] = live.back();
      live.pop_back();
    } else if (dice < 95) {
      // Weighted burst on a hot value.
      const uint64_t value = rng.NextUint64Below(16);
      elements.push_back(stream::Weighted(
          value, 1 + static_cast<int64_t>(rng.NextUint64Below(50))));
    } else {
      // Weighted retraction.
      const uint64_t value = rng.NextUint64Below(16);
      elements.push_back(stream::Weighted(
          value, -static_cast<int64_t>(rng.NextUint64Below(20))));
    }
  }
  return elements;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, SkimmedSketchAgainstExactReference) {
  const uint64_t seed = GetParam();
  const auto workload_f = RandomWorkload(seed * 2 + 1, 6000);
  const auto workload_g = RandomWorkload(seed * 2 + 2, 6000);

  stream::FrequencyVector exact_f(kDomain);
  stream::FrequencyVector exact_g(kDomain);
  core::SkimmedSketchConfig config;
  config.domain_size = kDomain;
  config.num_tables = 7;
  config.num_buckets = 512;
  config.use_dyadic_skim = (seed % 2 == 0);  // alternate both skim paths
  auto sf = *core::SkimmedSketch::Create(config, seed + 100);
  auto sg = *core::SkimmedSketch::Create(config, seed + 100);

  for (const auto& e : workload_f) {
    exact_f.Apply(e);
    sf.Update(e);
  }
  for (const auto& e : workload_g) {
    exact_g.Apply(e);
    sg.Update(e);
  }

  const double exact = static_cast<double>(JoinSize(exact_f, exact_g));
  StatusOr<double> estimate = core::SkimmedSketch::EstimateJoinSize(sf, sg);
  ASSERT_TRUE(estimate.ok());
  // Theorem 5 envelope with generous constant.
  const double n_f = std::abs(static_cast<double>(exact_f.TotalCount())) +
                     static_cast<double>(workload_f.size());
  const double n_g = std::abs(static_cast<double>(exact_g.TotalCount())) +
                     static_cast<double>(workload_g.size());
  const double envelope = 8.0 * n_f * n_g / 512.0;
  EXPECT_NEAR(*estimate, exact, envelope) << "seed " << seed;
}

TEST_P(DifferentialTest, SerializationIsLossless) {
  const uint64_t seed = GetParam();
  const auto workload = RandomWorkload(seed + 7, 3000);
  core::SkimmedSketchConfig config;
  config.domain_size = kDomain;
  config.num_buckets = 128;
  config.use_dyadic_skim = true;
  auto sketch = *core::SkimmedSketch::Create(config, seed);
  for (const auto& e : workload) sketch.Update(e);

  std::stringstream wire;
  ASSERT_TRUE(sketch.SerializeTo(wire).ok());
  auto restored = *core::SkimmedSketch::DeserializeFrom(wire);
  for (uint64_t v = 0; v < kDomain; v += 7) {
    ASSERT_EQ(restored.EstimatePointFrequency(v),
              sketch.EstimatePointFrequency(v));
  }
}

TEST_P(DifferentialTest, MergeOfSplitStreamMatchesWholeStream) {
  const uint64_t seed = GetParam();
  const auto workload = RandomWorkload(seed + 13, 4000);
  core::SkimmedSketchConfig config;
  config.domain_size = kDomain;
  config.num_buckets = 128;
  config.use_dyadic_skim = true;
  auto whole = *core::SkimmedSketch::Create(config, seed);
  auto part1 = *core::SkimmedSketch::Create(config, seed);
  auto part2 = *core::SkimmedSketch::Create(config, seed);
  for (size_t i = 0; i < workload.size(); ++i) {
    whole.Update(workload[i]);
    (i % 2 == 0 ? part1 : part2).Update(workload[i]);
  }
  part1.Merge(part2);
  for (uint64_t v = 0; v < kDomain; v += 11) {
    ASSERT_EQ(part1.EstimatePointFrequency(v),
              whole.EstimatePointFrequency(v));
  }
}

TEST_P(DifferentialTest, AgmsAndHashSketchAgreeWithinEnvelopes) {
  const uint64_t seed = GetParam();
  const auto workload_f = RandomWorkload(seed * 3 + 1, 5000);
  const auto workload_g = RandomWorkload(seed * 3 + 2, 5000);
  stream::FrequencyVector exact_f(kDomain);
  stream::FrequencyVector exact_g(kDomain);
  auto af = *sketch::AgmsSketch::Create({128, 7}, seed);
  auto ag = *sketch::AgmsSketch::Create({128, 7}, seed);
  auto hf = *sketch::HashSketch::Create({7, 512}, seed);
  auto hg = *sketch::HashSketch::Create({7, 512}, seed);
  for (const auto& e : workload_f) {
    exact_f.Apply(e);
    af.Update(e.value, e.weight);
    hf.Update(e.value, e.weight);
  }
  for (const auto& e : workload_g) {
    exact_g.Apply(e);
    ag.Update(e.value, e.weight);
    hg.Update(e.value, e.weight);
  }
  const double exact = static_cast<double>(JoinSize(exact_f, exact_g));
  const double f2_f = static_cast<double>(exact_f.SelfJoinSize());
  const double f2_g = static_cast<double>(exact_g.SelfJoinSize());
  const double agms_envelope = 8.0 * std::sqrt(f2_f * f2_g / 128.0);
  const double hash_envelope = 8.0 * std::sqrt(f2_f * f2_g / 512.0);
  EXPECT_NEAR(*sketch::AgmsSketch::EstimateJoinSize(af, ag), exact,
              agms_envelope)
      << "seed " << seed;
  EXPECT_NEAR(*sketch::HashSketch::EstimateJoinSize(hf, hg), exact,
              hash_envelope)
      << "seed " << seed;
}

TEST_P(DifferentialTest, CountMinPointEstimatesUpperBoundNetPositives) {
  const uint64_t seed = GetParam();
  // Insert-only slice of the workload (Count-Min's one-sided guarantee only
  // holds without deletes).
  Rng rng(seed + 50);
  stream::FrequencyVector exact(kDomain);
  auto cm = *sketch::CountMinSketch::Create({5, 256}, seed);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t value = rng.NextUint64Below(kDomain);
    exact.Add(value, 1);
    cm.Update(value, 1);
  }
  for (uint64_t v = 0; v < kDomain; v += 3) {
    ASSERT_GE(cm.PointEstimate(v), exact.Get(v)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace skimjoin
