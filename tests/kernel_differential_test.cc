// Differential proof that every fast-path kernel combination (fastmod,
// plan cache, blocked batches — DESIGN.md §10) is bit-identical to the
// scalar reference path: same counters, same serialized bytes, for every
// sketch family, across randomized shapes, seeds, batch splits, deletes
// and out-of-domain values.

#include <cstdint>
#include <functional>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/skimmed_sketch.h"
#include "gtest/gtest.h"
#include "sketch/agms_sketch.h"
#include "sketch/count_min_sketch.h"
#include "sketch/hash_sketch.h"
#include "sketch/kernel_options.h"
#include "stream/stream_element.h"
#include "util/random.h"

namespace skimjoin {
namespace {

using sketch::KernelOptions;
using stream::StreamElement;

/// The kernel combinations under test: each fast path alone, all together,
/// and a stress shape (tiny blocks, tiny cache) that forces block remainders
/// and constant cache eviction.
std::vector<std::pair<std::string, KernelOptions>> KernelModes() {
  std::vector<std::pair<std::string, KernelOptions>> modes;
  modes.emplace_back("scalar", KernelOptions::Scalar());

  KernelOptions fastmod = KernelOptions::Scalar();
  fastmod.use_fastmod = true;
  modes.emplace_back("fastmod", fastmod);

  KernelOptions cache = KernelOptions::Scalar();
  cache.use_plan_cache = true;
  modes.emplace_back("cache", cache);

  KernelOptions blocked = KernelOptions::Scalar();
  blocked.use_blocked_batch = true;
  modes.emplace_back("blocked", blocked);

  KernelOptions simd = KernelOptions::Scalar();
  simd.use_blocked_batch = true;  // the SIMD path lives in the blocked kernel
  simd.use_simd = true;
  modes.emplace_back("simd", simd);

  KernelOptions simd_cache = simd;
  simd_cache.use_plan_cache = true;  // Lookup/Insert miss batching
  modes.emplace_back("simd-cache", simd_cache);

  // All-on (the production default) and the stress shape both include the
  // SIMD dispatch; block size 3 forces every vector kernel through its
  // sub-lane-width tail path on every block.
  modes.emplace_back("all", KernelOptions{});

  KernelOptions stress;
  stress.batch_block_size = 3;
  stress.plan_cache_slots = 4;
  modes.emplace_back("stress", stress);

  KernelOptions stress_scalar = stress;
  stress_scalar.use_simd = false;
  modes.emplace_back("stress-nosimd", stress_scalar);
  return modes;
}

/// A randomized workload: Zipf-ish skew (hot values repeat, exercising the
/// plan cache), signed weights including deletes, and — when requested —
/// values beyond `domain` to hit the drop path.
std::vector<StreamElement> MakeWorkload(Rng* rng, uint64_t domain,
                                        uint64_t num_elements,
                                        bool include_out_of_domain) {
  std::vector<StreamElement> elements;
  elements.reserve(num_elements);
  const uint64_t hot_set = 1 + rng->NextUint64Below(16);
  for (uint64_t i = 0; i < num_elements; ++i) {
    uint64_t value;
    const uint64_t roll = rng->NextUint64Below(100);
    if (roll < 50) {
      value = rng->NextUint64Below(hot_set);  // hot keys: cache hits
    } else if (include_out_of_domain && roll < 55) {
      value = domain + rng->NextUint64Below(1 + domain);  // dropped
    } else {
      value = rng->NextUint64Below(domain);  // cold tail: cache misses
    }
    int64_t weight = 1;
    const uint64_t wroll = rng->NextUint64Below(10);
    if (wroll < 2) {
      weight = -1;  // delete
    } else if (wroll < 4) {
      weight = 1 + static_cast<int64_t>(rng->NextUint64Below(1000));
    }
    elements.push_back({value, weight});
  }
  return elements;
}

/// Feeds `elements` through a mix of scalar Update calls and UpdateBatch
/// calls of randomized sizes (including empty and size-1 batches, and sizes
/// that are not multiples of any block size). `split_rng` must be seeded
/// identically across modes so every mode sees the same call sequence.
template <typename Sketch>
void ApplyWorkload(Sketch* sketch, std::span<const StreamElement> elements,
                   Rng* split_rng) {
  size_t pos = 0;
  while (pos < elements.size()) {
    const uint64_t roll = split_rng->NextUint64Below(10);
    if (roll == 0) {
      sketch->Update(elements[pos]);
      ++pos;
    } else {
      const size_t max_batch = elements.size() - pos;
      size_t batch = split_rng->NextUint64Below(257);
      if (batch > max_batch) batch = max_batch;
      sketch->UpdateBatch(elements.subspan(pos, batch));
      pos += batch;
    }
  }
  sketch->UpdateBatch({});  // empty batch must be a no-op in every mode
}

template <typename Sketch>
std::string Serialize(const Sketch& sketch) {
  std::ostringstream out;
  const Status status = sketch.SerializeTo(out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return std::move(out).str();
}

/// Runs `make_sketch()` once per kernel mode over the same workload and
/// asserts every mode serializes to exactly the scalar reference bytes.
template <typename Sketch>
void ExpectAllModesBitIdentical(
    const std::function<Sketch()>& make_sketch,
    std::span<const StreamElement> elements, uint64_t split_seed,
    const std::string& context) {
  std::string reference;
  std::string reference_mode;
  for (const auto& [name, options] : KernelModes()) {
    Sketch sketch = make_sketch();
    sketch.SetKernelOptions(options);
    Rng split_rng(split_seed);
    ApplyWorkload(&sketch, elements, &split_rng);
    const std::string bytes = Serialize(sketch);
    if (reference_mode.empty()) {
      reference = bytes;
      reference_mode = name;
      continue;
    }
    ASSERT_EQ(bytes, reference)
        << context << ": mode '" << name << "' diverged from '"
        << reference_mode << "'";
  }
}

TEST(KernelDifferentialTest, HashSketchAllModesBitIdentical) {
  Rng rng(101);
  for (int trial = 0; trial < 8; ++trial) {
    sketch::HashSketchConfig config;
    config.num_tables = 1 + rng.NextUint64Below(9);
    config.num_buckets = 1 + rng.NextUint64Below(700);
    const uint64_t seed = rng.NextUint64();
    const uint64_t domain = 1 + rng.NextUint64Below(1u << 14);
    const auto elements =
        MakeWorkload(&rng, domain, 2000 + rng.NextUint64Below(3000),
                     /*include_out_of_domain=*/false);
    const uint64_t split_seed = rng.NextUint64();
    ExpectAllModesBitIdentical<sketch::HashSketch>(
        [&] {
          auto sketch = sketch::HashSketch::Create(config, seed);
          EXPECT_TRUE(sketch.ok());
          return *std::move(sketch);
        },
        elements, split_seed,
        "HashSketch trial " + std::to_string(trial) + " tables=" +
            std::to_string(config.num_tables) + " buckets=" +
            std::to_string(config.num_buckets));
  }
}

TEST(KernelDifferentialTest, CountMinSketchAllModesBitIdentical) {
  Rng rng(202);
  for (int trial = 0; trial < 8; ++trial) {
    sketch::CountMinConfig config;
    config.num_tables = 1 + rng.NextUint64Below(7);
    config.num_buckets = 1 + rng.NextUint64Below(500);
    const uint64_t seed = rng.NextUint64();
    const uint64_t domain = 1 + rng.NextUint64Below(1u << 14);
    const auto elements =
        MakeWorkload(&rng, domain, 2000 + rng.NextUint64Below(3000),
                     /*include_out_of_domain=*/false);
    const uint64_t split_seed = rng.NextUint64();
    ExpectAllModesBitIdentical<sketch::CountMinSketch>(
        [&] {
          auto sketch = sketch::CountMinSketch::Create(config, seed);
          EXPECT_TRUE(sketch.ok());
          return *std::move(sketch);
        },
        elements, split_seed,
        "CountMinSketch trial " + std::to_string(trial) + " tables=" +
            std::to_string(config.num_tables) + " buckets=" +
            std::to_string(config.num_buckets));
  }
}

TEST(KernelDifferentialTest, AgmsSketchAllModesBitIdentical) {
  Rng rng(303);
  for (int trial = 0; trial < 6; ++trial) {
    sketch::AgmsConfig config;
    config.num_means = 1 + rng.NextUint64Below(48);
    config.num_medians = 1 + rng.NextUint64Below(7);
    const uint64_t seed = rng.NextUint64();
    const uint64_t domain = 1 + rng.NextUint64Below(1u << 12);
    const auto elements =
        MakeWorkload(&rng, domain, 1000 + rng.NextUint64Below(2000),
                     /*include_out_of_domain=*/false);
    const uint64_t split_seed = rng.NextUint64();
    ExpectAllModesBitIdentical<sketch::AgmsSketch>(
        [&] {
          auto sketch = sketch::AgmsSketch::Create(config, seed);
          EXPECT_TRUE(sketch.ok());
          return *std::move(sketch);
        },
        elements, split_seed,
        "AgmsSketch trial " + std::to_string(trial) + " means=" +
            std::to_string(config.num_means) + " medians=" +
            std::to_string(config.num_medians));
  }
}

TEST(KernelDifferentialTest, SkimmedSketchAllModesBitIdentical) {
  Rng rng(404);
  for (int trial = 0; trial < 5; ++trial) {
    core::SkimmedSketchConfig config;
    config.domain_size = uint64_t{1} << (6 + rng.NextUint64Below(8));
    config.num_tables = 1 + rng.NextUint64Below(7);
    config.num_buckets = 1 + rng.NextUint64Below(300);
    config.use_dyadic_skim = (trial % 2 == 0);  // cover both layouts
    const uint64_t seed = rng.NextUint64();
    // Out-of-domain values exercise the drop path in every kernel; the
    // dropped-update tally must agree across modes as well (it is part of
    // observable behaviour even though it is not serialized).
    const auto elements =
        MakeWorkload(&rng, config.domain_size,
                     2000 + rng.NextUint64Below(3000),
                     /*include_out_of_domain=*/true);
    const uint64_t split_seed = rng.NextUint64();

    std::string reference;
    std::string reference_mode;
    uint64_t reference_dropped = 0;
    for (const auto& [name, options] : KernelModes()) {
      auto created = core::SkimmedSketch::Create(config, seed);
      ASSERT_TRUE(created.ok()) << created.status().ToString();
      core::SkimmedSketch sketch = *std::move(created);
      sketch.SetKernelOptions(options);
      Rng split_rng(split_seed);
      ApplyWorkload(&sketch, std::span<const StreamElement>(elements),
                    &split_rng);
      const std::string bytes = Serialize(sketch);
      const std::string context =
          "SkimmedSketch trial " + std::to_string(trial) +
          " dyadic=" + std::to_string(config.use_dyadic_skim);
      if (reference_mode.empty()) {
        reference = bytes;
        reference_mode = name;
        reference_dropped = sketch.dropped_updates();
        continue;
      }
      ASSERT_EQ(bytes, reference)
          << context << ": mode '" << name << "' diverged from '"
          << reference_mode << "'";
      ASSERT_EQ(sketch.dropped_updates(), reference_dropped)
          << context << ": drop count of mode '" << name << "' diverged";
    }
  }
}

// Toggling kernels mid-stream must not disturb accumulated counters: the
// cache is rebuilt but the counter array carries over untouched.
TEST(KernelDifferentialTest, SwitchingModesMidStreamPreservesCounters) {
  Rng rng(505);
  sketch::HashSketchConfig config;
  config.num_tables = 5;
  config.num_buckets = 123;
  const auto elements = MakeWorkload(&rng, /*domain=*/4096, 6000,
                                     /*include_out_of_domain=*/false);
  const auto half = elements.size() / 2;

  auto reference = sketch::HashSketch::Create(config, 99);
  ASSERT_TRUE(reference.ok());
  reference->SetKernelOptions(KernelOptions::Scalar());
  reference->UpdateBatch(std::span<const StreamElement>(elements));

  auto switched = sketch::HashSketch::Create(config, 99);
  ASSERT_TRUE(switched.ok());
  switched->SetKernelOptions(KernelOptions{});
  switched->UpdateBatch(std::span<const StreamElement>(elements).first(half));
  switched->SetKernelOptions(KernelOptions::Scalar());
  switched->UpdateBatch(
      std::span<const StreamElement>(elements).subspan(half));

  EXPECT_EQ(Serialize(*switched), Serialize(*reference));
}

// The plan cache is derived state: Reset() must clear counters while cached
// plans stay valid, and subsequent updates must still match scalar.
TEST(KernelDifferentialTest, ResetThenReuseStaysBitIdentical) {
  Rng rng(606);
  sketch::HashSketchConfig config;
  config.num_tables = 7;
  config.num_buckets = 257;
  const auto warmup = MakeWorkload(&rng, 2048, 3000, false);
  const auto after = MakeWorkload(&rng, 2048, 3000, false);

  auto fast = sketch::HashSketch::Create(config, 7);
  ASSERT_TRUE(fast.ok());
  fast->UpdateBatch(std::span<const StreamElement>(warmup));
  fast->Reset();
  fast->UpdateBatch(std::span<const StreamElement>(after));

  auto scalar = sketch::HashSketch::Create(config, 7);
  ASSERT_TRUE(scalar.ok());
  scalar->SetKernelOptions(KernelOptions::Scalar());
  scalar->UpdateBatch(std::span<const StreamElement>(after));

  EXPECT_EQ(Serialize(*fast), Serialize(*scalar));
}

}  // namespace
}  // namespace skimjoin
