#include "query/engine.h"

#include <utility>

#include "gtest/gtest.h"
#include "stream/zipf.h"

namespace skimjoin {
namespace query {
namespace {

StreamSpec Packets() { return {"packets", 1u << 10}; }
StreamSpec Flows() { return {"flows", 1u << 10}; }

JoinQuerySpec BasicJoinSpec() {
  JoinQuerySpec spec;
  spec.left_stream = "packets";
  spec.right_stream = "flows";
  spec.estimator.kind = core::EstimatorKind::kSkimmedSketch;
  spec.estimator.space_counters = 1024;
  return spec;
}

TEST(EngineTest, RegisterStreamValidates) {
  Engine engine;
  EXPECT_FALSE(engine.RegisterStream({"", 16}).ok());
  EXPECT_FALSE(engine.RegisterStream({"x", 1}).ok());
  ASSERT_TRUE(engine.RegisterStream({"x", 16}).ok());
  StatusOr<StreamId> duplicate = engine.RegisterStream({"x", 16});
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(engine.num_streams(), 1u);
}

TEST(EngineTest, JoinQueryRequiresRegisteredStreams) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  StatusOr<QueryId> query = engine.AddJoinQuery(BasicJoinSpec(), 1);
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, JoinQueryRequiresMatchingDomains) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  ASSERT_TRUE(engine.RegisterStream({"flows", 1u << 12}).ok());
  StatusOr<QueryId> query = engine.AddJoinQuery(BasicJoinSpec(), 1);
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, UpdateValidatesStreamAndDomain) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  EXPECT_EQ(engine.Update("nope", {1, 1, 0}).code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.Update("packets", {1u << 10, 1, 0}).code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(engine.Update("packets", {7, 1, 0}).ok());
  StatusOr<int64_t> count = engine.StreamElementCount("packets");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1);
}

TEST(EngineTest, CountJoinTracksExactOnSmallStreams) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  ASSERT_TRUE(engine.RegisterStream(Flows()).ok());
  StatusOr<QueryId> query = engine.AddJoinQuery(BasicJoinSpec(), 42);
  ASSERT_TRUE(query.ok()) << query.status();

  // packets: value 5 x100; flows: value 5 x30 and value 6 x999 (no overlap).
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.Update("packets", {5, 1, 0}).ok());
  }
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(engine.Update("flows", {5, 1, 0}).ok());
  }
  for (int i = 0; i < 999; ++i) {
    ASSERT_TRUE(engine.Update("flows", {6, 1, 0}).ok());
  }
  StatusOr<double> answer = engine.AnswerJoin(*query);
  ASSERT_TRUE(answer.ok());
  EXPECT_NEAR(*answer, 3000.0, 300.0);
}

TEST(EngineTest, DeletesFlowThroughToSynopses) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  ASSERT_TRUE(engine.RegisterStream(Flows()).ok());
  StatusOr<QueryId> query = engine.AddJoinQuery(BasicJoinSpec(), 3);
  ASSERT_TRUE(query.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine.Update("packets", {9, 1, 0}).ok());
    ASSERT_TRUE(engine.Update("flows", {9, 1, 0}).ok());
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine.Update("packets", {9, -1, 0}).ok());
  }
  StatusOr<double> answer = engine.AnswerJoin(*query);
  ASSERT_TRUE(answer.ok());
  EXPECT_DOUBLE_EQ(*answer, 0.0);
}

TEST(EngineTest, SelfJoinQuery) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  SelfJoinQuerySpec spec;
  spec.stream = "packets";
  spec.estimator.kind = core::EstimatorKind::kAgms;
  spec.estimator.space_counters = 512;
  StatusOr<QueryId> query = engine.AddSelfJoinQuery(spec, 5);
  ASSERT_TRUE(query.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(engine.Update("packets", {3, 1, 0}).ok());
  }
  StatusOr<double> answer = engine.AnswerJoin(*query);
  ASSERT_TRUE(answer.ok());
  EXPECT_NEAR(*answer, 1600.0, 160.0);
}

TEST(EngineTest, SumAggregateUsesMeasureWeights) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  ASSERT_TRUE(engine.RegisterStream(Flows()).ok());
  JoinQuerySpec spec = BasicJoinSpec();
  spec.left_input = AggregateInput::kMeasure;  // SUM over packets' measure
  StatusOr<QueryId> query = engine.AddJoinQuery(spec, 6);
  ASSERT_TRUE(query.ok());
  // Two packets with value 4 carrying byte counts 100 and 250; three flows
  // with value 4. SUM = (100 + 250) * 3 = 1050.
  ASSERT_TRUE(engine.Update("packets", {4, 1, 100}).ok());
  ASSERT_TRUE(engine.Update("packets", {4, 1, 250}).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine.Update("flows", {4, 1, 0}).ok());
  }
  StatusOr<double> answer = engine.AnswerJoin(*query);
  ASSERT_TRUE(answer.ok());
  EXPECT_NEAR(*answer, 1050.0, 110.0);
}

TEST(EngineTest, PredicatesFilterUpdates) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  ASSERT_TRUE(engine.RegisterStream(Flows()).ok());
  JoinQuerySpec spec = BasicJoinSpec();
  spec.left_predicate = RangePredicate{0, 99};  // drop packet values >= 100
  StatusOr<QueryId> query = engine.AddJoinQuery(spec, 7);
  ASSERT_TRUE(query.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.Update("packets", {50, 1, 0}).ok());
    ASSERT_TRUE(engine.Update("packets", {500, 1, 0}).ok());
    ASSERT_TRUE(engine.Update("flows", {50, 1, 0}).ok());
    ASSERT_TRUE(engine.Update("flows", {500, 1, 0}).ok());
  }
  StatusOr<double> answer = engine.AnswerJoin(*query);
  ASSERT_TRUE(answer.ok());
  // Without the predicate the join is 800; with it, only value 50 matches.
  EXPECT_NEAR(*answer, 400.0, 40.0);
}

TEST(EngineTest, MultipleQueriesOverSameStream) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  ASSERT_TRUE(engine.RegisterStream(Flows()).ok());
  StatusOr<QueryId> q1 = engine.AddJoinQuery(BasicJoinSpec(), 8);
  JoinQuerySpec agms_spec = BasicJoinSpec();
  agms_spec.estimator.kind = core::EstimatorKind::kAgms;
  StatusOr<QueryId> q2 = engine.AddJoinQuery(agms_spec, 9);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(engine.num_queries(), 2u);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(engine.Update("packets", {8, 1, 0}).ok());
    ASSERT_TRUE(engine.Update("flows", {8, 1, 0}).ok());
  }
  StatusOr<double> a1 = engine.AnswerJoin(*q1);
  StatusOr<double> a2 = engine.AnswerJoin(*q2);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_NEAR(*a1, 3600.0, 360.0);
  EXPECT_NEAR(*a2, 3600.0, 360.0);
}

TEST(EngineTest, FrequencyQueryAnswersPointAndHeavyHitters) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  FrequencyQuerySpec spec;
  spec.stream = "packets";
  spec.space_counters = 4096;
  spec.use_dyadic = true;
  StatusOr<QueryId> query = engine.AddFrequencyQuery(spec, 10);
  ASSERT_TRUE(query.ok()) << query.status();
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(engine.Update("packets", {123, 1, 0}).ok());
  }
  for (uint64_t v = 0; v < 64; ++v) {
    ASSERT_TRUE(engine.Update("packets", {v, 1, 0}).ok());
  }
  StatusOr<int64_t> point = engine.AnswerPointFrequency(*query, 123);
  ASSERT_TRUE(point.ok());
  EXPECT_NEAR(*point, 501, 50);
  StatusOr<core::DenseFrequencies> hh = engine.AnswerHeavyHitters(*query, 100);
  ASSERT_TRUE(hh.ok());
  EXPECT_GT(core::LookupDense(*hh, 123), 400);
}

TEST(EngineTest, DistinctCountQueryTracksCardinality) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  DistinctCountQuerySpec spec;
  spec.stream = "packets";
  spec.num_maps = 256;
  StatusOr<QueryId> query = engine.AddDistinctCountQuery(spec, 13);
  ASSERT_TRUE(query.ok()) << query.status();
  // 600 distinct values, each seen multiple times.
  for (int rep = 0; rep < 3; ++rep) {
    for (uint64_t v = 0; v < 600; ++v) {
      ASSERT_TRUE(engine.Update("packets", {v, 1, 0}).ok());
    }
  }
  StatusOr<double> distinct = engine.AnswerDistinctCount(*query);
  ASSERT_TRUE(distinct.ok());
  EXPECT_GT(*distinct, 300.0);
  EXPECT_LT(*distinct, 1200.0);
  EXPECT_EQ(engine.AnswerDistinctCount(9999).status().code(),
            StatusCode::kNotFound);
}

TEST(EngineTest, DistinctCountQueryRequiresKnownStream) {
  Engine engine;
  DistinctCountQuerySpec spec;
  spec.stream = "ghost";
  EXPECT_EQ(engine.AddDistinctCountQuery(spec, 1).status().code(),
            StatusCode::kNotFound);
}

TEST(EngineTest, DistinctCountHonorsPredicate) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  DistinctCountQuerySpec spec;
  spec.stream = "packets";
  spec.num_maps = 256;
  spec.predicate = RangePredicate{0, 99};
  StatusOr<QueryId> query = engine.AddDistinctCountQuery(spec, 14);
  ASSERT_TRUE(query.ok());
  for (uint64_t v = 0; v < 1000; ++v) {
    ASSERT_TRUE(engine.Update("packets", {v, 1, 0}).ok());
  }
  StatusOr<double> distinct = engine.AnswerDistinctCount(*query);
  ASSERT_TRUE(distinct.ok());
  // Only the 100 in-range values count; the FM floor is ~num_maps/phi for
  // tiny cardinalities, so just bound it well below 1000.
  EXPECT_LT(*distinct, 500.0);
}

TEST(EngineTest, TopKQueryTracksHeavyValues) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  TopKQuerySpec spec;
  spec.stream = "packets";
  spec.k = 2;
  StatusOr<QueryId> query = engine.AddTopKQuery(spec, 15);
  ASSERT_TRUE(query.ok()) << query.status();
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(engine.Update("packets", {5, 1, 0}).ok());
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(engine.Update("packets", {9, 1, 0}).ok());
  }
  ASSERT_TRUE(engine.Update("packets", {100, 1, 0}).ok());
  auto top = engine.AnswerTopK(*query);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0].first, 5u);
  EXPECT_EQ((*top)[1].first, 9u);
  EXPECT_EQ(engine.AnswerTopK(12345).status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, QuantileQueryAnswersMedian) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  QuantileQuerySpec spec;
  spec.stream = "packets";
  spec.epsilon = 0.05;
  StatusOr<QueryId> query = engine.AddQuantileQuery(spec);
  ASSERT_TRUE(query.ok()) << query.status();
  for (uint64_t v = 0; v < 1000; ++v) {
    ASSERT_TRUE(engine.Update("packets", {v, 1, 0}).ok());
  }
  StatusOr<uint64_t> median = engine.AnswerQuantile(*query, 0.5);
  ASSERT_TRUE(median.ok());
  EXPECT_NEAR(static_cast<double>(*median), 500.0, 110.0);
  EXPECT_EQ(engine.AnswerQuantile(999, 0.5).status().code(),
            StatusCode::kNotFound);
}

TEST(EngineTest, QuantileQueryIgnoresDeletes) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  QuantileQuerySpec spec;
  spec.stream = "packets";
  StatusOr<QueryId> query = engine.AddQuantileQuery(spec);
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(engine.Update("packets", {7, 1, 0}).ok());
  ASSERT_TRUE(engine.Update("packets", {7, -1, 0}).ok());  // ignored by GK
  StatusOr<uint64_t> answer = engine.AnswerQuantile(*query, 0.5);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(*answer, 7u);
}

TEST(EngineTest, RangeSumQueryTracksRangeMass) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  RangeSumQuerySpec spec;
  spec.stream = "packets";
  spec.coefficient_budget = 128;
  StatusOr<QueryId> query = engine.AddRangeSumQuery(spec);
  ASSERT_TRUE(query.ok()) << query.status();
  for (uint64_t v = 100; v < 200; ++v) {
    ASSERT_TRUE(engine.Update("packets", {v, 3, 0}).ok());
  }
  StatusOr<double> in_range = engine.AnswerRangeSum(*query, 100, 199);
  StatusOr<double> outside = engine.AnswerRangeSum(*query, 500, 600);
  ASSERT_TRUE(in_range.ok());
  ASSERT_TRUE(outside.ok());
  EXPECT_NEAR(*in_range, 300.0, 30.0);
  EXPECT_NEAR(*outside, 0.0, 30.0);
  EXPECT_EQ(engine.AnswerRangeSum(4242, 0, 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(engine.AnswerRangeSum(*query, 0, 1u << 12).ok());
}

TEST(EngineTest, RangeSumQueryValidates) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  RangeSumQuerySpec spec;
  spec.stream = "ghost";
  EXPECT_EQ(engine.AddRangeSumQuery(spec).status().code(),
            StatusCode::kNotFound);
  spec.stream = "packets";
  spec.coefficient_budget = 0;
  EXPECT_EQ(engine.AddRangeSumQuery(spec).status().code(),
            StatusCode::kInvalidArgument);
  // Non-power-of-two domains are rejected by the wavelet synopsis.
  ASSERT_TRUE(engine.RegisterStream({"odd", 1000}).ok());
  RangeSumQuerySpec odd_spec;
  odd_spec.stream = "odd";
  EXPECT_FALSE(engine.AddRangeSumQuery(odd_spec).ok());
}

TEST(EngineTest, RangeSumQueryCompressesUnderChurn) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  RangeSumQuerySpec spec;
  spec.stream = "packets";
  spec.coefficient_budget = 16;
  StatusOr<QueryId> query = engine.AddRangeSumQuery(spec);
  ASSERT_TRUE(query.ok());
  // A flat block: compresses to a handful of coefficients, so even budget
  // 16 answers the block's mass well.
  for (int round = 0; round < 4; ++round) {
    for (uint64_t v = 0; v < 512; ++v) {
      ASSERT_TRUE(engine.Update("packets", {v, 1, 0}).ok());
    }
  }
  StatusOr<double> sum = engine.AnswerRangeSum(*query, 0, 511);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(*sum, 2048.0, 300.0);
}

TEST(EngineTest, RelationRegistrationValidates) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  EXPECT_FALSE(engine.RegisterRelation({"", 1, 64}).ok());
  EXPECT_FALSE(engine.RegisterRelation({"r", 0, 64}).ok());
  EXPECT_FALSE(engine.RegisterRelation({"r", 3, 64}).ok());
  EXPECT_FALSE(engine.RegisterRelation({"r", 1, 1}).ok());
  // Name collision with a stream is rejected too.
  EXPECT_EQ(engine.RegisterRelation({"packets", 1, 64}).status().code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(engine.RegisterRelation({"r", 1, 64}).ok());
  EXPECT_EQ(engine.RegisterRelation({"r", 1, 64}).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(engine.num_relations(), 1u);
}

TEST(EngineTest, ChainJoinQueryValidatesShape) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterRelation({"ends", 1, 64}).ok());
  ASSERT_TRUE(engine.RegisterRelation({"mid", 2, 64}).ok());
  ASSERT_TRUE(engine.RegisterRelation({"tail", 1, 64}).ok());

  ChainJoinQuerySpec spec;
  spec.relations = {"ends"};
  EXPECT_FALSE(engine.AddChainJoinQuery(spec, 1).ok());  // too short
  spec.relations = {"ends", "ghost"};
  EXPECT_EQ(engine.AddChainJoinQuery(spec, 1).status().code(),
            StatusCode::kNotFound);
  spec.relations = {"ends", "ends", "tail"};  // middle needs arity 2
  EXPECT_EQ(engine.AddChainJoinQuery(spec, 1).status().code(),
            StatusCode::kInvalidArgument);
  spec.relations = {"ends", "mid", "tail"};
  EXPECT_TRUE(engine.AddChainJoinQuery(spec, 1).ok());
}

TEST(EngineTest, ChainJoinBothMethodsAnswerExactOnSingletons) {
  for (ChainJoinQuerySpec::Method method :
       {ChainJoinQuerySpec::Method::kAgmsGrid,
        ChainJoinQuerySpec::Method::kHashSketch}) {
    Engine engine;
    ASSERT_TRUE(engine.RegisterRelation({"a", 1, 64}).ok());
    ASSERT_TRUE(engine.RegisterRelation({"b", 2, 64}).ok());
    ASSERT_TRUE(engine.RegisterRelation({"c", 1, 64}).ok());
    ChainJoinQuerySpec spec;
    spec.relations = {"a", "b", "c"};
    spec.method = method;
    StatusOr<QueryId> query = engine.AddChainJoinQuery(spec, 9);
    ASSERT_TRUE(query.ok()) << query.status();
    ASSERT_TRUE(engine.UpdateRelation("a", {7}, 4).ok());
    ASSERT_TRUE(engine.UpdateRelation("b", {7, 9}, 3).ok());
    ASSERT_TRUE(engine.UpdateRelation("c", {9}, 2).ok());
    StatusOr<double> answer = engine.AnswerChainJoin(*query);
    ASSERT_TRUE(answer.ok());
    EXPECT_DOUBLE_EQ(*answer, 24.0)
        << (method == ChainJoinQuerySpec::Method::kAgmsGrid ? "grid" : "hash");
  }
}

TEST(EngineTest, UpdateRelationValidates) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterRelation({"r", 2, 64}).ok());
  EXPECT_EQ(engine.UpdateRelation("ghost", {1, 2}, 1).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.UpdateRelation("r", {1}, 1).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.UpdateRelation("r", {1, 64}, 1).code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(engine.UpdateRelation("r", {1, 2}, 1).ok());
}

TEST(EngineTest, AnswerValidatesQueryIds) {
  Engine engine;
  EXPECT_EQ(engine.AnswerJoin(99).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.AnswerPointFrequency(99, 0).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.AnswerHeavyHitters(99, 5).status().code(),
            StatusCode::kNotFound);
}

TEST(EngineTest, HeavyHitterThresholdValidated) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  FrequencyQuerySpec spec;
  spec.stream = "packets";
  StatusOr<QueryId> query = engine.AddFrequencyQuery(spec, 11);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(engine.AnswerHeavyHitters(*query, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, FrequencyQueryHonorsPredicate) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream(Packets()).ok());
  FrequencyQuerySpec spec;
  spec.stream = "packets";
  spec.predicate = RangePredicate{100, 200};
  spec.use_dyadic = false;
  StatusOr<QueryId> query = engine.AddFrequencyQuery(spec, 12);
  ASSERT_TRUE(query.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine.Update("packets", {150, 1, 0}).ok());
    ASSERT_TRUE(engine.Update("packets", {300, 1, 0}).ok());
  }
  EXPECT_NEAR(*engine.AnswerPointFrequency(*query, 150), 50, 10);
  EXPECT_NEAR(*engine.AnswerPointFrequency(*query, 300), 0, 10);
}

}  // namespace
}  // namespace query
}  // namespace skimjoin
