// Multi-process integration test of the distributed runtime: real worker
// processes (the skimjoin_cli binary, passed as argv[1]) serving real Unix
// sockets, driven by an in-test dist::Coordinator.
//
//   * All shards healthy → coordinator answers bit-identical to a single
//     local engine fed the same stream.
//   * SIGKILL a worker mid-ingest → answers degrade to flagged partials
//     naming the missing shard; restart from checkpoint → re-adopted,
//     answers bit-identical again with no double-merge.
//   * A seeded kill/restart chaos schedule (seed from SKIMJOIN_CHAOS_SEED,
//     always printed) never crashes or hangs the coordinator, and every
//     answer stays inside the deadline × retry budget envelope.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.h"
#include "dist/frame.h"
#include "dist/protocol.h"
#include "gtest/gtest.h"
#include "query/engine.h"
#include "util/random.h"

namespace skimjoin {
namespace dist {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

std::string g_cli_path;  // set by main from argv[1]

uint64_t ChaosSeed() {
  if (const char* env = std::getenv("SKIMJOIN_CHAOS_SEED")) {
    char* end = nullptr;
    const uint64_t seed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return seed;
  }
  return 0xC0FFEE2026ULL;
}

/// One worker process: spawn (fork + exec of the CLI), SIGKILL, restart.
class WorkerProcess {
 public:
  WorkerProcess(std::string socket_path, std::string shard_name,
                std::string checkpoint_path, int checkpoint_every)
      : socket_path_(std::move(socket_path)),
        shard_name_(std::move(shard_name)),
        checkpoint_path_(std::move(checkpoint_path)),
        checkpoint_every_(checkpoint_every) {}

  ~WorkerProcess() { Kill(); }

  void Start() {
    ASSERT_EQ(-1, pid_) << "already running";
    std::vector<std::string> args = {
        g_cli_path,
        "--worker=" + socket_path_,
        "--shard=" + shard_name_,
    };
    if (!checkpoint_path_.empty()) {
      args.push_back("--worker_checkpoint=" + checkpoint_path_);
      args.push_back("--checkpoint_every=" + std::to_string(checkpoint_every_));
    }
    const pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (const std::string& arg : args) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      ::execv(g_cli_path.c_str(), argv.data());
      _exit(127);
    }
    pid_ = pid;
    WaitServing();
  }

  void Kill() {
    if (pid_ < 0) return;
    ::kill(pid_, SIGKILL);
    int wstatus = 0;
    ::waitpid(pid_, &wstatus, 0);
    pid_ = -1;
  }

  bool running() const { return pid_ >= 0; }
  const std::string& socket_path() const { return socket_path_; }
  const std::string& shard_name() const { return shard_name_; }

 private:
  /// Blocks until the worker answers a ping (it prints its readiness line
  /// once the socket is bound; pinging is how another process can tell).
  void WaitServing() {
    const auto give_up = steady_clock::now() + milliseconds(10000);
    while (steady_clock::now() < give_up) {
      StatusOr<FrameChannel> channel =
          ConnectUnix(socket_path_, DeadlineAfter(milliseconds(200)));
      if (channel.ok()) {
        StatusOr<Frame> pong = Call(*channel, MessageType::kPing, "",
                                    DeadlineAfter(milliseconds(500)));
        if (pong.ok()) return;
      }
      std::this_thread::sleep_for(milliseconds(20));
    }
    FAIL() << "worker " << shard_name_ << " never became ready";
  }

  std::string socket_path_;
  std::string shard_name_;
  std::string checkpoint_path_;
  int checkpoint_every_ = 0;
  pid_t pid_ = -1;
};

CoordinatorOptions FastOptions() {
  CoordinatorOptions options;
  options.rpc_timeout = milliseconds(1000);
  options.rpc_attempts = 3;
  options.backoff_base = milliseconds(1);
  options.backoff_cap = milliseconds(20);
  options.down_after_failures = 2;
  return options;
}

query::JoinQuerySpec SkimmedJoinSpec() {
  query::JoinQuerySpec spec;
  spec.left_stream = "f";
  spec.right_stream = "g";
  spec.estimator.kind = core::EstimatorKind::kSkimmedSketch;
  spec.estimator.space_counters = 1024;
  return spec;
}

std::vector<query::StreamUpdate> Workload(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<query::StreamUpdate> updates;
  updates.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    updates.push_back({rng.NextUint64Below(1u << 12), 1, 0});
  }
  return updates;
}

/// TempDir persists across runs; a worker finding last run's checkpoint
/// would "restore" state this run never ingested.
std::string FreshPath(const std::string& path) {
  ::unlink(path.c_str());
  return path;
}

TEST(DistIntegrationTest, AllHealthyAnswersMatchLocalEngineBitForBit) {
  const std::string dir = ::testing::TempDir();
  WorkerProcess w0(dir + "/int_ident_0.sock", "s0", "", 0);
  WorkerProcess w1(dir + "/int_ident_1.sock", "s1", "", 0);
  ASSERT_NO_FATAL_FAILURE(w0.Start());
  ASSERT_NO_FATAL_FAILURE(w1.Start());

  Coordinator coordinator(
      {{"s0", w0.socket_path()}, {"s1", w1.socket_path()}}, FastOptions());
  query::Engine engine;
  for (const auto& stream : {query::StreamSpec{"f", 1u << 12},
                             query::StreamSpec{"g", 1u << 12}}) {
    ASSERT_TRUE(coordinator.RegisterStream(stream).ok());
    ASSERT_TRUE(engine.RegisterStream(stream).ok());
  }
  const uint64_t kSeed = 99;
  StatusOr<query::QueryId> dist_join =
      coordinator.AddJoinQuery(SkimmedJoinSpec(), kSeed);
  ASSERT_TRUE(dist_join.ok()) << dist_join.status();
  StatusOr<query::QueryId> local_join =
      engine.AddJoinQuery(SkimmedJoinSpec(), kSeed);
  ASSERT_TRUE(local_join.ok()) << local_join.status();

  const auto f_updates = Workload(1, 800);
  const auto g_updates = Workload(2, 800);
  ASSERT_TRUE(coordinator.UpdateBatch("f", f_updates).ok());
  ASSERT_TRUE(coordinator.UpdateBatch("g", g_updates).ok());
  ASSERT_TRUE(engine.UpdateBatch("f", f_updates).ok());
  ASSERT_TRUE(engine.UpdateBatch("g", g_updates).ok());

  StatusOr<double> dist_answer = coordinator.AnswerJoin(*dist_join);
  StatusOr<double> local_answer = engine.AnswerJoin(*local_join);
  ASSERT_TRUE(dist_answer.ok()) << dist_answer.status();
  ASSERT_TRUE(local_answer.ok()) << local_answer.status();
  EXPECT_EQ(*local_answer, *dist_answer);

  StatusOr<EstimateReport> report =
      coordinator.AnswerJoinWithReport(*dist_join);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->partial);
}

// ---- fleet health acceptance --------------------------------------------

// The fleet doctor: an undersized sketch saturated on every shard must
// surface the collision finding from EACH worker process, labeled with its
// shard index, naming the worker-local query id and the joined streams.
TEST(DistIntegrationTest, FleetHealthReportLabelsShardFindings) {
  const std::string dir = ::testing::TempDir();
  WorkerProcess w0(dir + "/int_health_0.sock", "s0", "", 0);
  WorkerProcess w1(dir + "/int_health_1.sock", "s1", "", 0);
  ASSERT_NO_FATAL_FAILURE(w0.Start());
  ASSERT_NO_FATAL_FAILURE(w1.Start());

  Coordinator coordinator(
      {{"s0", w0.socket_path()}, {"s1", w1.socket_path()}}, FastOptions());
  constexpr uint64_t kDomain = 1u << 13;
  for (const auto& stream : {query::StreamSpec{"f", kDomain},
                             query::StreamSpec{"g", kDomain}}) {
    ASSERT_TRUE(coordinator.RegisterStream(stream).ok());
  }
  query::JoinQuerySpec spec;
  spec.left_stream = "f";
  spec.right_stream = "g";
  spec.estimator.kind = core::EstimatorKind::kHashSketch;
  spec.estimator.space_counters = 128;  // undersized for 4096 values/shard
  StatusOr<query::QueryId> join = coordinator.AddJoinQuery(spec, 17);
  ASSERT_TRUE(join.ok()) << join.status();

  // Sweep the whole domain so each shard's half saturates its sketch.
  std::vector<query::StreamUpdate> sweep;
  sweep.reserve(kDomain);
  for (uint64_t value = 0; value < kDomain; ++value) {
    sweep.push_back({value, 1, 0});
  }
  ASSERT_TRUE(coordinator.UpdateBatch("f", sweep).ok());
  ASSERT_TRUE(coordinator.UpdateBatch("g", sweep).ok());

  StatusOr<query::HealthReport> fleet = coordinator.FleetHealthReport();
  ASSERT_TRUE(fleet.ok()) << fleet.status();
  std::set<std::string> shards_reporting;
  for (const query::HealthFinding& finding : fleet->findings) {
    EXPECT_FALSE(finding.shard.empty()) << finding.message;
    if (finding.rule != "collision-pressure") continue;
    shards_reporting.insert(finding.shard);
    EXPECT_EQ(finding.subject, "query 1");
    EXPECT_NE(finding.message.find("f⋈g"), std::string::npos)
        << finding.message;
  }
  EXPECT_EQ(shards_reporting, (std::set<std::string>{"0", "1"}));

  // A killed shard becomes an `unreachable` finding instead of vanishing.
  w1.Kill();
  fleet = coordinator.FleetHealthReport();
  ASSERT_TRUE(fleet.ok()) << fleet.status();
  bool saw_unreachable = false;
  for (const query::HealthFinding& finding : fleet->findings) {
    if (finding.rule == "unreachable") {
      saw_unreachable = true;
      EXPECT_EQ(finding.subject, "shard s1");
      EXPECT_EQ(finding.shard, "1");
    }
  }
  EXPECT_TRUE(saw_unreachable);
}

// ---- fleet telemetry acceptance ----------------------------------------

// Lightweight Chrome-trace scanner: yields each top-level event object of
// the "traceEvents" array (the root object is depth 1, events depth 2;
// their "args" objects nest deeper and stay inside the captured slice).
std::vector<std::string> TraceEventObjects(const std::string& trace_json) {
  std::vector<std::string> events;
  int depth = 0;
  size_t start = 0;
  bool in_string = false;
  for (size_t i = 0; i < trace_json.size(); ++i) {
    const char c = trace_json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (++depth == 2) start = i;
    } else if (c == '}') {
      if (depth-- == 2) {
        events.push_back(trace_json.substr(start, i - start + 1));
      }
    }
  }
  return events;
}

// Extracts `"key":"value"` or `"key":<number>` from one event object
// (first occurrence; nested args are fair game).
std::string JsonField(const std::string& object, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = object.find(needle);
  if (at == std::string::npos) return "";
  size_t from = at + needle.size();
  if (from < object.size() && object[from] == '"') {
    const size_t end = object.find('"', from + 1);
    if (end == std::string::npos) return "";
    return object.substr(from + 1, end - from - 1);
  }
  size_t end = from;
  while (end < object.size() && object[end] != ',' && object[end] != '}') {
    ++end;
  }
  return object.substr(from, end - from);
}

TEST(DistIntegrationTest, FleetTelemetryMergesTracesAndMetricsAcrossProcesses) {
  const std::string dir = ::testing::TempDir();
  WorkerProcess w0(dir + "/int_fleet_0.sock", "s0", "", 0);
  WorkerProcess w1(dir + "/int_fleet_1.sock", "s1", "", 0);
  ASSERT_NO_FATAL_FAILURE(w0.Start());
  ASSERT_NO_FATAL_FAILURE(w1.Start());

  Coordinator coordinator(
      {{"s0", w0.socket_path()}, {"s1", w1.socket_path()}}, FastOptions());
  query::Engine engine;
  ASSERT_TRUE(coordinator.RegisterStream({"f", 1u << 12}).ok());
  ASSERT_TRUE(engine.RegisterStream({"f", 1u << 12}).ok());
  for (const query::RelationSpec& relation :
       {query::RelationSpec{"a", 1, 64}, query::RelationSpec{"b", 2, 64},
        query::RelationSpec{"c", 1, 64}}) {
    ASSERT_TRUE(coordinator.RegisterRelation(relation).ok());
    ASSERT_TRUE(engine.RegisterRelation(relation).ok());
  }
  query::ChainJoinQuerySpec chain;
  chain.relations = {"a", "b", "c"};
  const uint64_t kSeed = 23;
  StatusOr<query::QueryId> dist_chain =
      coordinator.AddChainJoinQuery(chain, kSeed);
  ASSERT_TRUE(dist_chain.ok()) << dist_chain.status();
  StatusOr<query::QueryId> local_chain = engine.AddChainJoinQuery(chain, kSeed);
  ASSERT_TRUE(local_chain.ok()) << local_chain.status();

  // Everything between start and stop lands in one merged fleet trace.
  ASSERT_TRUE(coordinator.SetFleetTracing(true).ok());

  const auto f_updates = Workload(7, 600);
  ASSERT_TRUE(coordinator.UpdateBatch("f", f_updates).ok());
  ASSERT_TRUE(engine.UpdateBatch("f", f_updates).ok());
  Rng rng(13);
  for (int i = 0; i < 60; ++i) {
    const uint64_t x = rng.NextUint64Below(64);
    const uint64_t y = rng.NextUint64Below(64);
    ASSERT_TRUE(coordinator.UpdateRelation("a", {x}, 1).ok());
    ASSERT_TRUE(engine.UpdateRelation("a", {x}, 1).ok());
    ASSERT_TRUE(coordinator.UpdateRelation("b", {x, y}, 1).ok());
    ASSERT_TRUE(engine.UpdateRelation("b", {x, y}, 1).ok());
    ASSERT_TRUE(coordinator.UpdateRelation("c", {y}, 1).ok());
    ASSERT_TRUE(engine.UpdateRelation("c", {y}, 1).ok());
  }
  StatusOr<double> dist_answer = coordinator.AnswerChainJoin(*dist_chain);
  StatusOr<double> local_answer = engine.AnswerChainJoin(*local_chain);
  ASSERT_TRUE(dist_answer.ok()) << dist_answer.status();
  ASSERT_TRUE(local_answer.ok()) << local_answer.status();
  EXPECT_EQ(*local_answer, *dist_answer);  // bit-identical through the fleet

  ASSERT_TRUE(coordinator.SetFleetTracing(false).ok());
  StatusOr<std::string> trace = coordinator.DumpFleetTrace();
  ASSERT_TRUE(trace.ok()) << trace.status();

  // One merged timeline: three named process tracks...
  EXPECT_NE(trace->find("process_name"), std::string::npos);
  const std::vector<std::string> events = TraceEventObjects(*trace);
  std::map<std::string, std::set<std::string>> pids_by_trace;
  std::set<std::string> worker_pids;
  std::set<std::string> all_pids;
  for (const std::string& event : events) {
    const std::string pid = JsonField(event, "pid");
    if (pid.empty()) continue;
    all_pids.insert(pid);
    const std::string trace_id = JsonField(event, "trace_id");
    if (!trace_id.empty() && trace_id != "0") {
      pids_by_trace[trace_id].insert(pid);
    }
    if (JsonField(event, "name").rfind("worker.", 0) == 0) {
      worker_pids.insert(pid);
    }
  }
  EXPECT_GE(all_pids.size(), 3u);     // coordinator + both workers
  EXPECT_GE(worker_pids.size(), 2u);  // both shards produced spans
  // The acceptance bar: one trace_id spanning the coordinator AND >= 2
  // worker processes (an UpdateBatch root and its remote ingest children).
  bool fan_out_trace = false;
  for (const auto& [trace_id, pids] : pids_by_trace) {
    if (pids.size() >= 3) fan_out_trace = true;
  }
  EXPECT_TRUE(fan_out_trace)
      << "no trace_id crossed 3+ processes in:\n" << *trace;

  // ...and the merged metrics: the per-shard ingest series carry shard
  // labels and sum to the single-process engine's count exactly.
  StatusOr<metrics::Snapshot> fleet = coordinator.FleetMetricsSnapshot();
  ASSERT_TRUE(fleet.ok()) << fleet.status();
  uint64_t fleet_absorbed = 0;
  std::set<std::string> shards_seen;
  for (const auto& [name, value] : fleet->counters) {
    std::string base, shard;
    if (metrics::SplitShardLabel(name, &base, &shard) &&
        base == "ingest.f.elements_absorbed") {
      fleet_absorbed += value;
      shards_seen.insert(shard);
    }
  }
  uint64_t local_absorbed = 0;
  for (const auto& [name, value] : engine.MetricsSnapshot().counters) {
    if (name == "ingest.f.elements_absorbed") local_absorbed = value;
  }
  EXPECT_EQ(local_absorbed, 600u);
  EXPECT_EQ(fleet_absorbed, local_absorbed);
  EXPECT_EQ(shards_seen.size(), 2u) << "every shard must report its series";
  const std::string prom = metrics::ToPrometheusText(*fleet);
  EXPECT_NE(prom.find("ingest_f_elements_absorbed{shard=\"0\"}"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("ingest_f_elements_absorbed{shard=\"1\"}"),
            std::string::npos)
      << prom;
}

TEST(DistIntegrationTest, KilledWorkerDegradesThenRestartRecoversExactly) {
  const std::string dir = ::testing::TempDir();
  WorkerProcess w0(dir + "/int_kill_0.sock", "s0",
                   FreshPath(dir + "/int_kill_0.ckpt"), 1);
  WorkerProcess w1(dir + "/int_kill_1.sock", "s1",
                   FreshPath(dir + "/int_kill_1.ckpt"), 1);
  ASSERT_NO_FATAL_FAILURE(w0.Start());
  ASSERT_NO_FATAL_FAILURE(w1.Start());

  CoordinatorOptions options = FastOptions();
  options.rpc_timeout = milliseconds(500);
  Coordinator coordinator(
      {{"s0", w0.socket_path()}, {"s1", w1.socket_path()}}, options);
  query::Engine engine;
  for (const auto& stream : {query::StreamSpec{"f", 1u << 12},
                             query::StreamSpec{"g", 1u << 12}}) {
    ASSERT_TRUE(coordinator.RegisterStream(stream).ok());
    ASSERT_TRUE(engine.RegisterStream(stream).ok());
  }
  const uint64_t kSeed = 41;
  StatusOr<query::QueryId> dist_join =
      coordinator.AddJoinQuery(SkimmedJoinSpec(), kSeed);
  ASSERT_TRUE(dist_join.ok()) << dist_join.status();
  StatusOr<query::QueryId> local_join =
      engine.AddJoinQuery(SkimmedJoinSpec(), kSeed);
  ASSERT_TRUE(local_join.ok()) << local_join.status();

  // Ingest with checkpoint_every=1: every acked batch is durable.
  const auto f_updates = Workload(1, 400);
  const auto g_updates = Workload(2, 400);
  ASSERT_TRUE(coordinator.UpdateBatch("f", f_updates).ok());
  ASSERT_TRUE(coordinator.UpdateBatch("g", g_updates).ok());
  ASSERT_TRUE(engine.UpdateBatch("f", f_updates).ok());
  ASSERT_TRUE(engine.UpdateBatch("g", g_updates).ok());

  StatusOr<EstimateReport> healthy =
      coordinator.AnswerJoinWithReport(*dist_join);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  ASSERT_FALSE(healthy->partial);

  // SIGKILL s0: answers must keep flowing (stale cache) but flag the shard.
  w0.Kill();
  StatusOr<EstimateReport> degraded =
      coordinator.AnswerJoinWithReport(*dist_join);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_TRUE(degraded->partial);
  bool s0_flagged = false;
  for (const ShardContribution& shard : degraded->shards) {
    if (shard.shard == "s0" && !shard.fresh) s0_flagged = true;
  }
  EXPECT_TRUE(s0_flagged);

  // Restart from the checkpoint: every acked batch was durable, so the
  // re-adopted fleet answers bit-identically to the local engine again.
  ASSERT_NO_FATAL_FAILURE(w0.Start());
  StatusOr<EstimateReport> recovered =
      coordinator.AnswerJoinWithReport(*dist_join);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(recovered->partial) << "s0 should be fresh after re-adoption";
  EXPECT_EQ(healthy->estimate, recovered->estimate);

  // No double-merge: asking again (another pull + merge) must not inflate.
  StatusOr<double> again = coordinator.AnswerJoin(*dist_join);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(healthy->estimate, *again);

  // And the fleet keeps tracking new arrivals exactly.
  const auto more = Workload(3, 200);
  ASSERT_TRUE(coordinator.UpdateBatch("f", more).ok());
  ASSERT_TRUE(engine.UpdateBatch("f", more).ok());
  StatusOr<double> moved_dist = coordinator.AnswerJoin(*dist_join);
  StatusOr<double> moved_local = engine.AnswerJoin(*local_join);
  ASSERT_TRUE(moved_dist.ok()) << moved_dist.status();
  ASSERT_TRUE(moved_local.ok()) << moved_local.status();
  EXPECT_EQ(*moved_local, *moved_dist);
}

TEST(DistIntegrationTest, SeededKillRestartChaosNeverWedgesTheCoordinator) {
  const uint64_t seed = ChaosSeed();
  // Printed unconditionally so a failing CI run is reproducible with
  // SKIMJOIN_CHAOS_SEED=<seed>.
  std::cout << "[ chaos ] SKIMJOIN_CHAOS_SEED=" << seed << std::endl;
  SCOPED_TRACE("SKIMJOIN_CHAOS_SEED=" + std::to_string(seed));
  Rng chaos(seed);

  const std::string dir = ::testing::TempDir();
  std::vector<std::unique_ptr<WorkerProcess>> workers;
  std::vector<ShardAddress> addresses;
  for (int i = 0; i < 2; ++i) {
    const std::string tag = "chaos_" + std::to_string(i);
    workers.push_back(std::make_unique<WorkerProcess>(
        dir + "/int_" + tag + ".sock", "s" + std::to_string(i),
        FreshPath(dir + "/int_" + tag + ".ckpt"), 1));
    ASSERT_NO_FATAL_FAILURE(workers.back()->Start());
    addresses.push_back({workers.back()->shard_name(),
                         workers.back()->socket_path()});
  }

  CoordinatorOptions options = FastOptions();
  options.rpc_timeout = milliseconds(300);
  options.rpc_attempts = 2;
  options.jitter_seed = seed;
  Coordinator coordinator(addresses, options);
  ASSERT_TRUE(coordinator.RegisterStream({"f", 1u << 12}).ok());
  ASSERT_TRUE(coordinator.RegisterStream({"g", 1u << 12}).ok());
  StatusOr<query::QueryId> join =
      coordinator.AddJoinQuery(SkimmedJoinSpec(), 5);
  ASSERT_TRUE(join.ok()) << join.status();
  ASSERT_TRUE(coordinator.UpdateBatch("f", Workload(10, 200)).ok());
  ASSERT_TRUE(coordinator.UpdateBatch("g", Workload(11, 200)).ok());
  ASSERT_TRUE(coordinator.AnswerJoin(*join).ok());

  // The per-answer envelope: every shard can burn its full retry budget
  // on both the pull and an eventual reconnect, plus scheduling slack.
  const auto kAnswerBound = milliseconds(
      2 * options.rpc_attempts * 2 * options.rpc_timeout.count() + 4000);

  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const uint64_t action = chaos.NextUint64Below(3);
    const size_t victim = chaos.NextUint64Below(workers.size());
    if (action == 0 && workers[victim]->running()) {
      workers[victim]->Kill();
    } else if (action == 1 && !workers[victim]->running()) {
      ASSERT_NO_FATAL_FAILURE(workers[victim]->Start());
    } else {
      // Ingest traffic; with dead shards this reports an error but must
      // not hang or crash, and surviving shards still apply their slice.
      (void)coordinator.UpdateBatch("f", Workload(100 + round, 50));
    }

    const auto start = steady_clock::now();
    StatusOr<EstimateReport> report =
        coordinator.AnswerJoinWithReport(*join);
    const auto elapsed = steady_clock::now() - start;
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_LT(elapsed, kAnswerBound);
    bool any_down_or_stale = false;
    for (const ShardContribution& shard : report->shards) {
      if (!shard.fresh || shard.health != "healthy") any_down_or_stale = true;
    }
    if (report->partial) {
      EXPECT_TRUE(any_down_or_stale)
          << "partial answers must name a stale or unhealthy shard";
    }
  }

  // Convergence: revive everyone; the fleet must settle back to healthy,
  // non-partial answers.
  for (auto& worker : workers) {
    if (!worker->running()) {
      ASSERT_NO_FATAL_FAILURE(worker->Start());
    }
  }
  StatusOr<EstimateReport> settled = coordinator.AnswerJoinWithReport(*join);
  ASSERT_TRUE(settled.ok()) << settled.status();
  EXPECT_FALSE(settled->partial);
}

}  // namespace
}  // namespace dist
}  // namespace skimjoin

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc > 1) skimjoin::dist::g_cli_path = argv[1];
  if (skimjoin::dist::g_cli_path.empty()) {
    std::cerr << "usage: dist_integration_test <path-to-skimjoin_cli>\n";
    return 2;
  }
  return RUN_ALL_TESTS();
}
