// Codec tests for the fleet-telemetry protocol messages (dist/protocol):
// exact round trips for every new payload type, the HelloReply trace-clock
// token's backward compatibility, and decoder hardening — declared counts
// are validated before allocation and mangled payloads return a Status,
// never crash.

#include "dist/protocol.h"

#include <cmath>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/event_log.h"
#include "util/metrics.h"

namespace skimjoin {
namespace dist {
namespace {

TEST(HelloReplyCodec, RoundTripsTraceClock) {
  HelloReply msg;
  msg.shard_name = "s0";
  msg.incarnation = 3;
  msg.epoch = 17;
  msg.trace_clock_micros = 123456789;
  StatusOr<HelloReply> decoded = DecodeHelloReply(EncodeHelloReply(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->shard_name, "s0");
  EXPECT_EQ(decoded->incarnation, 3u);
  EXPECT_EQ(decoded->epoch, 17u);
  EXPECT_EQ(decoded->trace_clock_micros, 123456789u);
}

TEST(HelloReplyCodec, TraceClockTokenIsOptionalForOldPeers) {
  // A pre-telemetry peer encodes only "<shard> <incarnation> <epoch>"; the
  // decoder must accept it and report a zero trace clock.
  StatusOr<HelloReply> decoded = DecodeHelloReply("s1 2 9");
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->shard_name, "s1");
  EXPECT_EQ(decoded->incarnation, 2u);
  EXPECT_EQ(decoded->epoch, 9u);
  EXPECT_EQ(decoded->trace_clock_micros, 0u);
  // A present-but-garbage clock token is malformed, not silently zero.
  EXPECT_FALSE(DecodeHelloReply("s1 2 9 notanumber").ok());
  EXPECT_FALSE(DecodeHelloReply("s1 2 9 5 extra").ok());
}

TEST(RelationCodec, RegAndUpdateRoundTrip) {
  RelationReg reg;
  reg.name = "edges";
  reg.arity = 2;
  reg.domain_size = 1u << 16;
  StatusOr<RelationReg> reg2 = DecodeRelationReg(EncodeRelationReg(reg));
  ASSERT_TRUE(reg2.ok()) << reg2.status();
  EXPECT_EQ(reg2->name, "edges");
  EXPECT_EQ(reg2->arity, 2u);
  EXPECT_EQ(reg2->domain_size, uint64_t{1} << 16);

  RelationUpdateMsg update;
  update.relation = "edges";
  update.arity = 2;
  update.tuples.push_back({{1, 2}, 1});
  update.tuples.push_back({{3, 4}, -5});
  StatusOr<RelationUpdateMsg> update2 =
      DecodeRelationUpdate(EncodeRelationUpdate(update));
  ASSERT_TRUE(update2.ok()) << update2.status();
  EXPECT_EQ(update2->relation, "edges");
  ASSERT_EQ(update2->tuples.size(), 2u);
  EXPECT_EQ(update2->tuples[0].attributes, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(update2->tuples[1].attributes, (std::vector<uint64_t>{3, 4}));
  EXPECT_EQ(update2->tuples[1].weight, -5);
}

TEST(ChainQueryCodec, RoundTripsEstimatorShape) {
  ChainQueryReg reg;
  reg.query_name = "q7";
  reg.relations = {"r1", "r2", "r3"};
  reg.method = 1;
  reg.num_means = 64;
  reg.num_medians = 5;
  reg.num_tables = 5;
  reg.num_buckets = 128;
  reg.seed = 0xdeadbeef;
  StatusOr<ChainQueryReg> decoded =
      DecodeChainQueryReg(EncodeChainQueryReg(reg));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->query_name, "q7");
  EXPECT_EQ(decoded->relations, reg.relations);
  EXPECT_EQ(decoded->method, 1u);
  EXPECT_EQ(decoded->num_means, 64u);
  EXPECT_EQ(decoded->num_medians, 5u);
  EXPECT_EQ(decoded->num_tables, 5u);
  EXPECT_EQ(decoded->num_buckets, 128u);
  EXPECT_EQ(decoded->seed, 0xdeadbeefu);
}

TEST(MetricsSnapshotCodec, RoundTripsEverySection) {
  metrics::Registry registry;
  registry.GetCounter("ingest.f.elements_absorbed")->Increment(42);
  registry.GetCounter(
      metrics::LabeledName("dist.calls", {{"shard", "0"}}))->Increment(7);
  registry.GetGauge("engine.num_streams")->Set(2.5);
  metrics::ShardedHistogram* h = registry.GetHistogram("rpc.latency");
  h->Record(1.0);
  h->Record(100.0);
  const metrics::Snapshot original = registry.TakeSnapshot();

  StatusOr<metrics::Snapshot> decoded =
      DecodeMetricsSnapshot(EncodeMetricsSnapshot(original));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->counters, original.counters);
  EXPECT_EQ(decoded->gauges, original.gauges);
  ASSERT_EQ(decoded->histograms.size(), 1u);
  EXPECT_EQ(decoded->histograms[0].first, "rpc.latency");
  const metrics::HistogramSnapshot& got = decoded->histograms[0].second;
  const metrics::HistogramSnapshot& want = original.histograms[0].second;
  EXPECT_EQ(got.count, want.count);
  EXPECT_DOUBLE_EQ(got.sum, want.sum);
  EXPECT_DOUBLE_EQ(got.min, want.min);
  EXPECT_DOUBLE_EQ(got.max, want.max);
  EXPECT_EQ(got.buckets, want.buckets);
}

TEST(MetricsSnapshotCodec, EmptyHistogramKeepsNaNMinMax) {
  metrics::Registry registry;
  registry.GetHistogram("empty");
  StatusOr<metrics::Snapshot> decoded =
      DecodeMetricsSnapshot(EncodeMetricsSnapshot(registry.TakeSnapshot()));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->histograms.size(), 1u);
  EXPECT_EQ(decoded->histograms[0].second.count, 0u);
  // NaN survives the IEEE-754 bit-pattern transport.
  EXPECT_TRUE(std::isnan(decoded->histograms[0].second.min));
  EXPECT_TRUE(std::isnan(decoded->histograms[0].second.max));
}

TEST(EventsCodec, RequestAndBatchRoundTrip) {
  EventsRequest request;
  request.max_events = 128;
  request.after_sequence = 77;
  StatusOr<EventsRequest> request2 =
      DecodeEventsRequest(EncodeEventsRequest(request));
  ASSERT_TRUE(request2.ok()) << request2.status();
  EXPECT_EQ(request2->max_events, 128u);
  EXPECT_EQ(request2->after_sequence, 77u);

  EventBatchMsg batch;
  LogEvent event;
  event.level = LogLevel::kWarn;
  event.sequence = 9;
  event.ts_micros = 123;
  event.event = "worker_down";
  event.fields = {{"shard", "s0"}, {"free text", "with spaces\nand newlines"}};
  batch.events.push_back(event);
  event.level = LogLevel::kInfo;
  event.sequence = 10;
  event.event = "rpc_retry";
  event.fields.clear();
  batch.events.push_back(event);

  StatusOr<EventBatchMsg> batch2 = DecodeEventBatch(EncodeEventBatch(batch));
  ASSERT_TRUE(batch2.ok()) << batch2.status();
  ASSERT_EQ(batch2->events.size(), 2u);
  EXPECT_EQ(batch2->events[0].level, LogLevel::kWarn);
  EXPECT_EQ(batch2->events[0].sequence, 9u);
  EXPECT_EQ(batch2->events[0].ts_micros, 123u);
  EXPECT_EQ(batch2->events[0].event, "worker_down");
  ASSERT_EQ(batch2->events[0].fields.size(), 2u);
  EXPECT_EQ(batch2->events[0].fields[1].first, "free text");
  EXPECT_EQ(batch2->events[0].fields[1].second, "with spaces\nand newlines");
  EXPECT_EQ(batch2->events[1].level, LogLevel::kInfo);
  EXPECT_TRUE(batch2->events[1].fields.empty());
}

TEST(TraceCodec, ControlAndEventsRoundTrip) {
  StatusOr<TraceControlMsg> on = DecodeTraceControl(EncodeTraceControl({true}));
  ASSERT_TRUE(on.ok()) << on.status();
  EXPECT_TRUE(on->enable);
  StatusOr<TraceControlMsg> off =
      DecodeTraceControl(EncodeTraceControl({false}));
  ASSERT_TRUE(off.ok()) << off.status();
  EXPECT_FALSE(off->enable);

  TraceEventsMsg msg;
  msg.dropped = 4;
  msg.now_micros = 555000;
  metrics::TraceEvent span;
  span.name = "worker.ingest";
  span.category = "dist";
  span.start_micros = 100;
  span.duration_micros = 50;
  span.thread_id = 3;
  span.trace_id = 0xAAAABBBBCCCCDDDDull;
  span.span_id = 0x1111222233334444ull;
  span.parent_span_id = 0x5555666677778888ull;
  msg.events.push_back(span);

  StatusOr<TraceEventsMsg> decoded = DecodeTraceEvents(EncodeTraceEvents(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->dropped, 4u);
  EXPECT_EQ(decoded->now_micros, 555000u);
  ASSERT_EQ(decoded->events.size(), 1u);
  EXPECT_EQ(decoded->events[0].name, "worker.ingest");
  EXPECT_EQ(decoded->events[0].category, "dist");
  EXPECT_EQ(decoded->events[0].start_micros, 100u);
  EXPECT_EQ(decoded->events[0].duration_micros, 50u);
  EXPECT_EQ(decoded->events[0].thread_id, 3u);
  EXPECT_EQ(decoded->events[0].trace_id, 0xAAAABBBBCCCCDDDDull);
  EXPECT_EQ(decoded->events[0].span_id, 0x1111222233334444ull);
  EXPECT_EQ(decoded->events[0].parent_span_id, 0x5555666677778888ull);
}

TEST(HealthReportCodec, RoundTripsSeveritiesAndFreeText) {
  HealthReportMsg msg;
  msg.findings.push_back({query::HealthFinding::Severity::kInfo, "stream f",
                          "delete-heavy", "delete ratio 0.40", ""});
  msg.findings.push_back({query::HealthFinding::Severity::kWarn, "query 3",
                          "collision-pressure",
                          "hash-sketch.f occupancy 0.99 over f⋈g — the "
                          "sketch is undersized for this stream",
                          ""});
  msg.findings.push_back({query::HealthFinding::Severity::kCritical,
                          "query 7", "counter-saturation",
                          "with: colons, 5:5 blobs and\nnewlines", ""});

  StatusOr<HealthReportMsg> decoded =
      DecodeHealthReport(EncodeHealthReport(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->findings.size(), 3u);
  for (size_t i = 0; i < msg.findings.size(); ++i) {
    EXPECT_EQ(decoded->findings[i].severity, msg.findings[i].severity);
    EXPECT_EQ(decoded->findings[i].subject, msg.findings[i].subject);
    EXPECT_EQ(decoded->findings[i].rule, msg.findings[i].rule);
    EXPECT_EQ(decoded->findings[i].message, msg.findings[i].message);
    // The shard label never rides the wire: the coordinator assigns it.
    EXPECT_TRUE(decoded->findings[i].shard.empty());
  }

  StatusOr<HealthReportMsg> empty = DecodeHealthReport(EncodeHealthReport({}));
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_TRUE(empty->findings.empty());
}

TEST(HealthReportCodec, RejectsBadSeverityAndTrailingBytes) {
  HealthReportMsg msg;
  msg.findings.push_back(
      {query::HealthFinding::Severity::kWarn, "s", "r", "m", ""});
  const std::string wire = EncodeHealthReport(msg);
  EXPECT_FALSE(DecodeHealthReport(wire + " junk").ok());
  // Severity beyond kCritical is a protocol violation, not a cast.
  std::string bad = wire;
  const size_t severity_at = bad.find(" 1 ");
  ASSERT_NE(severity_at, std::string::npos);
  bad.replace(severity_at, 3, " 9 ");
  EXPECT_FALSE(DecodeHealthReport(bad).ok());
}

// ---------------------------------------------------------------------------
// Hardening: hostile payloads return a Status, never crash or over-allocate.
// ---------------------------------------------------------------------------

TEST(TelemetryCodecHardening, HugeDeclaredCountsAreRejectedBeforeAllocation) {
  // An event batch declaring 2^60 events must fail on the count check, not
  // try to reserve the vector.
  EXPECT_FALSE(DecodeEventBatch("1152921504606846976 ").ok());
  EXPECT_FALSE(DecodeTraceEvents("0 0 1152921504606846976 ").ok());
  EXPECT_FALSE(DecodeHealthReport("1152921504606846976 ").ok());
  // A relation update declaring more tuples than kMaxWireBatchElements.
  EXPECT_FALSE(DecodeRelationUpdate("r 1 99999999999 1 1").ok());
}

TEST(TelemetryCodecHardening, DecodersSurviveEveryTruncation) {
  metrics::Registry registry;
  registry.GetCounter("a.b")->Increment(1);
  registry.GetHistogram("h")->Record(2.0);
  EventBatchMsg batch;
  LogEvent event;
  event.level = LogLevel::kError;
  event.sequence = 1;
  event.ts_micros = 2;
  event.event = "e";
  event.fields = {{"k", "v"}};
  batch.events.push_back(event);
  TraceEventsMsg trace;
  metrics::TraceEvent span;
  span.name = "s";
  span.category = "c";
  span.trace_id = 1;
  trace.events.push_back(span);

  const std::vector<std::string> payloads = {
      EncodeMetricsSnapshot(registry.TakeSnapshot()),
      EncodeEventBatch(batch),
      EncodeTraceEvents(trace),
      EncodeRelationUpdate({"r", 2, {{{1, 2}, 1}}}),
      EncodeChainQueryReg({"q", {"r1", "r2"}, 0, 8, 3, 3, 16, 5}),
      EncodeHealthReport(
          {{{query::HealthFinding::Severity::kWarn, "s", "r", "m", ""}}}),
  };
  for (const std::string& payload : payloads) {
    for (size_t len = 0; len < payload.size(); ++len) {
      const std::string_view prefix(payload.data(), len);
      // Just must not crash/over-allocate; truncations that cut a required
      // token return a Status.
      (void)DecodeMetricsSnapshot(prefix);
      (void)DecodeEventBatch(prefix);
      (void)DecodeTraceEvents(prefix);
      (void)DecodeRelationUpdate(prefix);
      (void)DecodeChainQueryReg(prefix);
      (void)DecodeHealthReport(prefix);
    }
  }
}

TEST(TelemetryCodecHardening, BlobLengthLyingAboutSizeIsRejected) {
  // Event names ride as length-prefixed blobs "<len>:<bytes>". A length
  // that overruns the actual payload must fail cleanly.
  EventBatchMsg batch;
  LogEvent event;
  event.level = LogLevel::kInfo;
  event.sequence = 1;
  event.ts_micros = 2;
  event.event = "name";
  batch.events.push_back(event);
  std::string wire = EncodeEventBatch(batch);
  const size_t blob = wire.find("4:name");
  ASSERT_NE(blob, std::string::npos) << wire;
  wire.replace(blob, 2, "9:");  // lie: declare 9 bytes where 4 exist
  EXPECT_FALSE(DecodeEventBatch(wire).ok());
}

TEST(TelemetryCodecHardening, RelationUpdateArityMismatchIsRejected) {
  // Declared arity 3 but tuples carrying 2 attributes each cannot decode
  // into ragged tuples.
  RelationUpdateMsg msg;
  msg.relation = "r";
  msg.arity = 2;
  msg.tuples.push_back({{1, 2}, 1});
  std::string wire = EncodeRelationUpdate(msg);
  const size_t arity_at = wire.find(" 2 ");
  ASSERT_NE(arity_at, std::string::npos);
  wire.replace(arity_at, 3, " 3 ");
  EXPECT_FALSE(DecodeRelationUpdate(wire).ok());
}

}  // namespace
}  // namespace dist
}  // namespace skimjoin
