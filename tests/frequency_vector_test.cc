#include "stream/frequency_vector.h"

#include "gtest/gtest.h"
#include "stream/stream_element.h"

namespace skimjoin {
namespace stream {
namespace {

TEST(FrequencyVectorTest, StartsAtZero) {
  FrequencyVector fv(10);
  EXPECT_EQ(fv.domain_size(), 10u);
  for (uint64_t v = 0; v < 10; ++v) EXPECT_EQ(fv.Get(v), 0);
  EXPECT_EQ(fv.TotalCount(), 0);
  EXPECT_EQ(fv.SupportSize(), 0u);
  EXPECT_EQ(fv.SelfJoinSize(), 0);
}

TEST(FrequencyVectorTest, AddAndGet) {
  FrequencyVector fv(8);
  fv.Add(3, 5);
  fv.Add(3, 2);
  fv.Add(7, -1);
  EXPECT_EQ(fv.Get(3), 7);
  EXPECT_EQ(fv.Get(7), -1);
  EXPECT_EQ(fv.TotalCount(), 6);
  EXPECT_EQ(fv.SupportSize(), 2u);
}

TEST(FrequencyVectorTest, ApplyStreamElements) {
  FrequencyVector fv(4);
  fv.Apply(Insert(1));
  fv.Apply(Insert(1));
  fv.Apply(Delete(1));
  fv.Apply(Weighted(2, 10));
  EXPECT_EQ(fv.Get(1), 1);
  EXPECT_EQ(fv.Get(2), 10);
}

TEST(FrequencyVectorTest, SelfJoinSize) {
  FrequencyVector fv(5);
  fv.Add(0, 3);
  fv.Add(2, -4);
  EXPECT_EQ(fv.SelfJoinSize(), 9 + 16);
}

TEST(FrequencyVectorTest, JoinSizeMatchesHandComputation) {
  FrequencyVector f(6);
  FrequencyVector g(6);
  f.Add(1, 2);
  f.Add(3, 5);
  g.Add(1, 7);
  g.Add(2, 100);  // no overlap with f
  g.Add(3, -1);
  EXPECT_EQ(JoinSize(f, g), 2 * 7 + 5 * (-1));
}

TEST(FrequencyVectorTest, JoinWithSelfIsSelfJoin) {
  FrequencyVector f(16);
  for (uint64_t v = 0; v < 16; ++v) f.Add(v, static_cast<int64_t>(v % 5));
  EXPECT_EQ(JoinSize(f, f), f.SelfJoinSize());
}

TEST(FrequencyVectorTest, DisjointSupportsJoinToZero) {
  FrequencyVector f(8);
  FrequencyVector g(8);
  f.Add(0, 4);
  f.Add(1, 4);
  g.Add(6, 9);
  g.Add(7, 9);
  EXPECT_EQ(JoinSize(f, g), 0);
}

TEST(FrequencyVectorTest, SubtractComponentwise) {
  FrequencyVector f(4);
  FrequencyVector g(4);
  f.Add(0, 10);
  f.Add(1, 5);
  g.Add(0, 3);
  g.Add(2, 2);
  f.Subtract(g);
  EXPECT_EQ(f.Get(0), 7);
  EXPECT_EQ(f.Get(1), 5);
  EXPECT_EQ(f.Get(2), -2);
}

TEST(FrequencyVectorTest, NegativeNetFrequenciesSupported) {
  FrequencyVector fv(3);
  fv.Apply(Delete(2));
  fv.Apply(Delete(2));
  EXPECT_EQ(fv.Get(2), -2);
  EXPECT_EQ(fv.SelfJoinSize(), 4);
}

TEST(FrequencyVectorDeathTest, OutOfDomainValueAborts) {
  FrequencyVector fv(4);
  EXPECT_DEATH(fv.Add(4, 1), "domain");
  EXPECT_DEATH((void)fv.Get(100), "domain");
}

TEST(FrequencyVectorDeathTest, JoinSizeRequiresEqualDomains) {
  FrequencyVector f(4);
  FrequencyVector g(8);
  EXPECT_DEATH((void)JoinSize(f, g), "");
}

TEST(StreamElementTest, Factories) {
  EXPECT_EQ(Insert(5), (StreamElement{5, 1}));
  EXPECT_EQ(Delete(5), (StreamElement{5, -1}));
  EXPECT_EQ(Weighted(5, 42), (StreamElement{5, 42}));
}

}  // namespace
}  // namespace stream
}  // namespace skimjoin
