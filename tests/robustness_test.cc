// Robustness tests: malformed/truncated serialized records must produce
// Status errors (never crashes or silent corruption), and the complexity
// claims the library documents must hold as coarse runtime ratios.

#include <chrono>
#include <sstream>
#include <string>
#include <utility>

#include "core/skimmed_sketch.h"
#include "gtest/gtest.h"
#include "sketch/agms_sketch.h"
#include "sketch/hash_sketch.h"
#include "util/random.h"
#include "util/timer.h"

namespace skimjoin {
namespace {

// Serialize a populated sketch, then attempt deserialization from every
// prefix length (sampled): all failures must be clean Status errors.
TEST(SerializationFuzzTest, HashSketchTruncationsAlwaysFailCleanly) {
  auto sketch = *sketch::HashSketch::Create({5, 32}, 3);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) sketch.Update(rng.NextUint64Below(512), 1);
  std::stringstream buffer;
  ASSERT_TRUE(sketch.SerializeTo(buffer).ok());
  const std::string full = buffer.str();
  int clean_failures = 0;
  for (size_t len = 0; len + 1 < full.size(); len += 7) {
    std::stringstream truncated(full.substr(0, len));
    StatusOr<sketch::HashSketch> result =
        sketch::HashSketch::DeserializeFrom(truncated);
    if (!result.ok()) ++clean_failures;
  }
  // Every strict prefix must fail (the counter block length is fixed by
  // the header, so a prefix can never be a valid record).
  EXPECT_EQ(clean_failures,
            static_cast<int>((full.size() - 1 + 6) / 7));
}

TEST(SerializationFuzzTest, SkimmedSketchBitFlipsFailOrRoundTrip) {
  core::SkimmedSketchConfig config;
  config.domain_size = 256;
  config.num_tables = 3;
  config.num_buckets = 32;
  config.use_dyadic_skim = true;
  config.dyadic_num_buckets = 8;
  auto sketch = *core::SkimmedSketch::Create(config, 5);
  sketch.Update(7, 100);
  std::stringstream buffer;
  ASSERT_TRUE(sketch.SerializeTo(buffer).ok());
  const std::string full = buffer.str();

  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = full;
    const size_t pos = rng.NextUint64Below(corrupted.size());
    corrupted[pos] = static_cast<char>('A' + rng.NextUint64Below(26));
    std::stringstream in(corrupted);
    // Must never crash; either a clean error or a parse that happened to
    // stay structurally valid (e.g., a digit changed inside a counter).
    StatusOr<core::SkimmedSketch> result =
        core::SkimmedSketch::DeserializeFrom(in);
    if (result.ok()) {
      // A surviving parse must still be a structurally sound sketch.
      (void)result->EstimatePointFrequency(7);
    }
  }
  SUCCEED();
}

// Complexity smoke: hash-sketch updates must be dramatically cheaper than
// basic AGMS updates at the same space (the paper's per-element claim),
// with a coarse ratio so the test is robust on any machine.
TEST(ComplexitySmokeTest, HashSketchUpdatesBeatAgmsUpdatesAtEqualSpace) {
  constexpr uint64_t kSpace = 4096;
  auto agms = *sketch::AgmsSketch::Create({kSpace / 8, 8}, 1);
  auto hash = *sketch::HashSketch::Create({8, kSpace / 8}, 1);
  Rng rng(3);
  constexpr int kUpdates = 3000;

  Timer agms_timer;
  for (int i = 0; i < kUpdates; ++i) {
    agms.Update(rng.NextUint64Below(1u << 20), 1);
  }
  const double agms_seconds = agms_timer.ElapsedSeconds();

  Timer hash_timer;
  for (int i = 0; i < kUpdates; ++i) {
    hash.Update(rng.NextUint64Below(1u << 20), 1);
  }
  const double hash_seconds = hash_timer.ElapsedSeconds();

  // AGMS touches 4096 counters per element, the hash sketch touches 8; a
  // 10x wall-clock gap is a very conservative floor for that 512x work gap.
  EXPECT_GT(agms_seconds, 10.0 * hash_seconds)
      << "agms " << agms_seconds << "s vs hash " << hash_seconds << "s";
}

// Dyadic skim cost must not scale with the domain (log factor only):
// skimming a 2^18 domain must not cost vastly more than a 2^12 domain.
TEST(ComplexitySmokeTest, DyadicSkimIsDomainScanFree) {
  auto build = [](uint64_t domain) {
    core::SkimmedSketchConfig config;
    config.domain_size = domain;
    config.num_tables = 5;
    config.num_buckets = 256;
    config.dyadic_num_buckets = 64;
    config.use_dyadic_skim = true;
    auto sketch = *core::SkimmedSketch::Create(config, 7);
    Rng rng(8);
    for (int i = 0; i < 5000; ++i) {
      sketch.Update(rng.NextUint64Below(domain / 2), 1);
    }
    return sketch;
  };
  const auto small = build(1u << 12);
  const auto large = build(1u << 18);

  Timer small_timer;
  for (int i = 0; i < 20; ++i) (void)small.HeavyHitters(50);
  const double small_seconds = small_timer.ElapsedSeconds();
  Timer large_timer;
  for (int i = 0; i < 20; ++i) (void)large.HeavyHitters(50);
  const double large_seconds = large_timer.ElapsedSeconds();

  // 64x domain growth must cost far less than 16x skim time (log growth
  // plus constant factors); a naive scan would be ~64x.
  EXPECT_LT(large_seconds, 16.0 * small_seconds + 0.01)
      << "small " << small_seconds << "s vs large " << large_seconds << "s";
}

}  // namespace
}  // namespace skimjoin
