#include "sketch/partitioned_agms.h"

#include <utility>

#include "gtest/gtest.h"
#include "stream/exact.h"
#include "stream/zipf.h"
#include "util/stats.h"

namespace skimjoin {
namespace sketch {
namespace {

using stream::FrequencyVector;

FrequencyVector SkewedStats(uint64_t domain, uint64_t count, uint64_t shift) {
  return stream::ZipfDistribution(domain, 1.2, shift)
      .ExpectedFrequencies(count);
}

TEST(PlanPartitionsTest, ValidatesArguments) {
  FrequencyVector f(64);
  FrequencyVector g(64);
  FrequencyVector wrong(32);
  EXPECT_FALSE(PlanPartitions(f, wrong, 4, 1024, 5).ok());
  EXPECT_FALSE(PlanPartitions(f, g, 0, 1024, 5).ok());
  EXPECT_FALSE(PlanPartitions(f, g, 65, 1024, 5).ok());
  EXPECT_FALSE(PlanPartitions(f, g, 4, 10, 5).ok());  // < partitions·medians
  EXPECT_TRUE(PlanPartitions(f, g, 4, 1024, 5).ok());
}

TEST(PlanPartitionsTest, ProducesWellFormedPlans) {
  const FrequencyVector f = SkewedStats(1024, 50000, 0);
  const FrequencyVector g = SkewedStats(1024, 50000, 16);
  StatusOr<PartitionPlan> plan = PlanPartitions(f, g, 8, 4096, 5);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->boundaries.front(), 0u);
  EXPECT_EQ(plan->boundaries.back(), 1024u);
  EXPECT_EQ(plan->configs.size() + 1, plan->boundaries.size());
  for (size_t i = 1; i < plan->boundaries.size(); ++i) {
    EXPECT_GT(plan->boundaries[i], plan->boundaries[i - 1]);
  }
  EXPECT_LE(plan->num_partitions(), 8u);
  // Budget respected within rounding.
  EXPECT_LE(plan->TotalCounters(), 4096u + 8 * 5);
}

TEST(PlanPartitionsTest, HeavyRegionGetsNarrowPartitionsAndMoreSpace) {
  // All mass in [0, 16): partitions should slice the head finely and the
  // head partitions should receive most of the space.
  FrequencyVector f(1024);
  FrequencyVector g(1024);
  for (uint64_t v = 0; v < 16; ++v) {
    f.Add(v, 1000);
    g.Add(v, 1000);
  }
  for (uint64_t v = 16; v < 1024; ++v) {
    f.Add(v, 1);
    g.Add(v, 1);
  }
  StatusOr<PartitionPlan> plan = PlanPartitions(f, g, 4, 4096, 5);
  ASSERT_TRUE(plan.ok());
  // The first boundary after 0 should land inside (or just past) the head.
  EXPECT_LE(plan->boundaries[1], 32u);
  // The head partition holds more counters than the tail partition.
  EXPECT_GT(plan->configs.front().TotalCounters(),
            plan->configs.back().TotalCounters());
}

TEST(PartitionedAgmsTest, CreateValidatesPlan) {
  PartitionPlan plan;
  plan.domain_size = 64;
  plan.boundaries = {0, 64};
  plan.configs = {{8, 3}};
  EXPECT_TRUE(PartitionedAgmsSketch::Create(plan, 1).ok());

  PartitionPlan bad = plan;
  bad.boundaries = {0, 32};  // does not reach the domain end
  EXPECT_FALSE(PartitionedAgmsSketch::Create(bad, 1).ok());
  bad = plan;
  bad.boundaries = {0, 40, 32, 64};  // not increasing
  bad.configs = {{8, 3}, {8, 3}, {8, 3}};
  EXPECT_FALSE(PartitionedAgmsSketch::Create(bad, 1).ok());
  bad = plan;
  bad.configs = {};  // arity mismatch with boundaries
  EXPECT_FALSE(PartitionedAgmsSketch::Create(bad, 1).ok());
}

TEST(PartitionedAgmsTest, SinglePartitionMatchesPlainAgms) {
  PartitionPlan plan;
  plan.domain_size = 256;
  plan.boundaries = {0, 256};
  plan.configs = {{32, 5}};
  auto pf = *PartitionedAgmsSketch::Create(plan, 7);
  auto pg = *PartitionedAgmsSketch::Create(plan, 7);
  auto af = *AgmsSketch::Create({32, 5}, 7);
  auto ag = *AgmsSketch::Create({32, 5}, 7);
  for (uint64_t v = 0; v < 100; ++v) {
    pf.Update(v, 2);
    af.Update(v, 2);
    pg.Update(v, 3);
    ag.Update(v, 3);
  }
  EXPECT_DOUBLE_EQ(*PartitionedAgmsSketch::EstimateJoinSize(pf, pg),
                   *AgmsSketch::EstimateJoinSize(af, ag));
}

TEST(PartitionedAgmsTest, UpdatesRouteToExactlyOnePartition) {
  PartitionPlan plan;
  plan.domain_size = 100;
  plan.boundaries = {0, 10, 50, 100};
  plan.configs = {{4, 3}, {4, 3}, {4, 3}};
  auto f = *PartitionedAgmsSketch::Create(plan, 3);
  auto g = *PartitionedAgmsSketch::Create(plan, 3);
  // Value 5 lives in partition 0; value 60 in partition 2. They never
  // interact: the join estimate of disjoint-partition streams is exactly 0.
  f.Update(5, 100);
  g.Update(60, 100);
  EXPECT_DOUBLE_EQ(*PartitionedAgmsSketch::EstimateJoinSize(f, g), 0.0);
  // Same partition, same value: exact product.
  g.Update(5, 7);
  EXPECT_DOUBLE_EQ(*PartitionedAgmsSketch::EstimateJoinSize(f, g), 700.0);
}

TEST(PartitionedAgmsTest, IncompatiblePlansRejected) {
  PartitionPlan a;
  a.domain_size = 64;
  a.boundaries = {0, 32, 64};
  a.configs = {{4, 3}, {4, 3}};
  PartitionPlan b = a;
  b.boundaries = {0, 16, 64};
  auto fa = *PartitionedAgmsSketch::Create(a, 1);
  auto fb = *PartitionedAgmsSketch::Create(b, 1);
  auto other_seed = *PartitionedAgmsSketch::Create(a, 2);
  EXPECT_FALSE(PartitionedAgmsSketch::EstimateJoinSize(fa, fb).ok());
  EXPECT_FALSE(PartitionedAgmsSketch::EstimateJoinSize(fa, other_seed).ok());
}

TEST(PartitionedAgmsTest, BeatsPlainAgmsGivenExactStatsOnSkewedData) {
  // The Dobra et al. premise: WITH a-priori statistics, partitioning
  // reduces error below monolithic AGMS at equal space.
  constexpr uint64_t kDomain = 1u << 10;
  const FrequencyVector f = SkewedStats(kDomain, 100000, 0);
  const FrequencyVector g = SkewedStats(kDomain, 100000, 8);
  const double exact = static_cast<double>(stream::JoinSize(f, g));
  constexpr uint64_t kSpace = 2048;

  auto error_of = [&](double estimate) {
    return std::abs(estimate - exact) / exact;
  };
  std::vector<double> plain_errors, partitioned_errors;
  StatusOr<PartitionPlan> plan = PlanPartitions(f, g, 8, kSpace, 5);
  ASSERT_TRUE(plan.ok());
  for (uint64_t seed = 40; seed < 47; ++seed) {
    auto af = *AgmsSketch::Create({kSpace / 5, 5}, seed);
    auto ag = *AgmsSketch::Create({kSpace / 5, 5}, seed);
    af.Absorb(f);
    ag.Absorb(g);
    plain_errors.push_back(error_of(*AgmsSketch::EstimateJoinSize(af, ag)));

    auto pf = *PartitionedAgmsSketch::Create(*plan, seed);
    auto pg = *PartitionedAgmsSketch::Create(*plan, seed);
    pf.Absorb(f);
    pg.Absorb(g);
    partitioned_errors.push_back(
        error_of(*PartitionedAgmsSketch::EstimateJoinSize(pf, pg)));
  }
  EXPECT_LT(Median(partitioned_errors), Median(plain_errors));
}

TEST(PartitionedAgmsDeathTest, OutOfDomainValueAborts) {
  PartitionPlan plan;
  plan.domain_size = 64;
  plan.boundaries = {0, 64};
  plan.configs = {{4, 3}};
  auto sketch = *PartitionedAgmsSketch::Create(plan, 1);
  EXPECT_DEATH(sketch.Update(64, 1), "");
}

}  // namespace
}  // namespace sketch
}  // namespace skimjoin
