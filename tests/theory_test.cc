#include "core/theory.h"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "core/skimmed_sketch.h"
#include "gtest/gtest.h"
#include "sketch/agms_sketch.h"
#include "stream/zipf.h"

namespace skimjoin {
namespace core {
namespace {

TEST(TheoryTest, AgmsBoundFormula) {
  // 4·sqrt(100·400/16) = 4·sqrt(2500) = 200.
  EXPECT_DOUBLE_EQ(AgmsAdditiveErrorBound(100, 400, 16), 200.0);
}

TEST(TheoryTest, AgmsBoundShrinksWithMeans) {
  EXPECT_GT(AgmsAdditiveErrorBound(1e6, 1e6, 16),
            AgmsAdditiveErrorBound(1e6, 1e6, 64));
  EXPECT_DOUBLE_EQ(AgmsAdditiveErrorBound(1e6, 1e6, 16),
                   2 * AgmsAdditiveErrorBound(1e6, 1e6, 64));
}

TEST(TheoryTest, AgmsSpaceForErrorValidatesAndScales) {
  EXPECT_FALSE(AgmsSpaceForError(0, 1, 1, 0.1, 0.1).ok());
  EXPECT_FALSE(AgmsSpaceForError(1, 1, 1, 0.0, 0.1).ok());
  EXPECT_FALSE(AgmsSpaceForError(1, 1, 1, 0.1, 1.5).ok());
  StatusOr<uint64_t> loose = AgmsSpaceForError(1e8, 1e8, 1e6, 0.5, 0.1);
  StatusOr<uint64_t> tight = AgmsSpaceForError(1e8, 1e8, 1e6, 0.25, 0.1);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  // Quartering epsilon multiplies space by 4 (quadratic dependence).
  EXPECT_NEAR(static_cast<double>(*tight) / static_cast<double>(*loose), 4.0,
              0.1);
}

TEST(TheoryTest, SkimmedBoundFormula) {
  // 8·1000·2000/100 = 160000.
  EXPECT_DOUBLE_EQ(SkimmedAdditiveErrorBound(1000, 2000, 100), 160000.0);
  EXPECT_DOUBLE_EQ(SkimmedAdditiveErrorBound(1000, 2000, 100, 4.0), 80000.0);
}

TEST(TheoryTest, SkimmedBucketsMatchLowerBoundShape) {
  // Skimmed space scales as 1/ε (linear), not 1/ε² like AGMS.
  StatusOr<uint64_t> loose = SkimmedBucketsForError(1e5, 1e5, 1e6, 0.5);
  StatusOr<uint64_t> tight = SkimmedBucketsForError(1e5, 1e5, 1e6, 0.25);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  EXPECT_NEAR(static_cast<double>(*tight) / static_cast<double>(*loose), 2.0,
              0.01);
}

TEST(TheoryTest, SkimmedSpaceBeatsAgmsSpaceOnSkewedMoments) {
  // The paper's headline: for skewed data (F2 ≈ n²·constant), skimmed space
  // ~ n²/(εJ) is the square root of AGMS space ~ (F2/(εJ))² ≈ (n²/(εJ))².
  const double n = 1e6;
  const double f2 = 1e11;  // strongly skewed: F2 close to n²/10
  const double join = 1e8;
  const double epsilon = 0.1;
  StatusOr<uint64_t> agms = AgmsSpaceForError(f2, f2, join, epsilon, 0.05);
  StatusOr<uint64_t> skim_buckets =
      SkimmedBucketsForError(n, n, join, epsilon);
  ASSERT_TRUE(agms.ok());
  ASSERT_TRUE(skim_buckets.ok());
  const uint64_t skim_total = *skim_buckets * TablesForConfidence(0.05);
  EXPECT_LT(skim_total, *agms / 100);
}

TEST(TheoryTest, TablesForConfidence) {
  EXPECT_EQ(TablesForConfidence(0.5), 3u);   // 2^-1.5 ≈ 0.35 <= 0.5 at s=3
  EXPECT_GE(TablesForConfidence(0.01), 13u);  // 2^-6.5 ≈ 0.011 > 0.01
  EXPECT_EQ(TablesForConfidence(0.01) % 2, 1u);
  // Monotone: stricter delta, more tables.
  EXPECT_GE(TablesForConfidence(0.001), TablesForConfidence(0.01));
}

TEST(TheoryTest, LowerBoundFormulaAndValidation) {
  StatusOr<uint64_t> bound = JoinSizeSpaceLowerBound(1e6, 1e9, 0.1);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound, static_cast<uint64_t>(std::ceil(1e12 / 1e8)));
  EXPECT_FALSE(JoinSizeSpaceLowerBound(0, 1, 0.1).ok());
  EXPECT_FALSE(JoinSizeSpaceLowerBound(1, 0, 0.1).ok());
  EXPECT_FALSE(JoinSizeSpaceLowerBound(1, 1, 0).ok());
}

// The envelopes must actually hold against measurements: run both
// estimators on a skewed workload and check |est - J| stays below the
// theorem bounds for a strong majority of seeds (the bounds are
// high-probability statements).
TEST(TheoryTest, MeasuredErrorsRespectBounds) {
  constexpr uint64_t kDomain = 1u << 10;
  constexpr uint64_t kCount = 50000;
  const stream::FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.2).ExpectedFrequencies(kCount);
  const stream::FrequencyVector g =
      stream::ZipfDistribution(kDomain, 1.2, /*shift=*/16)
          .ExpectedFrequencies(kCount);
  const double exact = static_cast<double>(stream::JoinSize(f, g));
  const double f2_f = static_cast<double>(f.SelfJoinSize());
  const double f2_g = static_cast<double>(g.SelfJoinSize());

  constexpr uint64_t kMeans = 64;
  constexpr uint64_t kBuckets = 512;
  const double agms_bound = AgmsAdditiveErrorBound(f2_f, f2_g, kMeans);
  const double skim_bound = SkimmedAdditiveErrorBound(
      static_cast<double>(kCount), static_cast<double>(kCount), kBuckets);

  int agms_ok = 0;
  int skim_ok = 0;
  constexpr int kSeeds = 10;
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    auto af = *sketch::AgmsSketch::Create({kMeans, 5}, seed + 20);
    auto ag = *sketch::AgmsSketch::Create({kMeans, 5}, seed + 20);
    af.Absorb(f);
    ag.Absorb(g);
    const double agms_est = *sketch::AgmsSketch::EstimateJoinSize(af, ag);
    agms_ok += (std::abs(agms_est - exact) <= agms_bound);

    SkimmedSketchConfig config;
    config.domain_size = kDomain;
    config.num_tables = 5;
    config.num_buckets = kBuckets;
    config.use_dyadic_skim = false;
    auto sf = *SkimmedSketch::Create(config, seed + 20);
    auto sg = *SkimmedSketch::Create(config, seed + 20);
    sf.Absorb(f);
    sg.Absorb(g);
    const double skim_est = *SkimmedSketch::EstimateJoinSize(sf, sg);
    skim_ok += (std::abs(skim_est - exact) <= skim_bound);
  }
  EXPECT_GE(agms_ok, 8) << "AGMS bound " << agms_bound;
  EXPECT_GE(skim_ok, 8) << "skimmed bound " << skim_bound;
}

}  // namespace
}  // namespace core
}  // namespace skimjoin
