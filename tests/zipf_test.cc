#include "stream/zipf.h"

#include <cstdint>
#include <tuple>

#include "gtest/gtest.h"
#include "stream/frequency_vector.h"
#include "util/random.h"

namespace skimjoin {
namespace stream {
namespace {

TEST(ZipfTest, SamplesStayInDomain) {
  ZipfDistribution zipf(100, 1.0);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(zipf.Sample(&rng), 100u);
}

TEST(ZipfTest, ShiftedSamplesStayAboveShift) {
  ZipfDistribution zipf(100, 1.0, /*shift=*/40);
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = zipf.Sample(&rng);
    EXPECT_GE(v, 40u);
    EXPECT_LT(v, 100u);
  }
}

TEST(ZipfTest, ExpectedFrequenciesSumExactlyToCount) {
  for (double z : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    ZipfDistribution zipf(256, z);
    const FrequencyVector fv = zipf.ExpectedFrequencies(10000);
    EXPECT_EQ(fv.TotalCount(), 10000);
  }
}

TEST(ZipfTest, ExpectedFrequenciesAreNonIncreasingInValue) {
  ZipfDistribution zipf(128, 1.2);
  const FrequencyVector fv = zipf.ExpectedFrequencies(100000);
  for (uint64_t v = 1; v < 128; ++v) {
    EXPECT_GE(fv.Get(v - 1), fv.Get(v)) << "v=" << v;
  }
}

TEST(ZipfTest, HigherSkewConcentratesMass) {
  const FrequencyVector low =
      ZipfDistribution(1024, 0.5).ExpectedFrequencies(100000);
  const FrequencyVector high =
      ZipfDistribution(1024, 1.5).ExpectedFrequencies(100000);
  EXPECT_GT(high.Get(0), low.Get(0));
  EXPECT_GT(high.SelfJoinSize(), low.SelfJoinSize());
}

TEST(ZipfTest, ZeroSkewIsNearUniform) {
  const FrequencyVector fv =
      ZipfDistribution(100, 0.0).ExpectedFrequencies(100000);
  for (uint64_t v = 0; v < 100; ++v) EXPECT_NEAR(fv.Get(v), 1000, 1);
}

TEST(ZipfTest, ShiftTranslatesExpectedFrequencies) {
  const FrequencyVector base =
      ZipfDistribution(256, 1.0).ExpectedFrequencies(50000);
  const FrequencyVector shifted =
      ZipfDistribution(256, 1.0, /*shift=*/10).ExpectedFrequencies(50000);
  for (uint64_t v = 0; v < 10; ++v) EXPECT_EQ(shifted.Get(v), 0);
  // The shifted distribution renormalizes over a 246-value support, so
  // frequencies are close to (not exactly) the translated originals.
  for (uint64_t v = 10; v < 50; ++v) {
    EXPECT_NEAR(shifted.Get(v), base.Get(v - 10),
                base.Get(v - 10) / 10 + 2);
  }
}

TEST(ZipfTest, GenerateElementsAllInserts) {
  ZipfDistribution zipf(64, 1.0);
  Rng rng(3);
  const auto elements = zipf.GenerateElements(500, &rng);
  ASSERT_EQ(elements.size(), 500u);
  for (const auto& e : elements) {
    EXPECT_EQ(e.weight, 1);
    EXPECT_LT(e.value, 64u);
  }
}

TEST(ZipfTest, SampledFrequenciesTrackExpectation) {
  ZipfDistribution zipf(64, 1.0);
  Rng rng(7);
  FrequencyVector sampled(64);
  constexpr uint64_t kCount = 200000;
  for (uint64_t i = 0; i < kCount; ++i) sampled.Add(zipf.Sample(&rng), 1);
  const FrequencyVector expected = zipf.ExpectedFrequencies(kCount);
  // Head values: within 5% relative.
  for (uint64_t v = 0; v < 5; ++v) {
    EXPECT_NEAR(sampled.Get(v), expected.Get(v), expected.Get(v) / 20 + 50);
  }
}

// Property: the paper's shift knob shrinks the join size monotonically
// (join of Zipf with its right-shifted copy).
class ZipfShiftJoinTest
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(ZipfShiftJoinTest, JoinSizeShrinksWithShift) {
  const double z = std::get<0>(GetParam());
  const uint64_t domain = std::get<1>(GetParam());
  const ZipfDistribution base(domain, z);
  const FrequencyVector f = base.ExpectedFrequencies(100000);
  int64_t previous = 0;
  bool first = true;
  for (uint64_t shift : {0ull, 8ull, 32ull, 128ull}) {
    const FrequencyVector g =
        ZipfDistribution(domain, z, shift).ExpectedFrequencies(100000);
    const int64_t join = JoinSize(f, g);
    if (!first) {
      EXPECT_LE(join, previous) << "shift=" << shift;
    }
    previous = join;
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SkewAndDomain, ZipfShiftJoinTest,
    ::testing::Combine(::testing::Values(0.8, 1.0, 1.5),
                       ::testing::Values(uint64_t{512}, uint64_t{2048})));

}  // namespace
}  // namespace stream
}  // namespace skimjoin
