#include "hashing/fastmod.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "hashing/prime_field.h"
#include "util/random.h"

namespace skimjoin {
namespace hashing {
namespace {

// Dividends that stress the reduction: zeros, small values, every power of
// two, values straddling the field bound 2^61 - 1 (the largest a BucketHash
// ever reduces), and the 64-bit edges.
std::vector<uint64_t> EdgeDividends() {
  std::vector<uint64_t> dividends = {0,
                                     1,
                                     2,
                                     3,
                                     kMersennePrime61 - 1,
                                     kMersennePrime61,
                                     kMersennePrime61 + 1,
                                     ~uint64_t{0} - 1,
                                     ~uint64_t{0}};
  for (int shift = 0; shift < 64; ++shift) {
    const uint64_t p = uint64_t{1} << shift;
    dividends.push_back(p - 1);
    dividends.push_back(p);
    dividends.push_back(p + 1);
  }
  return dividends;
}

// Divisors the library actually uses (bucket counts from configs, tests and
// benches are small powers of two and their neighbours) plus adversarial
// ones: 1, primes, and the 64-bit edges where the magic-number wraps.
std::vector<uint64_t> EdgeDivisors() {
  std::vector<uint64_t> divisors;
  for (uint64_t d = 1; d <= 70; ++d) divisors.push_back(d);
  for (int shift = 7; shift < 64; ++shift) {
    const uint64_t p = uint64_t{1} << shift;
    divisors.push_back(p - 1);
    divisors.push_back(p);
    divisors.push_back(p + 1);
  }
  divisors.insert(divisors.end(),
                  {kMersennePrime61, ~uint64_t{0} - 1, ~uint64_t{0}});
  return divisors;
}

TEST(FastDivisorTest, MatchesHardwareModOnEdgeGrid) {
  for (const uint64_t d : EdgeDivisors()) {
    const FastDivisor divisor(d);
    ASSERT_EQ(divisor.divisor(), d);
    for (const uint64_t a : EdgeDividends()) {
      ASSERT_EQ(divisor.Mod(a), a % d) << "a=" << a << " d=" << d;
    }
  }
}

TEST(FastDivisorTest, MatchesHardwareModOnRandomPairs) {
  Rng rng(20260806);
  for (int trial = 0; trial < 200000; ++trial) {
    const uint64_t d = rng.NextUint64() | 1u;  // any odd divisor >= 1
    const uint64_t a = rng.NextUint64();
    const FastDivisor divisor(d);
    ASSERT_EQ(divisor.Mod(a), a % d) << "a=" << a << " d=" << d;
  }
}

// Every bucket count bench_update_time / bench_hashing / the default
// configs use, swept exhaustively over a contiguous dividend range plus
// random field elements (BucketHash reduces values < 2^61).
TEST(FastDivisorTest, ExhaustiveOverBenchBucketCounts) {
  const uint64_t bench_buckets[] = {64,  128,  256,  512,  1024,
                                    2048, 4096, 65536, 262144};
  Rng rng(42);
  for (const uint64_t d : bench_buckets) {
    const FastDivisor divisor(d);
    for (uint64_t a = 0; a < 1u << 16; ++a) {
      ASSERT_EQ(divisor.Mod(a), a % d) << "a=" << a << " d=" << d;
    }
    for (int trial = 0; trial < 100000; ++trial) {
      const uint64_t a = rng.NextUint64Below(kMersennePrime61);
      ASSERT_EQ(divisor.Mod(a), a % d) << "a=" << a << " d=" << d;
    }
  }
}

TEST(FastDivisorTest, DivisorOneAlwaysReturnsZero) {
  const FastDivisor divisor(1);
  for (const uint64_t a : EdgeDividends()) {
    ASSERT_EQ(divisor.Mod(a), 0u) << "a=" << a;
  }
}

TEST(FastDivisorTest, DefaultConstructedBehavesAsDivisorOne) {
  const FastDivisor divisor;
  EXPECT_EQ(divisor.divisor(), 1u);
  EXPECT_EQ(divisor.Mod(~uint64_t{0}), 0u);
}

}  // namespace
}  // namespace hashing
}  // namespace skimjoin
