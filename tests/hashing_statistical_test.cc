// Deeper statistical validation of the hash families: chi-square uniformity
// sweeps, empirical pairwise/four-wise independence, and avalanche checks.
// These complement the functional tests in kwise_hash_test.cc /
// sign_hash_test.cc with distribution-level assertions.

#include <cmath>
#include <cstdlib>
#include <vector>

#include "gtest/gtest.h"
#include "hashing/kwise_hash.h"
#include "hashing/prime_field.h"
#include "hashing/sign_hash.h"
#include "hashing/tabulation_hash.h"
#include "util/random.h"

namespace skimjoin {
namespace hashing {
namespace {

// Chi-square statistic for an observed histogram against a uniform
// expectation.
double ChiSquare(const std::vector<int>& histogram, double expected) {
  double chi = 0.0;
  for (int observed : histogram) {
    const double diff = static_cast<double>(observed) - expected;
    chi += diff * diff / expected;
  }
  return chi;
}

// 99.9th percentile of chi-square with (buckets - 1) dof, approximated by
// the Wilson–Hilferty transform — good enough as a loose test ceiling.
double ChiSquareCeiling(int buckets) {
  const double k = buckets - 1;
  const double z = 3.09;  // ~99.9%
  const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

TEST(HashingStatisticalTest, BucketHashChiSquareOverSequentialKeys) {
  constexpr int kBuckets = 64;
  constexpr int kDraws = 64000;
  Rng rng(1);
  BucketHash h(kBuckets, &rng);
  std::vector<int> histogram(kBuckets, 0);
  for (int x = 0; x < kDraws; ++x) ++histogram[h(static_cast<uint64_t>(x))];
  EXPECT_LT(ChiSquare(histogram, kDraws / static_cast<double>(kBuckets)),
            ChiSquareCeiling(kBuckets));
}

TEST(HashingStatisticalTest, BucketHashChiSquareOverStridedKeys) {
  // Strided keys (e.g., aligned pointers / even ports) must still spread.
  constexpr int kBuckets = 64;
  constexpr int kDraws = 64000;
  Rng rng(2);
  BucketHash h(kBuckets, &rng);
  std::vector<int> histogram(kBuckets, 0);
  for (int x = 0; x < kDraws; ++x) {
    ++histogram[h(static_cast<uint64_t>(x) * 4096)];
  }
  EXPECT_LT(ChiSquare(histogram, kDraws / static_cast<double>(kBuckets)),
            ChiSquareCeiling(kBuckets));
}

TEST(HashingStatisticalTest, TabulationChiSquareOverSequentialKeys) {
  constexpr int kBuckets = 64;
  constexpr int kDraws = 64000;
  Rng rng(3);
  TabulationHash h(&rng);
  std::vector<int> histogram(kBuckets, 0);
  for (int x = 0; x < kDraws; ++x) {
    ++histogram[h.Bucket(static_cast<uint64_t>(x), kBuckets)];
  }
  EXPECT_LT(ChiSquare(histogram, kDraws / static_cast<double>(kBuckets)),
            ChiSquareCeiling(kBuckets));
}

// Empirical pairwise independence of the sign family: over many family
// draws, the four (ξ(a), ξ(b)) outcome pairs are equally likely.
TEST(HashingStatisticalTest, SignPairsUniformAcrossFamilies) {
  constexpr int kFamilies = 8000;
  Rng seeder(4);
  std::vector<int> outcomes(4, 0);
  for (int f = 0; f < kFamilies; ++f) {
    Rng rng(seeder.NextUint64());
    SignHash xi(&rng);
    const int a = xi(1234) > 0 ? 1 : 0;
    const int b = xi(5678) > 0 ? 1 : 0;
    ++outcomes[a * 2 + b];
  }
  EXPECT_LT(ChiSquare(outcomes, kFamilies / 4.0), ChiSquareCeiling(4) + 10);
}

// Empirical FOUR-wise independence: all 16 sign patterns of four distinct
// values are equally likely across family draws — the property the AGMS
// variance analysis stands on.
TEST(HashingStatisticalTest, SignQuadruplesUniformAcrossFamilies) {
  constexpr int kFamilies = 32000;
  Rng seeder(5);
  std::vector<int> outcomes(16, 0);
  for (int f = 0; f < kFamilies; ++f) {
    Rng rng(seeder.NextUint64());
    SignHash xi(&rng);
    int pattern = 0;
    for (uint64_t v : {11ull, 22ull, 33ull, 44ull}) {
      pattern = pattern * 2 + (xi(v) > 0 ? 1 : 0);
    }
    ++outcomes[pattern];
  }
  EXPECT_LT(ChiSquare(outcomes, kFamilies / 16.0), ChiSquareCeiling(16) + 20);
}

// The Carter–Wegman full-width output should flip about half the output
// bits when one input bit flips, on average over keys.
TEST(HashingStatisticalTest, KWiseHashAvalanche) {
  Rng rng(6);
  KWiseHash h(4, &rng);
  Rng keys(7);
  double total_flips = 0.0;
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    const uint64_t x = keys.NextUint64Below(kMersennePrime61);
    const uint64_t y = x ^ (uint64_t{1} << keys.NextUint64Below(60));
    total_flips += __builtin_popcountll(h(x) ^ h(y));
  }
  const double mean_flips = total_flips / kTrials;
  // 61-bit outputs: expect ~30.5 bit flips; allow a wide window.
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 37.0);
}

TEST(HashingStatisticalTest, TabulationAvalanche) {
  Rng rng(8);
  TabulationHash h(&rng);
  Rng keys(9);
  double total_flips = 0.0;
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    const uint64_t x = keys.NextUint64();
    const uint64_t y = x ^ (uint64_t{1} << keys.NextUint64Below(64));
    total_flips += __builtin_popcountll(h(x) ^ h(y));
  }
  const double mean_flips = total_flips / kTrials;
  EXPECT_GT(mean_flips, 26.0);
  EXPECT_LT(mean_flips, 38.0);
}

// Distinct family members disagree: estimates built from different seeds
// are independent, which the median boost requires.
TEST(HashingStatisticalTest, FamilyMembersAreDecorrelated) {
  Rng rng(10);
  BucketHash h1(64, &rng);
  BucketHash h2(64, &rng);
  int agreements = 0;
  constexpr int kKeys = 6400;
  for (int x = 0; x < kKeys; ++x) {
    agreements += (h1(static_cast<uint64_t>(x)) ==
                   h2(static_cast<uint64_t>(x)));
  }
  // Expected agreement rate 1/64 ≈ 100; allow generous slack.
  EXPECT_LT(agreements, 200);
}

}  // namespace
}  // namespace hashing
}  // namespace skimjoin
