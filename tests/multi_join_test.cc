#include "query/multi_join.h"

#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace skimjoin {
namespace query {
namespace {

MultiJoinConfig ChainOfThree() {
  // R0(A0) ⋈ R1(A0, A1) ⋈ R2(A1).
  MultiJoinConfig config;
  config.num_means = 64;
  config.num_medians = 5;
  config.relation_attributes = {{0}, {0, 1}, {1}};
  return config;
}

MultiJoinEstimator MustCreate(const MultiJoinConfig& config, uint64_t seed) {
  StatusOr<MultiJoinEstimator> est = MultiJoinEstimator::Create(config, seed);
  EXPECT_TRUE(est.ok()) << est.status();
  return *std::move(est);
}

TEST(MultiJoinTest, CreateValidatesConfig) {
  MultiJoinConfig config = ChainOfThree();
  config.num_means = 0;
  EXPECT_FALSE(MultiJoinEstimator::Create(config, 1).ok());

  config = ChainOfThree();
  config.relation_attributes = {{0}};
  EXPECT_FALSE(MultiJoinEstimator::Create(config, 1).ok());

  config = ChainOfThree();
  config.relation_attributes = {{0}, {0, 1}, {1}, {1}};  // A1 used 3 times
  EXPECT_FALSE(MultiJoinEstimator::Create(config, 1).ok());

  config = ChainOfThree();
  config.relation_attributes = {{0}, {}, {0}};  // empty relation
  EXPECT_FALSE(MultiJoinEstimator::Create(config, 1).ok());

  EXPECT_TRUE(MultiJoinEstimator::Create(ChainOfThree(), 1).ok());
}

TEST(MultiJoinTest, UpdateValidatesRelationAndArity) {
  MultiJoinEstimator est = MustCreate(ChainOfThree(), 2);
  EXPECT_FALSE(est.Update(3, {1}, 1).ok());        // unknown relation
  EXPECT_FALSE(est.Update(0, {1, 2}, 1).ok());     // arity mismatch
  EXPECT_FALSE(est.Update(1, {1}, 1).ok());        // arity mismatch
  EXPECT_TRUE(est.Update(0, {1}, 1).ok());
  EXPECT_TRUE(est.Update(1, {1, 2}, 1).ok());
  EXPECT_TRUE(est.Update(2, {2}, 1).ok());
}

TEST(MultiJoinTest, EmptyEstimateIsZero) {
  MultiJoinEstimator est = MustCreate(ChainOfThree(), 3);
  EXPECT_DOUBLE_EQ(est.Estimate(), 0.0);
}

TEST(MultiJoinTest, SingleMatchingTupleChain) {
  // R0 = {(7)}, R1 = {(7, 9)}, R2 = {(9)}: join size 1. With a single
  // tuple per relation every atomic sketch is ±1 and the product is
  // ξ0(7)²·ξ1(9)² = 1 exactly.
  MultiJoinEstimator est = MustCreate(ChainOfThree(), 4);
  ASSERT_TRUE(est.Update(0, {7}, 1).ok());
  ASSERT_TRUE(est.Update(1, {7, 9}, 1).ok());
  ASSERT_TRUE(est.Update(2, {9}, 1).ok());
  EXPECT_DOUBLE_EQ(est.Estimate(), 1.0);
}

TEST(MultiJoinTest, ScalesWithMultiplicities) {
  MultiJoinEstimator est = MustCreate(ChainOfThree(), 5);
  ASSERT_TRUE(est.Update(0, {7}, 4).ok());
  ASSERT_TRUE(est.Update(1, {7, 9}, 3).ok());
  ASSERT_TRUE(est.Update(2, {9}, 2).ok());
  EXPECT_DOUBLE_EQ(est.Estimate(), 24.0);
}

TEST(MultiJoinTest, DeletesCancel) {
  MultiJoinEstimator est = MustCreate(ChainOfThree(), 6);
  ASSERT_TRUE(est.Update(0, {7}, 1).ok());
  ASSERT_TRUE(est.Update(1, {7, 9}, 1).ok());
  ASSERT_TRUE(est.Update(2, {9}, 1).ok());
  ASSERT_TRUE(est.Update(1, {7, 9}, -1).ok());  // retract the middle tuple
  EXPECT_DOUBLE_EQ(est.Estimate(), 0.0);
}

// Unbiasedness: average over independent seeds approaches the exact chain
// join size on a small random instance.
TEST(MultiJoinTest, UnbiasedAcrossSeedsOnRandomInstance) {
  constexpr uint64_t kDomain = 16;
  // Build small relations with explicit frequency tables.
  std::vector<int64_t> r0(kDomain, 0);
  std::vector<std::vector<int64_t>> r1(kDomain,
                                       std::vector<int64_t>(kDomain, 0));
  std::vector<int64_t> r2(kDomain, 0);
  Rng rng(7);
  for (int i = 0; i < 60; ++i) r0[rng.NextUint64Below(kDomain)] += 1;
  for (int i = 0; i < 60; ++i) {
    r1[rng.NextUint64Below(kDomain)][rng.NextUint64Below(kDomain)] += 1;
  }
  for (int i = 0; i < 60; ++i) r2[rng.NextUint64Below(kDomain)] += 1;

  double exact = 0.0;
  for (uint64_t u = 0; u < kDomain; ++u) {
    for (uint64_t v = 0; v < kDomain; ++v) {
      exact += static_cast<double>(r0[u]) * static_cast<double>(r1[u][v]) *
               static_cast<double>(r2[v]);
    }
  }
  ASSERT_GT(exact, 0.0);

  MultiJoinConfig config = ChainOfThree();
  config.num_means = 1;
  config.num_medians = 1;
  double sum = 0.0;
  constexpr int kSeeds = 400;
  for (int seed = 0; seed < kSeeds; ++seed) {
    MultiJoinEstimator est =
        MustCreate(config, static_cast<uint64_t>(seed) + 1000);
    for (uint64_t u = 0; u < kDomain; ++u) {
      if (r0[u] != 0) {
        ASSERT_TRUE(est.Update(0, {u}, r0[u]).ok());
      }
      for (uint64_t v = 0; v < kDomain; ++v) {
        if (r1[u][v] != 0) {
          ASSERT_TRUE(est.Update(1, {u, v}, r1[u][v]).ok());
        }
      }
    }
    for (uint64_t v = 0; v < kDomain; ++v) {
      if (r2[v] != 0) {
        ASSERT_TRUE(est.Update(2, {v}, r2[v]).ok());
      }
    }
    sum += est.Estimate();
  }
  EXPECT_NEAR(sum / kSeeds, exact, 0.35 * exact);
}

TEST(MultiJoinTest, TwoRelationCaseMatchesBinaryJoinSemantics) {
  // R0(A0) ⋈ R1(A0): the estimator reduces to the AGMS binary join.
  MultiJoinConfig config;
  config.num_means = 32;
  config.num_medians = 5;
  config.relation_attributes = {{0}, {0}};
  MultiJoinEstimator est = MustCreate(config, 8);
  ASSERT_TRUE(est.Update(0, {3}, 10).ok());
  ASSERT_TRUE(est.Update(1, {3}, 7).ok());
  EXPECT_DOUBLE_EQ(est.Estimate(), 70.0);
}

TEST(MultiJoinTest, FourRelationChain) {
  MultiJoinConfig config;
  config.num_means = 32;
  config.num_medians = 5;
  config.relation_attributes = {{0}, {0, 1}, {1, 2}, {2}};
  MultiJoinEstimator est = MustCreate(config, 9);
  ASSERT_TRUE(est.Update(0, {1}, 2).ok());
  ASSERT_TRUE(est.Update(1, {1, 2}, 3).ok());
  ASSERT_TRUE(est.Update(2, {2, 3}, 5).ok());
  ASSERT_TRUE(est.Update(3, {3}, 7).ok());
  EXPECT_DOUBLE_EQ(est.Estimate(), 2.0 * 3 * 5 * 7);
}

}  // namespace
}  // namespace query
}  // namespace skimjoin
