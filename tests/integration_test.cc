// End-to-end integration tests: realistic workloads flow from the
// generators through traces and the query engine to every estimator, with
// answers compared against the exact offline reference.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/skimmed_sketch.h"
#include "gtest/gtest.h"
#include "query/engine.h"
#include "stream/census_like.h"
#include "stream/exact.h"
#include "stream/trace_io.h"
#include "stream/zipf.h"
#include "util/random.h"

namespace skimjoin {
namespace {

using query::Engine;
using query::JoinQuerySpec;
using query::StreamUpdate;
using stream::FrequencyVector;
using stream::StreamElement;

double RatioError(double estimate, double exact) {
  if (estimate <= 0.0 || exact <= 0.0) return 10.0;
  return std::max(estimate, exact) / std::min(estimate, exact) - 1.0;
}

TEST(IntegrationTest, ZipfWorkloadThroughEngineAllEstimators) {
  constexpr uint64_t kDomain = 1u << 10;
  stream::ZipfDistribution zf(kDomain, 1.2);
  stream::ZipfDistribution zg(kDomain, 1.2, /*shift=*/16);
  Rng rng(1);
  const std::vector<StreamElement> f = zf.GenerateElements(40000, &rng);
  const std::vector<StreamElement> g = zg.GenerateElements(40000, &rng);
  const double exact =
      static_cast<double>(stream::ExactJoinSize(f, g, kDomain));
  ASSERT_GT(exact, 0.0);

  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({"f", kDomain}).ok());
  ASSERT_TRUE(engine.RegisterStream({"g", kDomain}).ok());

  std::vector<query::QueryId> queries;
  std::vector<core::EstimatorKind> kinds = {
      core::EstimatorKind::kAgms, core::EstimatorKind::kHashSketch,
      core::EstimatorKind::kSkimmedSketch};
  for (core::EstimatorKind kind : kinds) {
    JoinQuerySpec spec;
    spec.left_stream = "f";
    spec.right_stream = "g";
    spec.estimator.kind = kind;
    spec.estimator.space_counters = 2048;
    StatusOr<query::QueryId> query = engine.AddJoinQuery(spec, 99);
    ASSERT_TRUE(query.ok()) << query.status();
    queries.push_back(*query);
  }

  for (const StreamElement& e : f) {
    ASSERT_TRUE(engine.Update("f", StreamUpdate{e.value, e.weight, 0}).ok());
  }
  for (const StreamElement& e : g) {
    ASSERT_TRUE(engine.Update("g", StreamUpdate{e.value, e.weight, 0}).ok());
  }

  for (size_t i = 0; i < queries.size(); ++i) {
    StatusOr<double> answer = engine.AnswerJoin(queries[i]);
    ASSERT_TRUE(answer.ok());
    EXPECT_LT(RatioError(*answer, exact), 1.0)
        << core::EstimatorKindName(kinds[i]);
  }
}

TEST(IntegrationTest, TraceRoundTripFeedsIdenticalSketches) {
  constexpr uint64_t kDomain = 1u << 8;
  stream::ZipfDistribution zipf(kDomain, 1.0);
  Rng rng(2);
  const std::vector<StreamElement> elements = zipf.GenerateElements(5000, &rng);
  std::string path = ::testing::TempDir();
  path.append("/integration.trace");
  ASSERT_TRUE(stream::WriteTrace(path, elements).ok());
  StatusOr<std::vector<StreamElement>> replayed = stream::ReadTrace(path);
  ASSERT_TRUE(replayed.ok());

  core::SkimmedSketchConfig config;
  config.domain_size = kDomain;
  config.num_buckets = 128;
  config.use_dyadic_skim = true;
  auto direct = *core::SkimmedSketch::Create(config, 5);
  auto via_trace = *core::SkimmedSketch::Create(config, 5);
  for (const StreamElement& e : elements) direct.Update(e);
  for (const StreamElement& e : *replayed) via_trace.Update(e);
  for (uint64_t v = 0; v < kDomain; ++v) {
    EXPECT_EQ(direct.EstimatePointFrequency(v),
              via_trace.EstimatePointFrequency(v));
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, CensusLikeJoinSkimmedBeatsNothing) {
  // The census-like workload must flow end-to-end and produce a sane
  // estimate (the full comparison lives in bench_census).
  stream::CensusLikeGenerator::Options options;
  options.domain_size = 1u << 12;
  options.num_records = 30000;
  stream::CensusLikeGenerator gen(options, 77);
  const auto wage = gen.GenerateWageStream();
  const auto overtime = gen.GenerateOvertimeStream();
  const double exact = static_cast<double>(
      stream::ExactJoinSize(wage, overtime, options.domain_size));

  core::SkimmedSketchConfig config;
  config.domain_size = options.domain_size;
  config.num_buckets = 512;
  config.use_dyadic_skim = false;
  auto sf = *core::SkimmedSketch::Create(config, 9);
  auto sg = *core::SkimmedSketch::Create(config, 9);
  for (const StreamElement& e : wage) sf.Update(e);
  for (const StreamElement& e : overtime) sg.Update(e);
  StatusOr<double> estimate =
      core::SkimmedSketch::EstimateJoinSize(sf, sg);
  ASSERT_TRUE(estimate.ok());
  EXPECT_LT(RatioError(*estimate, exact), 0.5);
}

TEST(IntegrationTest, ElementwiseAndAbsorbedSketchesAgreeExactly) {
  // The linearity contract the benchmarks rely on, end to end.
  constexpr uint64_t kDomain = 1u << 9;
  stream::ZipfDistribution zipf(kDomain, 1.1);
  Rng rng(3);
  const std::vector<StreamElement> elements =
      zipf.GenerateElements(20000, &rng);
  const FrequencyVector fv = stream::Materialize(elements, kDomain);

  core::SkimmedSketchConfig config;
  config.domain_size = kDomain;
  config.num_buckets = 128;
  config.use_dyadic_skim = true;
  auto elementwise = *core::SkimmedSketch::Create(config, 11);
  auto absorbed = *core::SkimmedSketch::Create(config, 11);
  for (const StreamElement& e : elements) elementwise.Update(e);
  absorbed.Absorb(fv);
  for (uint64_t table = 0; table < config.num_tables; ++table) {
    for (uint64_t bucket = 0; bucket < config.num_buckets; ++bucket) {
      EXPECT_EQ(elementwise.level0().Counter(table, bucket),
                absorbed.level0().Counter(table, bucket));
    }
  }
}

TEST(IntegrationTest, HeavyDeleteChurnKeepsEstimatesCoherent) {
  // Simulates a routing table with constant churn: values appear and
  // disappear; at the end only a known set remains.
  constexpr uint64_t kDomain = 1u << 10;
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({"f", kDomain}).ok());
  ASSERT_TRUE(engine.RegisterStream({"g", kDomain}).ok());
  JoinQuerySpec spec;
  spec.left_stream = "f";
  spec.right_stream = "g";
  spec.estimator.kind = core::EstimatorKind::kSkimmedSketch;
  spec.estimator.space_counters = 2048;
  StatusOr<query::QueryId> query = engine.AddJoinQuery(spec, 21);
  ASSERT_TRUE(query.ok());

  Rng rng(13);
  // Churn: 10000 inserts followed by deletes of the same values.
  std::vector<uint64_t> churned;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextUint64Below(kDomain);
    churned.push_back(v);
    ASSERT_TRUE(engine.Update("f", {v, 1, 0}).ok());
  }
  for (uint64_t v : churned) {
    ASSERT_TRUE(engine.Update("f", {v, -1, 0}).ok());
  }
  // Survivors: value 77 x 120 in f; g has value 77 x 10.
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(engine.Update("f", {77, 1, 0}).ok());
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Update("g", {77, 1, 0}).ok());
  }
  StatusOr<double> answer = engine.AnswerJoin(*query);
  ASSERT_TRUE(answer.ok());
  EXPECT_NEAR(*answer, 1200.0, 120.0);
}

}  // namespace
}  // namespace skimjoin
