#include "hashing/sign_hash.h"

#include <cmath>
#include <cstdlib>

#include "gtest/gtest.h"
#include "util/random.h"

namespace skimjoin {
namespace hashing {
namespace {

TEST(SignHashTest, OutputsArePlusMinusOne) {
  Rng rng(1);
  SignHash xi(&rng);
  for (uint64_t x = 0; x < 1000; ++x) {
    const int64_t s = xi(x);
    EXPECT_TRUE(s == 1 || s == -1) << "x=" << x << " s=" << s;
  }
}

TEST(SignHashTest, DeterministicGivenSameRngState) {
  Rng rng_a(6);
  Rng rng_b(6);
  SignHash a(&rng_a);
  SignHash b(&rng_b);
  for (uint64_t x = 0; x < 500; ++x) EXPECT_EQ(a(x), b(x));
}

TEST(SignHashTest, BalancedOverDomain) {
  Rng rng(8);
  SignHash xi(&rng);
  int64_t sum = 0;
  constexpr int kValues = 40000;
  for (int x = 0; x < kValues; ++x) sum += xi(static_cast<uint64_t>(x));
  // E[sum] = 0, sd = sqrt(kValues) = 200; allow 5 sigma.
  EXPECT_LT(std::llabs(sum), 5 * static_cast<int64_t>(std::sqrt(kValues)));
}

// E[ξ(x)·ξ(y)] ≈ 0 for x != y, averaged over family draws (2-wise part of
// 4-wise independence).
TEST(SignHashTest, PairwiseProductsAverageToZeroAcrossFamilies) {
  Rng seeder(17);
  constexpr int kFamilies = 4000;
  int64_t sum = 0;
  for (int f = 0; f < kFamilies; ++f) {
    Rng rng(seeder.NextUint64());
    SignHash xi(&rng);
    sum += xi(123) * xi(456);
  }
  EXPECT_LT(std::llabs(sum), 5 * static_cast<int64_t>(std::sqrt(kFamilies)));
}

// E[ξ(a)ξ(b)ξ(c)ξ(d)] ≈ 0 for four distinct values (the 4-wise property
// that the AGMS variance bound needs).
TEST(SignHashTest, FourWiseProductsAverageToZeroAcrossFamilies) {
  Rng seeder(29);
  constexpr int kFamilies = 4000;
  int64_t sum = 0;
  for (int f = 0; f < kFamilies; ++f) {
    Rng rng(seeder.NextUint64());
    SignHash xi(&rng);
    sum += xi(10) * xi(20) * xi(30) * xi(40);
  }
  EXPECT_LT(std::llabs(sum), 5 * static_cast<int64_t>(std::sqrt(kFamilies)));
}

// Regression pin for the branchless `1 - 2*(hash & 1)` form: the ±1
// sequence for fixed seeds must match the sequences the original branchy
// implementation produced (recorded before the rewrite). A mismatch here
// means every serialized sketch in the wild silently became incompatible.
TEST(SignHashTest, GoldenSequencesUnchangedForFixedSeeds) {
  struct Golden {
    uint64_t seed;
    int64_t signs[32];
  };
  const Golden goldens[] = {
      {0,
       {-1, -1, +1, +1, +1, +1, +1, -1, -1, +1, -1, +1, +1, -1, -1, +1,
        +1, -1, +1, +1, +1, -1, +1, -1, -1, -1, +1, +1, +1, -1, +1, -1}},
      {7,
       {-1, -1, -1, -1, -1, +1, -1, +1, -1, -1, -1, +1, +1, +1, +1, +1,
        -1, -1, +1, -1, +1, -1, +1, -1, -1, +1, +1, +1, +1, +1, +1, +1}},
      {12345,
       {+1, -1, -1, +1, +1, +1, +1, +1, +1, -1, +1, -1, +1, -1, +1, +1,
        -1, -1, +1, +1, +1, +1, +1, -1, -1, +1, -1, -1, +1, +1, +1, +1}},
  };
  for (const Golden& golden : goldens) {
    Rng rng(golden.seed);
    SignHash xi(&rng);
    for (uint64_t x = 0; x < 32; ++x) {
      EXPECT_EQ(xi(x), golden.signs[x])
          << "seed=" << golden.seed << " x=" << x;
    }
  }
}

TEST(SignHashTest, SquareIsAlwaysOne) {
  Rng rng(3);
  SignHash xi(&rng);
  for (uint64_t x = 0; x < 200; ++x) EXPECT_EQ(xi(x) * xi(x), 1);
}

}  // namespace
}  // namespace hashing
}  // namespace skimjoin
