#include "stream/wavelet.h"

#include <cmath>
#include <utility>

#include "gtest/gtest.h"
#include "stream/frequency_vector.h"
#include "stream/zipf.h"
#include "util/random.h"

namespace skimjoin {
namespace stream {
namespace {

WaveletSynopsis MustCreate(uint64_t domain) {
  StatusOr<WaveletSynopsis> synopsis = WaveletSynopsis::Create(domain);
  EXPECT_TRUE(synopsis.ok()) << synopsis.status();
  return *std::move(synopsis);
}

TEST(WaveletTest, CreateValidates) {
  EXPECT_FALSE(WaveletSynopsis::Create(0).ok());
  EXPECT_FALSE(WaveletSynopsis::Create(1).ok());
  EXPECT_FALSE(WaveletSynopsis::Create(100).ok());
  EXPECT_TRUE(WaveletSynopsis::Create(2).ok());
  EXPECT_TRUE(WaveletSynopsis::Create(1u << 12).ok());
}

TEST(WaveletTest, EmptySynopsisReconstructsZero) {
  WaveletSynopsis synopsis = MustCreate(64);
  for (uint64_t v = 0; v < 64; ++v) {
    EXPECT_DOUBLE_EQ(synopsis.PointEstimate(v), 0.0);
  }
  EXPECT_EQ(synopsis.CoefficientCount(), 0u);
}

TEST(WaveletTest, UncompressedReconstructionIsExact) {
  constexpr uint64_t kDomain = 128;
  WaveletSynopsis synopsis = MustCreate(kDomain);
  FrequencyVector reference(kDomain);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextUint64Below(kDomain);
    const int64_t w = 1 + static_cast<int64_t>(rng.NextUint64Below(5));
    synopsis.Update(v, w);
    reference.Add(v, w);
  }
  for (uint64_t v = 0; v < kDomain; ++v) {
    EXPECT_NEAR(synopsis.PointEstimate(v),
                static_cast<double>(reference.Get(v)), 1e-9)
        << "value " << v;
  }
}

TEST(WaveletTest, UpdateTouchesLogMCoefficients) {
  WaveletSynopsis synopsis = MustCreate(1u << 10);
  synopsis.Update(123, 7);
  // Average + 10 detail coefficients along the path.
  EXPECT_LE(synopsis.CoefficientCount(), 11u);
  EXPECT_GE(synopsis.CoefficientCount(), 1u);
}

TEST(WaveletTest, DeletesCancelExactly) {
  WaveletSynopsis synopsis = MustCreate(256);
  synopsis.Update(17, 5);
  synopsis.Update(99, 3);
  synopsis.Update(17, -5);
  synopsis.Update(99, -3);
  EXPECT_EQ(synopsis.CoefficientCount(), 0u);
}

TEST(WaveletTest, RangeSumExactBeforeCompression) {
  constexpr uint64_t kDomain = 64;
  WaveletSynopsis synopsis = MustCreate(kDomain);
  FrequencyVector reference(kDomain);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const uint64_t v = rng.NextUint64Below(kDomain);
    synopsis.Update(v, 1);
    reference.Add(v, 1);
  }
  struct Range {
    uint64_t lo, hi;
  };
  for (const Range r :
       {Range{0, 63}, Range{5, 20}, Range{31, 32}, Range{63, 63}}) {
    int64_t exact = 0;
    for (uint64_t v = r.lo; v <= r.hi; ++v) exact += reference.Get(v);
    StatusOr<double> sum = synopsis.RangeSum(r.lo, r.hi);
    ASSERT_TRUE(sum.ok());
    EXPECT_NEAR(*sum, static_cast<double>(exact), 1e-9)
        << "[" << r.lo << ", " << r.hi << "]";
  }
}

TEST(WaveletTest, RangeSumValidatesBounds) {
  WaveletSynopsis synopsis = MustCreate(64);
  EXPECT_EQ(synopsis.RangeSum(5, 4).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(synopsis.RangeSum(0, 64).status().code(),
            StatusCode::kOutOfRange);
}

TEST(WaveletTest, CompressToKeepsBudget) {
  WaveletSynopsis synopsis = MustCreate(1u << 10);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    synopsis.Update(rng.NextUint64Below(1u << 10), 1);
  }
  ASSERT_GT(synopsis.CoefficientCount(), 32u);
  synopsis.CompressTo(32);
  EXPECT_LE(synopsis.CoefficientCount(), 32u);
}

TEST(WaveletTest, CompressionPreservesSmoothMassWell) {
  // A piecewise-constant signal compresses near-losslessly: one flat block
  // of height 50 plus a second of height 10 needs only a handful of
  // coefficients.
  constexpr uint64_t kDomain = 256;
  WaveletSynopsis synopsis = MustCreate(kDomain);
  for (uint64_t v = 0; v < 128; ++v) synopsis.Update(v, 50);
  for (uint64_t v = 128; v < 256; ++v) synopsis.Update(v, 10);
  synopsis.CompressTo(4);
  for (uint64_t v : {0ull, 64ull, 127ull}) {
    EXPECT_NEAR(synopsis.PointEstimate(v), 50.0, 1e-9) << v;
  }
  for (uint64_t v : {128ull, 200ull, 255ull}) {
    EXPECT_NEAR(synopsis.PointEstimate(v), 10.0, 1e-9) << v;
  }
}

TEST(WaveletTest, TopCoefficientsRankedByNormalizedMagnitude) {
  WaveletSynopsis synopsis = MustCreate(8);
  // Uniform mass: only the average coefficient is non-zero.
  for (uint64_t v = 0; v < 8; ++v) synopsis.Update(v, 4);
  const auto top = synopsis.TopCoefficients(10);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, 0u);
  EXPECT_DOUBLE_EQ(top[0].second, 4.0);
}

TEST(WaveletTest, CompressedRangeSumsTrackExactOnSkewedData) {
  constexpr uint64_t kDomain = 1u << 10;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.1).ExpectedFrequencies(50000);
  WaveletSynopsis synopsis = MustCreate(kDomain);
  for (uint64_t v = 0; v < kDomain; ++v) {
    if (f.Get(v) != 0) synopsis.Update(v, f.Get(v));
  }
  synopsis.CompressTo(64);
  // Head range carries most mass and is dominated by large coefficients.
  int64_t exact = 0;
  for (uint64_t v = 0; v <= 127; ++v) exact += f.Get(v);
  StatusOr<double> sum = synopsis.RangeSum(0, 127);
  ASSERT_TRUE(sum.ok());
  EXPECT_NEAR(*sum, static_cast<double>(exact), 0.1 * static_cast<double>(exact));
}

}  // namespace
}  // namespace stream
}  // namespace skimjoin
