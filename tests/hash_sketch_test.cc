#include "sketch/hash_sketch.h"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "gtest/gtest.h"
#include "stream/exact.h"
#include "stream/zipf.h"
#include "util/random.h"

namespace skimjoin {
namespace sketch {
namespace {

using stream::FrequencyVector;

HashSketch MustCreate(const HashSketchConfig& config, uint64_t seed) {
  StatusOr<HashSketch> sketch = HashSketch::Create(config, seed);
  EXPECT_TRUE(sketch.ok()) << sketch.status();
  return *std::move(sketch);
}

TEST(HashSketchTest, CreateValidatesConfig) {
  EXPECT_FALSE(HashSketch::Create({0, 8}, 1).ok());
  EXPECT_FALSE(HashSketch::Create({3, 0}, 1).ok());
  EXPECT_TRUE(HashSketch::Create({1, 1}, 1).ok());
}

TEST(HashSketchTest, UpdateTouchesOneBucketPerTable) {
  HashSketch sketch = MustCreate({3, 16}, 1);
  sketch.Update(5, 4);
  for (uint64_t table = 0; table < 3; ++table) {
    int non_zero = 0;
    for (uint64_t bucket = 0; bucket < 16; ++bucket) {
      non_zero += (sketch.Counter(table, bucket) != 0);
    }
    EXPECT_EQ(non_zero, 1) << "table " << table;
    EXPECT_EQ(sketch.Counter(table, sketch.Bucket(table, 5)),
              sketch.Sign(table, 5) * 4);
  }
}

TEST(HashSketchTest, PointEstimateExactWhenNoCollisions) {
  // Few values, many buckets: point estimates should be exact with high
  // probability; we use a fixed seed known to avoid collisions.
  HashSketch sketch = MustCreate({5, 1024}, 3);
  sketch.Update(10, 7);
  sketch.Update(20, -4);
  sketch.Update(30, 100);
  EXPECT_EQ(sketch.PointEstimate(10), 7);
  EXPECT_EQ(sketch.PointEstimate(20), -4);
  EXPECT_EQ(sketch.PointEstimate(30), 100);
  EXPECT_EQ(sketch.PointEstimate(40), 0);
}

TEST(HashSketchTest, PointEstimateErrorBoundedOnSkewedData) {
  constexpr uint64_t kDomain = 1u << 10;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.2).ExpectedFrequencies(50000);
  HashSketch sketch = MustCreate({7, 512}, 5);
  sketch.Absorb(f);
  // Residual F2 per bucket gives error scale sqrt(F2/b); heavy values must
  // be recovered within a generous multiple of that.
  const double error_scale =
      std::sqrt(static_cast<double>(f.SelfJoinSize()) / 512.0);
  for (uint64_t v = 0; v < 20; ++v) {
    EXPECT_NEAR(sketch.PointEstimate(v), f.Get(v), 8 * error_scale + 1)
        << "value " << v;
  }
}

TEST(HashSketchTest, InsertThenDeleteCancelsExactly) {
  HashSketch sketch = MustCreate({5, 64}, 2);
  const HashSketch empty = MustCreate({5, 64}, 2);
  for (uint64_t v = 0; v < 100; ++v) sketch.Update(v, 3);
  for (uint64_t v = 0; v < 100; ++v) sketch.Update(v, -3);
  for (uint64_t table = 0; table < 5; ++table) {
    for (uint64_t bucket = 0; bucket < 64; ++bucket) {
      EXPECT_EQ(sketch.Counter(table, bucket), empty.Counter(table, bucket));
    }
  }
}

TEST(HashSketchTest, AbsorbMatchesElementwiseUpdates) {
  FrequencyVector fv(128);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) fv.Add(rng.NextUint64Below(128), 1);
  HashSketch by_absorb = MustCreate({5, 32}, 9);
  by_absorb.Absorb(fv);
  HashSketch by_updates = MustCreate({5, 32}, 9);
  for (uint64_t v = 0; v < 128; ++v) {
    for (int64_t c = 0; c < fv.Get(v); ++c) by_updates.Update(v, 1);
  }
  for (uint64_t table = 0; table < 5; ++table) {
    for (uint64_t bucket = 0; bucket < 32; ++bucket) {
      EXPECT_EQ(by_absorb.Counter(table, bucket),
                by_updates.Counter(table, bucket));
    }
  }
}

TEST(HashSketchTest, MergeEqualsConcatenatedStream) {
  HashSketch part1 = MustCreate({3, 32}, 4);
  HashSketch part2 = MustCreate({3, 32}, 4);
  HashSketch whole = MustCreate({3, 32}, 4);
  for (uint64_t v = 0; v < 40; ++v) {
    part1.Update(v, 1);
    whole.Update(v, 1);
  }
  for (uint64_t v = 30; v < 80; ++v) {
    part2.Update(v, 2);
    whole.Update(v, 2);
  }
  part1.Merge(part2);
  for (uint64_t table = 0; table < 3; ++table) {
    for (uint64_t bucket = 0; bucket < 32; ++bucket) {
      EXPECT_EQ(part1.Counter(table, bucket), whole.Counter(table, bucket));
    }
  }
}

TEST(HashSketchTest, IncompatibleSketchesRejected) {
  HashSketch f = MustCreate({3, 32}, 1);
  EXPECT_FALSE(
      HashSketch::EstimateJoinSize(f, MustCreate({3, 32}, 2)).ok());
  EXPECT_FALSE(
      HashSketch::EstimateJoinSize(f, MustCreate({5, 32}, 1)).ok());
  EXPECT_FALSE(
      HashSketch::EstimateJoinSize(f, MustCreate({3, 64}, 1)).ok());
  EXPECT_TRUE(f.CompatibleWith(MustCreate({3, 32}, 1)));
}

TEST(HashSketchTest, SingleSharedValueJoinIsExact) {
  HashSketch f = MustCreate({3, 64}, 7);
  HashSketch g = MustCreate({3, 64}, 7);
  f.Update(42, 6);
  g.Update(42, 5);
  StatusOr<double> join = HashSketch::EstimateJoinSize(f, g);
  ASSERT_TRUE(join.ok());
  EXPECT_DOUBLE_EQ(*join, 30.0);
}

TEST(HashSketchTest, JoinEstimateIsUnbiasedAcrossSeeds) {
  constexpr uint64_t kDomain = 128;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.0).ExpectedFrequencies(5000);
  const FrequencyVector g =
      stream::ZipfDistribution(kDomain, 1.0, /*shift=*/4)
          .ExpectedFrequencies(5000);
  const double exact = static_cast<double>(stream::JoinSize(f, g));
  double sum = 0.0;
  constexpr int kSeeds = 120;
  for (int seed = 0; seed < kSeeds; ++seed) {
    HashSketch sf = MustCreate({1, 64}, static_cast<uint64_t>(seed) + 500);
    HashSketch sg = MustCreate({1, 64}, static_cast<uint64_t>(seed) + 500);
    sf.Absorb(f);
    sg.Absorb(g);
    StatusOr<double> join = HashSketch::EstimateJoinSize(sf, sg);
    ASSERT_TRUE(join.ok());
    sum += *join;
  }
  EXPECT_NEAR(sum / kSeeds, exact, 0.25 * exact);
}

TEST(HashSketchTest, SelfJoinEstimateTracksExactOnUniformData) {
  constexpr uint64_t kDomain = 4096;
  FrequencyVector f(kDomain);
  for (uint64_t v = 0; v < kDomain; ++v) f.Add(v, 5);
  HashSketch sketch = MustCreate({7, 1024}, 13);
  sketch.Absorb(f);
  const double exact = static_cast<double>(f.SelfJoinSize());
  EXPECT_NEAR(sketch.EstimateSelfJoinSize(), exact, 0.25 * exact);
}

TEST(HashSketchTest, DisjointStreamsEstimateNearZero) {
  HashSketch f = MustCreate({7, 256}, 21);
  HashSketch g = MustCreate({7, 256}, 21);
  for (uint64_t v = 0; v < 500; ++v) f.Update(v, 10);
  for (uint64_t v = 2048; v < 2548; ++v) g.Update(v, 10);
  StatusOr<double> join = HashSketch::EstimateJoinSize(f, g);
  ASSERT_TRUE(join.ok());
  // True join is 0; noise scale is sqrt(F2f·F2g/b) = sqrt(5e4·5e4/256)·10²...
  const double noise =
      std::sqrt(500.0 * 100 * 500.0 * 100 / 256.0);
  EXPECT_LT(std::abs(*join), 8 * noise);
}

// Parameterized: with a fixed workload, more buckets must not make the
// median-of-tables estimate worse (checked loosely via error ordering over
// a few seeds).
class HashSketchBucketsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HashSketchBucketsTest, EstimateWithinNoiseEnvelope) {
  const uint64_t buckets = GetParam();
  constexpr uint64_t kDomain = 512;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.0).ExpectedFrequencies(20000);
  const FrequencyVector g =
      stream::ZipfDistribution(kDomain, 1.0, /*shift=*/8)
          .ExpectedFrequencies(20000);
  const double exact = static_cast<double>(stream::JoinSize(f, g));
  HashSketch sf = MustCreate({7, buckets}, 33);
  HashSketch sg = MustCreate({7, buckets}, 33);
  sf.Absorb(f);
  sg.Absorb(g);
  StatusOr<double> join = HashSketch::EstimateJoinSize(sf, sg);
  ASSERT_TRUE(join.ok());
  const double envelope =
      8.0 *
      std::sqrt(static_cast<double>(f.SelfJoinSize()) *
                static_cast<double>(g.SelfJoinSize()) /
                static_cast<double>(buckets));
  EXPECT_NEAR(*join, exact, envelope) << "buckets=" << buckets;
}

INSTANTIATE_TEST_SUITE_P(Buckets, HashSketchBucketsTest,
                         ::testing::Values(64, 128, 256, 512, 1024));

}  // namespace
}  // namespace sketch
}  // namespace skimjoin
