#include "util/estimate_report.h"

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/join_estimators.h"
#include "core/skimmed_sketch.h"
#include "gtest/gtest.h"
#include "query/multi_join.h"
#include "query/multi_join_hash.h"
#include "sketch/agms_sketch.h"
#include "sketch/count_min_sketch.h"
#include "sketch/hash_sketch.h"
#include "stream/frequency_vector.h"
#include "stream/zipf.h"

namespace skimjoin {
namespace {

using stream::FrequencyVector;

// ---------------------------------------------------------------------------
// FinishReportFromCopies unit tests.
// ---------------------------------------------------------------------------

TEST(FinishReportTest, EmptyCopiesDegenerateToPointEstimate) {
  EstimateReport report;
  report.estimate = 42.0;
  FinishReportFromCopies(&report, 0.9);
  EXPECT_EQ(report.copy_spread, 0.0);
  EXPECT_EQ(report.ci.lower, 42.0);
  EXPECT_EQ(report.ci.upper, 42.0);
  EXPECT_EQ(report.ci.level, 0.9);
  EXPECT_EQ(report.ci.Width(), 0.0);
  EXPECT_EQ(report.CiRelWidth(), 0.0);
}

TEST(FinishReportTest, SpreadAndIntervalFromCopies) {
  EstimateReport report;
  report.estimate = 3.0;
  report.copy_estimates = {1.0, 2.0, 3.0, 4.0, 5.0};
  FinishReportFromCopies(&report, 0.90);
  // Population std-dev of {1..5} is sqrt(2).
  EXPECT_NEAR(report.copy_spread, std::sqrt(2.0), 1e-12);
  // 5%/95% percentiles with linear interpolation: 1.2 and 4.8.
  EXPECT_NEAR(report.ci.lower, 1.2, 1e-12);
  EXPECT_NEAR(report.ci.upper, 4.8, 1e-12);
  EXPECT_LE(report.ci.lower, report.estimate);
  EXPECT_GE(report.ci.upper, report.estimate);
}

TEST(FinishReportTest, IntervalWidensToContainEstimate) {
  // A min-composed point answer (Count-Min) can sit below every copy; the
  // interval must stretch to include it.
  EstimateReport report;
  report.estimate = 0.5;
  report.copy_estimates = {10.0, 11.0, 12.0};
  FinishReportFromCopies(&report);
  EXPECT_EQ(report.ci.lower, 0.5);
  EXPECT_GE(report.ci.upper, 11.0);
}

TEST(FinishReportTest, CiRelWidthUsesAbsoluteWidthForSmallEstimates) {
  EstimateReport report;
  report.estimate = 0.25;  // |estimate| < 1: scale clamps to 1.
  report.ci = {0.0, 0.5, 0.9};
  EXPECT_NEAR(report.CiRelWidth(), 0.5, 1e-12);
  report.estimate = 100.0;
  report.ci = {90.0, 110.0, 0.9};
  EXPECT_NEAR(report.CiRelWidth(), 0.2, 1e-12);
}

TEST(FinishReportTest, SkimResidualRatiosHandleEmptyStreams) {
  SkimDiagnostics skim;
  EXPECT_EQ(skim.ResidualRatioF(), 0.0);
  EXPECT_EQ(skim.ResidualRatioG(), 0.0);
  skim.residual_l2_before_f = 10.0;
  skim.residual_l2_after_f = 4.0;
  EXPECT_NEAR(skim.ResidualRatioF(), 0.4, 1e-12);
}

// ---------------------------------------------------------------------------
// Bit-identity: every *WithReport variant must return exactly the double the
// legacy API returns — same per-copy vectors, same reduction order.
// ---------------------------------------------------------------------------

constexpr uint64_t kDomain = 1u << 10;

std::pair<FrequencyVector, FrequencyVector> SkewedStreams() {
  FrequencyVector f = stream::ZipfDistribution(kDomain, 1.1)
                          .ExpectedFrequencies(50000);
  FrequencyVector g = stream::ZipfDistribution(kDomain, 0.8)
                          .ExpectedFrequencies(40000);
  return {std::move(f), std::move(g)};
}

TEST(ReportBitIdentityTest, AgmsJoinAndSelfJoin) {
  const auto [f, g] = SkewedStreams();
  sketch::AgmsConfig config{64, 5};
  auto sf = sketch::AgmsSketch::Create(config, 7);
  auto sg = sketch::AgmsSketch::Create(config, 7);
  ASSERT_TRUE(sf.ok() && sg.ok());
  sf->Absorb(f);
  sg->Absorb(g);

  auto legacy = sketch::AgmsSketch::EstimateJoinSize(*sf, *sg);
  auto report = sketch::AgmsSketch::EstimateJoinSizeWithReport(*sf, *sg);
  ASSERT_TRUE(legacy.ok() && report.ok());
  EXPECT_EQ(report->estimate, *legacy);
  EXPECT_EQ(report->method, "agms");
  EXPECT_EQ(report->copy_estimates.size(), 5u);
  EXPECT_FALSE(std::isnan(report->apriori_bound));
  EXPECT_FALSE(report->skim.has_value());

  const EstimateReport self = sf->EstimateSelfJoinSizeWithReport();
  EXPECT_EQ(self.estimate, sf->EstimateSelfJoinSize());
  EXPECT_EQ(self.copy_estimates.size(), 5u);
}

TEST(ReportBitIdentityTest, HashSketchJoinAndSelfJoin) {
  const auto [f, g] = SkewedStreams();
  sketch::HashSketchConfig config{7, 256};
  auto sf = sketch::HashSketch::Create(config, 11);
  auto sg = sketch::HashSketch::Create(config, 11);
  ASSERT_TRUE(sf.ok() && sg.ok());
  sf->Absorb(f);
  sg->Absorb(g);

  auto legacy = sketch::HashSketch::EstimateJoinSize(*sf, *sg);
  auto report = sketch::HashSketch::EstimateJoinSizeWithReport(*sf, *sg);
  ASSERT_TRUE(legacy.ok() && report.ok());
  EXPECT_EQ(report->estimate, *legacy);
  EXPECT_EQ(report->method, "hash-sketch");
  EXPECT_EQ(report->copy_estimates.size(), 7u);
  EXPECT_FALSE(std::isnan(report->apriori_bound));

  const EstimateReport self = sf->EstimateSelfJoinSizeWithReport();
  EXPECT_EQ(self.estimate, sf->EstimateSelfJoinSize());
  EXPECT_EQ(self.copy_estimates.size(), 7u);
}

TEST(ReportBitIdentityTest, CountMinJoin) {
  const auto [f, g] = SkewedStreams();
  sketch::CountMinConfig config{5, 256};
  auto sf = sketch::CountMinSketch::Create(config, 13);
  auto sg = sketch::CountMinSketch::Create(config, 13);
  ASSERT_TRUE(sf.ok() && sg.ok());
  sf->Absorb(f);
  sg->Absorb(g);

  auto legacy = sketch::CountMinSketch::EstimateJoinSize(*sf, *sg);
  auto report = sketch::CountMinSketch::EstimateJoinSizeWithReport(*sf, *sg);
  ASSERT_TRUE(legacy.ok() && report.ok());
  EXPECT_EQ(report->estimate, *legacy);
  EXPECT_EQ(report->method, "count-min");
  EXPECT_EQ(report->copy_estimates.size(), 5u);
  // The point answer is the min over tables: the smallest copy exactly.
  double min_copy = report->copy_estimates[0];
  for (double c : report->copy_estimates) min_copy = std::min(min_copy, c);
  EXPECT_EQ(report->estimate, min_copy);
  // One-sided envelope F1(F)*F1(G)/b is finite for insert-only streams.
  EXPECT_FALSE(std::isnan(report->apriori_bound));
}

TEST(ReportBitIdentityTest, SkimmedJoinAndSelfJoin) {
  const auto [f, g] = SkewedStreams();
  core::SkimmedSketchConfig config;
  config.domain_size = kDomain;
  config.num_tables = 7;
  config.num_buckets = 256;
  config.use_dyadic_skim = false;
  auto sf = core::SkimmedSketch::Create(config, 17);
  auto sg = core::SkimmedSketch::Create(config, 17);
  ASSERT_TRUE(sf.ok() && sg.ok());
  sf->Absorb(f);
  sg->Absorb(g);

  auto legacy = core::SkimmedSketch::EstimateJoinSize(*sf, *sg);
  auto detailed = core::SkimmedSketch::EstimateJoinSizeDetailed(*sf, *sg);
  auto report = core::SkimmedSketch::EstimateJoinSizeWithReport(*sf, *sg);
  ASSERT_TRUE(legacy.ok() && detailed.ok() && report.ok());
  EXPECT_EQ(report->estimate, *legacy);
  EXPECT_EQ(report->method, "skimmed");
  EXPECT_EQ(report->copy_estimates.size(), 7u);
  EXPECT_FALSE(std::isnan(report->apriori_bound));

  // Skim diagnostics: present, sub-joins sum to the estimate, and the
  // breakdown agrees with EstimateJoinSizeDetailed.
  ASSERT_TRUE(report->skim.has_value());
  const SkimDiagnostics& skim = *report->skim;
  EXPECT_EQ(skim.dense_dense, detailed->dense_dense);
  EXPECT_EQ(skim.dense_sparse, detailed->dense_sparse);
  EXPECT_EQ(skim.sparse_dense, detailed->sparse_dense);
  EXPECT_EQ(skim.sparse_sparse, detailed->sparse_sparse);
  EXPECT_NEAR(skim.dense_dense + skim.dense_sparse + skim.sparse_dense +
                  skim.sparse_sparse,
              report->estimate, 1e-6 * std::fabs(report->estimate) + 1e-6);
  // Zipf(1.1) has real heavy hitters: skimming must extract some and shed
  // L2 mass.
  EXPECT_GT(skim.dense_count_f, 0u);
  EXPECT_GT(skim.residual_l2_before_f, 0.0);
  EXPECT_LT(skim.residual_l2_after_f, skim.residual_l2_before_f);
  EXPECT_GE(skim.ResidualRatioF(), 0.0);
  EXPECT_LE(skim.ResidualRatioF(), 1.0 + 1e-9);

  const EstimateReport self = sf->EstimateSelfJoinSizeWithReport();
  EXPECT_EQ(self.estimate, sf->EstimateSelfJoinSize());
}

TEST(ReportBitIdentityTest, MultiJoinGrid) {
  query::MultiJoinConfig config;
  config.num_means = 32;
  config.num_medians = 5;
  config.relation_attributes = {{0}, {0, 1}, {1}};
  auto est = query::MultiJoinEstimator::Create(config, 23);
  ASSERT_TRUE(est.ok());
  for (uint64_t v = 0; v < 64; ++v) {
    ASSERT_TRUE(est->Update(0, {v % 8}, 1).ok());
    ASSERT_TRUE(est->Update(1, {v % 8, v % 4}, 1).ok());
    ASSERT_TRUE(est->Update(2, {v % 4}, 1).ok());
  }
  const EstimateReport report = est->EstimateWithReport();
  EXPECT_EQ(report.estimate, est->Estimate());
  EXPECT_EQ(report.method, "multi-join-grid");
  EXPECT_EQ(report.copy_estimates.size(), 5u);
  EXPECT_TRUE(std::isnan(report.apriori_bound));
}

TEST(ReportBitIdentityTest, MultiJoinHash) {
  query::MultiJoinHashConfig config;
  config.num_relations = 3;
  config.num_tables = 5;
  config.num_buckets = 32;
  auto est = query::MultiJoinHashEstimator::Create(config, 29);
  ASSERT_TRUE(est.ok());
  for (uint64_t v = 0; v < 64; ++v) {
    ASSERT_TRUE(est->UpdateEnd(0, v % 8, 1).ok());
    ASSERT_TRUE(est->UpdateMiddle(1, v % 8, v % 4, 1).ok());
    ASSERT_TRUE(est->UpdateEnd(2, v % 4, 1).ok());
  }
  const EstimateReport report = est->EstimateWithReport();
  EXPECT_EQ(report.estimate, est->Estimate());
  EXPECT_EQ(report.method, "multi-join-hash");
  EXPECT_EQ(report.copy_estimates.size(), 5u);
  EXPECT_TRUE(std::isnan(report.apriori_bound));
}

// Every estimator pair the engine can build must satisfy bit-identity
// through the virtual EstimateWithReport, including the default wrapper
// (sampling has no per-copy structure).
TEST(ReportBitIdentityTest, JoinEstimatorPairsAllKinds) {
  const auto [f, g] = SkewedStreams();
  const core::EstimatorKind kinds[] = {
      core::EstimatorKind::kAgms, core::EstimatorKind::kHashSketch,
      core::EstimatorKind::kSkimmedSketch, core::EstimatorKind::kCountMin,
      core::EstimatorKind::kSampling};
  for (core::EstimatorKind kind : kinds) {
    core::EstimatorSpec spec;
    spec.kind = kind;
    spec.domain_size = kDomain;
    spec.space_counters = 4096;
    auto pair = core::CreateJoinEstimatorPair(spec, 31);
    ASSERT_TRUE(pair.ok()) << core::EstimatorKindName(kind);
    (*pair)->AbsorbF(f);
    (*pair)->AbsorbG(g);
    auto legacy = (*pair)->Estimate();
    auto report = (*pair)->EstimateWithReport();
    ASSERT_TRUE(legacy.ok() && report.ok()) << core::EstimatorKindName(kind);
    EXPECT_EQ(report->estimate, *legacy) << core::EstimatorKindName(kind);
    EXPECT_EQ(report->method, (*pair)->Name());
    // The CI always contains the point answer.
    EXPECT_LE(report->ci.lower, report->estimate);
    EXPECT_GE(report->ci.upper, report->estimate);
    if (kind == core::EstimatorKind::kSampling) {
      EXPECT_TRUE(report->copy_estimates.empty());
      EXPECT_EQ(report->ci.lower, report->estimate);
      EXPECT_EQ(report->ci.upper, report->estimate);
    } else {
      EXPECT_FALSE(report->copy_estimates.empty());
    }
    if (kind == core::EstimatorKind::kSkimmedSketch) {
      EXPECT_TRUE(report->skim.has_value());
    }
  }
}

// ---------------------------------------------------------------------------
// CI coverage: over many independently seeded trials, the empirical 90%
// interval must contain the exact join size at least 80% of the time
// (ISSUE acceptance bar). With ~5-7 roughly median-unbiased copies the
// [5%, 95%] copy quantiles sit near the min/max, so true coverage is well
// above the bar; 80% over 200 trials leaves a generous noise margin.
// ---------------------------------------------------------------------------

enum class Family { kAgms, kHashSketch, kSkimmed };

int CountCoverage(Family family, int trials, double exact,
                  const FrequencyVector& f, const FrequencyVector& g) {
  int covered = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(trial);
    EstimateReport report;
    switch (family) {
      case Family::kAgms: {
        auto sf = sketch::AgmsSketch::Create({64, 7}, seed);
        auto sg = sketch::AgmsSketch::Create({64, 7}, seed);
        EXPECT_TRUE(sf.ok() && sg.ok());
        sf->Absorb(f);
        sg->Absorb(g);
        auto r = sketch::AgmsSketch::EstimateJoinSizeWithReport(*sf, *sg);
        EXPECT_TRUE(r.ok());
        report = *std::move(r);
        break;
      }
      case Family::kHashSketch: {
        auto sf = sketch::HashSketch::Create({7, 512}, seed);
        auto sg = sketch::HashSketch::Create({7, 512}, seed);
        EXPECT_TRUE(sf.ok() && sg.ok());
        sf->Absorb(f);
        sg->Absorb(g);
        auto r = sketch::HashSketch::EstimateJoinSizeWithReport(*sf, *sg);
        EXPECT_TRUE(r.ok());
        report = *std::move(r);
        break;
      }
      case Family::kSkimmed: {
        core::SkimmedSketchConfig config;
        config.domain_size = kDomain;
        config.num_tables = 7;
        config.num_buckets = 512;
        config.use_dyadic_skim = false;
        auto sf = core::SkimmedSketch::Create(config, seed);
        auto sg = core::SkimmedSketch::Create(config, seed);
        EXPECT_TRUE(sf.ok() && sg.ok());
        sf->Absorb(f);
        sg->Absorb(g);
        auto r = core::SkimmedSketch::EstimateJoinSizeWithReport(*sf, *sg);
        EXPECT_TRUE(r.ok());
        report = *std::move(r);
        break;
      }
    }
    if (report.ci.lower <= exact && exact <= report.ci.upper) ++covered;
  }
  return covered;
}

class CiCoverageTest : public ::testing::TestWithParam<Family> {};

TEST_P(CiCoverageTest, NinetyPercentIntervalCoversExactAtLeast80Percent) {
  constexpr int kTrials = 200;
  const auto [f, g] = SkewedStreams();
  const double exact = static_cast<double>(stream::JoinSize(f, g));
  ASSERT_GT(exact, 0.0);
  const int covered = CountCoverage(GetParam(), kTrials, exact, f, g);
  EXPECT_GE(covered, static_cast<int>(0.80 * kTrials))
      << "coverage " << covered << "/" << kTrials;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, CiCoverageTest,
                         ::testing::Values(Family::kAgms, Family::kHashSketch,
                                           Family::kSkimmed),
                         [](const ::testing::TestParamInfo<Family>& info) {
                           switch (info.param) {
                             case Family::kAgms:
                               return std::string("Agms");
                             case Family::kHashSketch:
                               return std::string("HashSketch");
                             case Family::kSkimmed:
                               return std::string("Skimmed");
                           }
                           return std::string("Unknown");
                         });

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

TEST(RenderEstimateReportTest, ContainsCoreFields) {
  EstimateReport report;
  report.method = "agms";
  report.estimate = 123.0;
  report.copy_estimates = {100.0, 123.0, 150.0};
  FinishReportFromCopies(&report);
  const std::string text = RenderEstimateReport(report);
  EXPECT_NE(text.find("estimate report [agms]"), std::string::npos) << text;
  EXPECT_NE(text.find("estimate"), std::string::npos);
  EXPECT_NE(text.find("ci_lower"), std::string::npos);
  EXPECT_NE(text.find("ci_upper"), std::string::npos);
  EXPECT_NE(text.find("apriori_bound"), std::string::npos);
  // No skim section without diagnostics.
  EXPECT_EQ(text.find("skim."), std::string::npos);
  // NaN bound renders as n/a.
  EXPECT_NE(text.find("n/a"), std::string::npos);
}

TEST(RenderEstimateReportTest, SkimSectionRendered) {
  EstimateReport report;
  report.method = "skimmed";
  report.estimate = 10.0;
  report.skim.emplace();
  report.skim->dense_count_f = 3;
  FinishReportFromCopies(&report);
  const std::string text = RenderEstimateReport(report);
  EXPECT_NE(text.find("skim.dense_count_f"), std::string::npos) << text;
  EXPECT_NE(text.find("skim.sparse_sparse"), std::string::npos);
  EXPECT_NE(text.find("skim.residual_ratio_f"), std::string::npos);
}

}  // namespace
}  // namespace skimjoin
