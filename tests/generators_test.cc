#include "stream/generators.h"

#include <cmath>

#include "gtest/gtest.h"
#include "util/random.h"

namespace skimjoin {
namespace stream {
namespace {

TEST(UniformDistributionTest, SamplesInDomain) {
  UniformDistribution uniform(37);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(uniform.Sample(&rng), 37u);
}

TEST(UniformDistributionTest, ExpectedFrequenciesExactTotal) {
  UniformDistribution uniform(10);
  const FrequencyVector fv = uniform.ExpectedFrequencies(103);
  EXPECT_EQ(fv.TotalCount(), 103);
  // 10 values, 103 elements: three values get 11, the rest 10.
  for (uint64_t v = 0; v < 3; ++v) EXPECT_EQ(fv.Get(v), 11);
  for (uint64_t v = 3; v < 10; ++v) EXPECT_EQ(fv.Get(v), 10);
}

TEST(UniformDistributionTest, SamplingRoughlyUniform) {
  UniformDistribution uniform(16);
  Rng rng(2);
  FrequencyVector fv(16);
  constexpr int kDraws = 32000;
  for (int i = 0; i < kDraws; ++i) fv.Add(uniform.Sample(&rng), 1);
  for (uint64_t v = 0; v < 16; ++v) {
    EXPECT_NEAR(fv.Get(v), kDraws / 16, 6 * std::sqrt(kDraws / 16.0));
  }
}

TEST(UniformDistributionTest, GenerateElementsCountAndWeights) {
  UniformDistribution uniform(8);
  Rng rng(3);
  const auto elements = uniform.GenerateElements(100, &rng);
  ASSERT_EQ(elements.size(), 100u);
  for (const auto& e : elements) EXPECT_EQ(e.weight, 1);
}

TEST(SelfSimilarTest, ProbabilitiesSumToOne) {
  SelfSimilarDistribution dist(64, 0.8);
  double total = 0.0;
  for (uint64_t v = 0; v < 64; ++v) total += dist.Probability(v);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(SelfSimilarTest, ValueZeroIsHeaviest) {
  SelfSimilarDistribution dist(256, 0.8);
  const double p0 = dist.Probability(0);
  for (uint64_t v = 1; v < 256; ++v) {
    EXPECT_GE(p0, dist.Probability(v)) << "v=" << v;
  }
  // p(0) = bias^levels = 0.8^8.
  EXPECT_NEAR(p0, std::pow(0.8, 8), 1e-12);
}

TEST(SelfSimilarTest, EightyTwentyRuleHolds) {
  // With bias 0.8, the lower half of the domain carries 80% of the mass.
  SelfSimilarDistribution dist(1024, 0.8);
  double lower_half = 0.0;
  for (uint64_t v = 0; v < 512; ++v) lower_half += dist.Probability(v);
  EXPECT_NEAR(lower_half, 0.8, 1e-9);
}

TEST(SelfSimilarTest, BiasHalfIsUniform) {
  SelfSimilarDistribution dist(32, 0.5);
  for (uint64_t v = 0; v < 32; ++v) {
    EXPECT_NEAR(dist.Probability(v), 1.0 / 32.0, 1e-12);
  }
}

TEST(SelfSimilarTest, ExpectedFrequenciesMatchProbabilities) {
  SelfSimilarDistribution dist(64, 0.9);
  const FrequencyVector fv = dist.ExpectedFrequencies(1000000);
  EXPECT_EQ(fv.TotalCount(), 1000000);
  for (uint64_t v = 0; v < 8; ++v) {
    EXPECT_NEAR(fv.Get(v), dist.Probability(v) * 1e6,
                dist.Probability(v) * 1e6 / 100 + 2);
  }
}

TEST(SelfSimilarTest, SamplingTracksProbabilities) {
  SelfSimilarDistribution dist(32, 0.8);
  Rng rng(4);
  FrequencyVector fv(32);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) fv.Add(dist.Sample(&rng), 1);
  for (uint64_t v = 0; v < 4; ++v) {
    const double expected = dist.Probability(v) * kDraws;
    EXPECT_NEAR(fv.Get(v), expected, 6 * std::sqrt(expected) + 10);
  }
}

TEST(SelfSimilarDeathTest, RejectsBadParameters) {
  EXPECT_DEATH(SelfSimilarDistribution(100, 0.8), "power-of-two");
  EXPECT_DEATH(SelfSimilarDistribution(64, 0.4), "bias");
  EXPECT_DEATH(SelfSimilarDistribution(64, 1.0), "bias");
}

}  // namespace
}  // namespace stream
}  // namespace skimjoin
