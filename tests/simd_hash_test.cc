// Lane-for-lane equivalence of the SIMD polynomial block kernels
// (hashing/simd_hash.h) against the scalar Carter–Wegman evaluation: every
// compiled level must reproduce KWiseHash::operator() bit for bit across
// degrees, block lengths (including sub-lane tails), and adversarial
// inputs near the field modulus.

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "gtest/gtest.h"
#include "hashing/kwise_hash.h"
#include "hashing/prime_field.h"
#include "hashing/simd_hash.h"
#include "hashing/sign_hash.h"
#include "util/random.h"

namespace skimjoin {
namespace hashing {
namespace {

/// Every level from scalar up to what this machine supports — on a machine
/// without AVX the vector levels are absent and the test degenerates to
/// scalar-vs-scalar, which CI's AVX runners compensate for.
std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const SimdLevel widest = DetectSimdLevel();
  if (widest >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  if (widest >= SimdLevel::kAvx512) levels.push_back(SimdLevel::kAvx512);
  return levels;
}

TEST(SimdHashTest, LevelNamesAreStable) {
  EXPECT_STREQ("scalar", SimdLevelName(SimdLevel::kScalar));
  EXPECT_STREQ("avx2", SimdLevelName(SimdLevel::kAvx2));
  EXPECT_STREQ("avx512", SimdLevelName(SimdLevel::kAvx512));
}

TEST(SimdHashTest, MatchesScalarHornerAcrossDegreesAndLengths) {
  Rng rng(20260808);
  for (const int independence : {1, 2, 3, 4, 5}) {
    const KWiseHash hash(independence, &rng);
    for (const size_t n : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 9u, 31u, 256u}) {
      std::vector<uint64_t> values(n);
      for (uint64_t& v : values) v = rng.NextUint64();
      std::vector<uint64_t> expected(n);
      for (size_t i = 0; i < n; ++i) expected[i] = hash(values[i]);
      for (const SimdLevel level : SupportedLevels()) {
        std::vector<uint64_t> got(n, ~uint64_t{0});
        PolyEvalBlock(hash.coefficients(), values.data(), n, got.data(),
                      level);
        EXPECT_EQ(expected, got)
            << "independence=" << independence << " n=" << n
            << " level=" << SimdLevelName(level);
      }
    }
  }
}

TEST(SimdHashTest, MatchesScalarOnFieldEdgeInputs) {
  Rng rng(7);
  const KWiseHash hash(4, &rng);
  // Inputs straddling the fold boundary: 0, p-1, p, p+1, 2^61, 2^62,
  // all-ones, and values whose fold lands exactly on p - 1.
  std::vector<uint64_t> values = {0,
                                  kMersennePrime61 - 1,
                                  kMersennePrime61,
                                  kMersennePrime61 + 1,
                                  uint64_t{1} << 61,
                                  uint64_t{1} << 62,
                                  ~uint64_t{0},
                                  (uint64_t{1} << 63) - 1,
                                  (uint64_t{1} << 63),
                                  3 * kMersennePrime61,
                                  3 * kMersennePrime61 + 2};
  // Pad to cover full vector lanes plus a tail.
  while (values.size() < 19) values.push_back(rng.NextUint64());
  std::vector<uint64_t> expected(values.size());
  for (size_t i = 0; i < values.size(); ++i) expected[i] = hash(values[i]);
  for (const SimdLevel level : SupportedLevels()) {
    std::vector<uint64_t> got(values.size());
    PolyEvalBlock(hash.coefficients(), values.data(), values.size(),
                  got.data(), level);
    EXPECT_EQ(expected, got) << SimdLevelName(level);
  }
}

TEST(SimdHashTest, RandomizedStressAgainstScalar) {
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    const int independence = 2 + static_cast<int>(rng.NextUint64Below(3)) * 2;
    const KWiseHash hash(independence, &rng);
    const size_t n = 1 + rng.NextUint64Below(200);
    std::vector<uint64_t> values(n);
    for (uint64_t& v : values) v = rng.NextUint64();
    std::vector<uint64_t> expected(n);
    for (size_t i = 0; i < n; ++i) expected[i] = hash(values[i]);
    for (const SimdLevel level : SupportedLevels()) {
      std::vector<uint64_t> got(n);
      PolyEvalBlock(hash.coefficients(), values.data(), n, got.data(), level);
      ASSERT_EQ(expected, got)
          << "round=" << round << " level=" << SimdLevelName(level);
    }
  }
}

TEST(SimdHashTest, ResultsStayCanonicalFieldElements) {
  Rng rng(11);
  const KWiseHash hash(4, &rng);
  std::vector<uint64_t> values(64);
  for (uint64_t& v : values) v = rng.NextUint64();
  for (const SimdLevel level : SupportedLevels()) {
    std::vector<uint64_t> got(values.size());
    PolyEvalBlock(hash.coefficients(), values.data(), values.size(),
                  got.data(), level);
    for (const uint64_t r : got) EXPECT_LT(r, kMersennePrime61);
  }
}

}  // namespace
}  // namespace hashing
}  // namespace skimjoin
