#include "util/metrics.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace skimjoin {
namespace metrics {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset(7);
  EXPECT_EQ(c.Value(), 7u);
}

TEST(GaugeTest, LastValueWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.Value(), -1.25);
}

TEST(RegistryTest, GetReturnsStablePointers) {
  Registry registry;
  Counter* a = registry.GetCounter("a");
  Counter* again = registry.GetCounter("a");
  EXPECT_EQ(a, again);
  EXPECT_NE(a, registry.GetCounter("b"));
  Gauge* g = registry.GetGauge("a");  // separate namespace from counters
  EXPECT_EQ(g, registry.GetGauge("a"));
  ShardedHistogram* h = registry.GetHistogram("a");
  EXPECT_EQ(h, registry.GetHistogram("a"));
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  Registry registry;
  registry.GetCounter("zebra")->Increment(1);
  registry.GetCounter("apple")->Increment(2);
  registry.GetCounter("mango")->Increment(3);
  const Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].first, "apple");
  EXPECT_EQ(snapshot.counters[1].first, "mango");
  EXPECT_EQ(snapshot.counters[2].first, "zebra");
  EXPECT_EQ(snapshot.counters[0].second, 2u);
}

TEST(ShardedHistogramTest, EmptySnapshotHasNaNMinMax) {
  ShardedHistogram h;
  const HistogramSnapshot snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.0);
  EXPECT_TRUE(std::isnan(snapshot.min));
  EXPECT_TRUE(std::isnan(snapshot.max));
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5), 0.0);
}

#ifndef SKIMJOIN_DISABLE_METRICS

TEST(ShardedHistogramTest, RecordsExactSummaryStats) {
  ShardedHistogram h;
  h.Record(1.0);
  h.Record(3.0);
  h.Record(10.0);
  const HistogramSnapshot snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 14.0);
  EXPECT_NEAR(snapshot.Mean(), 14.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(snapshot.min, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 10.0);
  // Buckets match util::Histogram's power-of-two scheme.
  EXPECT_EQ(snapshot.buckets[Histogram::BucketIndexOf(1.0)], 1u);
  EXPECT_EQ(snapshot.buckets[Histogram::BucketIndexOf(3.0)], 1u);
  EXPECT_EQ(snapshot.buckets[Histogram::BucketIndexOf(10.0)], 1u);
}

TEST(ShardedHistogramTest, QuantileMonotoneInQ) {
  ShardedHistogram h;
  for (int i = 1; i <= 5000; ++i) h.Record(static_cast<double>(i));
  const HistogramSnapshot snapshot = h.Snapshot();
  double previous = 0.0;
  for (double q : {0.1, 0.5, 0.9, 1.0}) {
    const double value = snapshot.Quantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

// The TSan target: hammer one registry from many threads — registration,
// counter increments, gauge sets, histogram records, and snapshots all
// racing. Correctness check is just the deterministic totals; the real
// assertion is "no data race report".
TEST(MetricsConcurrencyTest, TortureManyWritersOneReader) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::atomic<bool> stop{false};

  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const Snapshot snapshot = registry.TakeSnapshot();
      (void)ToJson(snapshot);  // exercise exporters against live writers
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      // Half shared instruments (contended), half per-thread (sharded path).
      Counter* shared = registry.GetCounter("torture.shared");
      Counter* mine = registry.GetCounter("torture.t" + std::to_string(t));
      Gauge* gauge = registry.GetGauge("torture.gauge");
      ShardedHistogram* histogram = registry.GetHistogram("torture.latency");
      for (int i = 0; i < kOpsPerThread; ++i) {
        shared->Increment();
        mine->Increment();
        gauge->Set(static_cast<double>(i));
        histogram->Record(static_cast<double>(i % 1024));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const Snapshot snapshot = registry.TakeSnapshot();
  uint64_t shared = 0, histogram_count = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "torture.shared") shared = value;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    if (name == "torture.latency") histogram_count = h.count;
  }
  EXPECT_EQ(shared, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(histogram_count, static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(TraceTest, SpansRecordOnlyWhileEnabled) {
  TraceRecorder& recorder = TraceRecorder::Global();
  (void)recorder.DrainAsChromeTrace();  // discard spans from other tests
  { TraceSpan span("ignored", "test"); }
  EXPECT_EQ(recorder.event_count(), 0u);

  recorder.Enable();
  { TraceSpan span("phase_a", "test"); }
  { TraceSpan span("phase_b", "test"); }
  recorder.Disable();
  { TraceSpan span("ignored_again", "test"); }
  EXPECT_EQ(recorder.event_count(), 2u);

  const std::string json = recorder.DrainAsChromeTrace();
  EXPECT_NE(json.find("\"name\":\"phase_a\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"phase_b\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos) << json;
  EXPECT_EQ(json.find("ignored"), std::string::npos) << json;
  // Drain empties the buffer.
  EXPECT_EQ(recorder.event_count(), 0u);
  EXPECT_EQ(recorder.DrainAsChromeTrace(), "{\"traceEvents\":[]}");
}

// The recorder's buffer is bounded: a long traced session drops (and
// counts) events instead of growing without limit, and the drained trace
// reports the loss.
TEST(TraceTest, BoundedBufferDropsAndReportsCount) {
  TraceRecorder& recorder = TraceRecorder::Global();
  (void)recorder.DrainAsChromeTrace();  // discard spans from other tests
  recorder.set_max_events(4);
  recorder.Enable();
  for (int i = 0; i < 6; ++i) {
    TraceSpan span("bounded", "test");
  }
  recorder.Disable();
  EXPECT_EQ(recorder.event_count(), 4u);
  EXPECT_EQ(recorder.dropped_count(), 2u);

  const std::string json = recorder.DrainAsChromeTrace();
  EXPECT_NE(json.find("\"name\":\"trace_events_dropped\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"dropped\":2"), std::string::npos) << json;
  // Draining resets the loss accounting along with the buffer.
  EXPECT_EQ(recorder.dropped_count(), 0u);
  EXPECT_EQ(recorder.DrainAsChromeTrace(), "{\"traceEvents\":[]}");
  recorder.set_max_events(TraceRecorder::kDefaultMaxEvents);
}

#endif  // SKIMJOIN_DISABLE_METRICS

// Exporter goldens: exact output strings, so a format change is a conscious
// decision. Counters/gauges stay live under SKIMJOIN_DISABLE_METRICS; the
// histogram in these registries stays empty, so the goldens hold there too.
TEST(ExporterTest, JsonGolden) {
  Registry registry;
  registry.GetCounter("ingest.s.batches")->Increment(3);
  registry.GetGauge("engine.num_streams")->Set(2);
  registry.GetHistogram("query.1.rel_error");
  EXPECT_EQ(ToJson(registry.TakeSnapshot()),
            "{\"counters\":{\"ingest.s.batches\":3},"
            "\"gauges\":{\"engine.num_streams\":2},"
            "\"histograms\":{\"query.1.rel_error\":{\"count\":0,\"sum\":0,"
            "\"min\":null,\"max\":null,\"p50\":0,\"p99\":0,\"buckets\":[]}}}");
}

TEST(ExporterTest, JsonEscapesNames) {
  Registry registry;
  registry.GetCounter("weird\"name\\with\ttabs")->Increment(1);
  const std::string json = ToJson(registry.TakeSnapshot());
  EXPECT_NE(json.find("weird\\\"name\\\\with\\u0009tabs"), std::string::npos)
      << json;
}

TEST(ExporterTest, PrometheusGolden) {
  Registry registry;
  registry.GetCounter("ingest.s.batches")->Increment(3);
  registry.GetGauge("engine.num_streams")->Set(2);
  registry.GetHistogram("query.1.rel_error");
  EXPECT_EQ(ToPrometheusText(registry.TakeSnapshot()),
            "# TYPE ingest_s_batches counter\n"
            "ingest_s_batches 3\n"
            "# TYPE engine_num_streams gauge\n"
            "engine_num_streams 2\n"
            "# TYPE query_1_rel_error histogram\n"
            "query_1_rel_error_bucket{le=\"+Inf\"} 0\n"
            "query_1_rel_error_sum 0\n"
            "query_1_rel_error_count 0\n");
}

#ifndef SKIMJOIN_DISABLE_METRICS

// Sanitization maps '.' and '_' to the same byte; the exporter must not
// emit duplicate "# TYPE" lines (strict parsers reject the exposition).
TEST(ExporterTest, PrometheusDisambiguatesSanitizedNameCollisions) {
  Registry registry;
  registry.GetCounter("ingest.a.x")->Increment(1);
  registry.GetCounter("ingest.a_x")->Increment(2);
  registry.GetGauge("ingest.a.x")->Set(3);  // cross-type collision too
  const std::string text = ToPrometheusText(registry.TakeSnapshot());
  // Name-sorted snapshot => deterministic suffixes: "ingest.a.x" keeps the
  // plain name, later colliders get _2, _3, ...
  EXPECT_NE(text.find("# TYPE ingest_a_x counter\ningest_a_x 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE ingest_a_x_2 counter\ningest_a_x_2 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE ingest_a_x_3 gauge\ningest_a_x_3 3\n"),
            std::string::npos)
      << text;
}

// A histogram's derived _bucket/_sum/_count series must not collide with
// an instrument that literally carries one of those names.
TEST(ExporterTest, PrometheusProtectsHistogramDerivedSeries) {
  Registry registry;
  registry.GetCounter("lat_count")->Increment(5);
  registry.GetHistogram("lat");
  const std::string text = ToPrometheusText(registry.TakeSnapshot());
  EXPECT_NE(text.find("# TYPE lat_count counter\nlat_count 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE lat_2 histogram\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_2_count 0\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("\nlat_sum"), std::string::npos) << text;
}

TEST(ExporterTest, PrometheusHistogramBucketsAreCumulative) {
  Registry registry;
  ShardedHistogram* h = registry.GetHistogram("lat");
  h->Record(0.5);   // bucket [0,1)
  h->Record(3.0);   // bucket [2,4)
  h->Record(3.5);   // bucket [2,4)
  const std::string text = ToPrometheusText(registry.TakeSnapshot());
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_bucket{le=\"4\"} 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_sum 7\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_count 3\n"), std::string::npos) << text;
}

#endif  // SKIMJOIN_DISABLE_METRICS

TEST(PeriodicSnapshotWriterTest, StopWritesFinalSnapshot) {
  Registry registry;
  registry.GetCounter("writer.test")->Increment(11);
  const std::string path =
      testing::TempDir() + "/metrics_writer_snapshot.json";
  std::remove(path.c_str());
  {
    PeriodicSnapshotWriter writer(
        path, PeriodicSnapshotWriter::Format::kJson,
        std::chrono::milliseconds(10'000),  // period >> test: only the
                                            // final Stop() write happens
        [&registry] { return registry.TakeSnapshot(); });
    EXPECT_TRUE(writer.Stop().ok());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"writer.test\":11"), std::string::npos)
      << contents;
  std::remove(path.c_str());
}

// --- fleet labeling ---------------------------------------------------------

TEST(LabeledNameTest, BuildsAndEscapesLabelBlocks) {
  EXPECT_EQ(LabeledName("ingest.s.batches", {{"shard", "3"}}),
            "ingest.s.batches{shard=\"3\"}");
  EXPECT_EQ(LabeledName("m", {{"a", "1"}, {"b", "2"}}),
            "m{a=\"1\",b=\"2\"}");
  // Prometheus exposition escapes: backslash, quote, newline.
  EXPECT_EQ(LabeledName("m", {{"k", "a\\b\"c\nd"}}),
            "m{k=\"a\\\\b\\\"c\\nd\"}");
}

TEST(LabeledNameTest, SplitShardLabelRoundTrips) {
  std::string base, shard;
  ASSERT_TRUE(SplitShardLabel("ingest.s.batches{shard=\"7\"}", &base, &shard));
  EXPECT_EQ(base, "ingest.s.batches");
  EXPECT_EQ(shard, "7");
  // Escaped values come back unescaped.
  ASSERT_TRUE(SplitShardLabel(LabeledName("m", {{"shard", "a\"b\nc"}}),
                              &base, &shard));
  EXPECT_EQ(base, "m");
  EXPECT_EQ(shard, "a\"b\nc");
  // No shard label: reports false, outputs untouched.
  base = "untouched";
  shard = "untouched";
  EXPECT_FALSE(SplitShardLabel("plain.name", &base, &shard));
  EXPECT_FALSE(SplitShardLabel("m{other=\"1\"}", &base, &shard));
  EXPECT_EQ(base, "untouched");
  EXPECT_EQ(shard, "untouched");
}

// Satellite: labeled series keep their `{key="value"}` block through the
// Prometheus exporter (only the base is sanitized), series sharing a base
// share one # TYPE family, and escaped label values pass through verbatim.
TEST(ExporterTest, PrometheusKeepsLabelBlocksAndEscapes) {
  Registry registry;
  registry.GetCounter(LabeledName("ingest.s.batches", {{"shard", "0"}}))
      ->Increment(3);
  registry.GetCounter(LabeledName("ingest.s.batches", {{"shard", "1"}}))
      ->Increment(4);
  registry.GetCounter(LabeledName("weird", {{"k", "a\"b\\c\nd"}}))
      ->Increment(1);
  const std::string text = ToPrometheusText(registry.TakeSnapshot());
  // One # TYPE line for the shared base; both labeled series under it.
  EXPECT_NE(text.find("# TYPE ingest_s_batches counter\n"
                      "ingest_s_batches{shard=\"0\"} 3\n"
                      "ingest_s_batches{shard=\"1\"} 4\n"),
            std::string::npos)
      << text;
  // Exactly one # TYPE line for the family.
  const size_t first = text.find("# TYPE ingest_s_batches");
  EXPECT_EQ(text.find("# TYPE ingest_s_batches", first + 1),
            std::string::npos)
      << text;
  // Escaped label values (built by LabeledName) pass through verbatim.
  EXPECT_NE(text.find("weird{k=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos)
      << text;
}

TEST(ExporterTest, PrometheusEmitsHelpLines) {
  Registry registry;
  registry.GetCounter("ingest.s.batches")->Increment(3);
  registry.SetHelp("ingest.s.batches", "Update batches absorbed.");
  registry.GetCounter(LabeledName("dist.calls", {{"shard", "0"}}))
      ->Increment(1);
  registry.SetHelp("dist.calls", "RPCs issued per shard.");
  const std::string text = ToPrometheusText(registry.TakeSnapshot());
  EXPECT_NE(text.find("# HELP ingest_s_batches Update batches absorbed.\n"
                      "# TYPE ingest_s_batches counter\n"),
            std::string::npos)
      << text;
  // Help registered on the BASE name reaches the labeled family.
  EXPECT_NE(text.find("# HELP dist_calls RPCs issued per shard.\n"
                      "# TYPE dist_calls counter\n"
                      "dist_calls{shard=\"0\"} 1\n"),
            std::string::npos)
      << text;
}

TEST(ExporterTest, JsonGroupsShardLabeledSeriesIntoFleetSection) {
  Registry registry;
  registry.GetCounter("local.counter")->Increment(1);
  registry.GetCounter(LabeledName("ingest.s.batches", {{"shard", "0"}}))
      ->Increment(3);
  registry.GetCounter(LabeledName("ingest.s.batches", {{"shard", "1"}}))
      ->Increment(4);
  registry.GetGauge(LabeledName("engine.num_streams", {{"shard", "1"}}))
      ->Set(2);
  const std::string json = ToJson(registry.TakeSnapshot());
  // Flat sections keep only unlabeled series.
  EXPECT_NE(json.find("\"counters\":{\"local.counter\":1}"),
            std::string::npos)
      << json;
  // Labeled series group per shard under "fleet", base names restored.
  EXPECT_NE(
      json.find("\"fleet\":{\"0\":{\"counters\":{\"ingest.s.batches\":3}"),
      std::string::npos)
      << json;
  EXPECT_NE(json.find("\"1\":{\"counters\":{\"ingest.s.batches\":4},"
                      "\"gauges\":{\"engine.num_streams\":2}"),
            std::string::npos)
      << json;
  // No shard labels → no fleet section at all (single-process unchanged).
  Registry plain;
  plain.GetCounter("a")->Increment(1);
  EXPECT_EQ(ToJson(plain.TakeSnapshot()).find("\"fleet\""),
            std::string::npos);
}

// --- fleet trace merging ----------------------------------------------------

TEST(MergeAsChromeTraceTest, MergesProcessesOntoOneTimeline) {
  ProcessTrace coordinator;
  coordinator.pid = 100;
  coordinator.name = "coordinator";
  coordinator.clock_offset_micros = 0;
  TraceEvent root;
  root.name = "dist.call";
  root.category = "dist";
  root.start_micros = 1000;
  root.duration_micros = 500;
  root.thread_id = 1;
  root.trace_id = 42;
  root.span_id = 7;
  coordinator.events.push_back(root);

  ProcessTrace worker;
  worker.pid = 101;
  worker.name = "shard0";
  worker.clock_offset_micros = 250;  // worker clock runs 250us behind
  TraceEvent child;
  child.name = "worker.ingest";
  child.category = "dist";
  child.start_micros = 900;  // on the worker's clock
  child.duration_micros = 100;
  child.thread_id = 2;
  child.trace_id = 42;
  child.span_id = 9;
  child.parent_span_id = 7;
  worker.events.push_back(child);
  worker.dropped = 3;

  const std::string json = MergeAsChromeTrace({coordinator, worker});
  // Each process gets a process_name metadata record on its own pid track.
  EXPECT_NE(json.find("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":100,"
                      "\"tid\":0,\"args\":{\"name\":\"coordinator\"}}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":101,"
                      "\"tid\":0,\"args\":{\"name\":\"shard0\"}}"),
            std::string::npos)
      << json;
  // Coordinator event at its own timestamp, worker event shifted by the
  // clock offset (900 + 250 = 1150) onto the coordinator's timeline.
  EXPECT_NE(json.find("\"name\":\"dist.call\",\"cat\":\"dist\",\"ph\":\"X\","
                      "\"ts\":1000,\"dur\":500,\"pid\":100"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"worker.ingest\",\"cat\":\"dist\","
                      "\"ph\":\"X\",\"ts\":1150,\"dur\":100,\"pid\":101"),
            std::string::npos)
      << json;
  // Span linkage rides in args as decimal strings.
  EXPECT_NE(json.find("\"trace_id\":\"42\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"span_id\":\"9\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"parent_span_id\":\"7\""), std::string::npos) << json;
  // The worker's drop count appends a trace_events_dropped instant event.
  EXPECT_NE(json.find("\"name\":\"trace_events_dropped\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"dropped\":3"), std::string::npos) << json;
}

TEST(MergeAsChromeTraceTest, NegativeShiftClampsAtZeroAndEmptyIsCanonical) {
  ProcessTrace p;
  p.pid = 1;
  p.clock_offset_micros = -5000;
  TraceEvent e;
  e.name = "early";
  e.category = "t";
  e.start_micros = 100;  // 100 - 5000 < 0 → clamps to 0
  e.duration_micros = 10;
  p.events.push_back(e);
  const std::string json = MergeAsChromeTrace({p});
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos) << json;
  EXPECT_EQ(MergeAsChromeTrace({}), "{\"traceEvents\":[]}");
}

// Satellite regression: the writer's FIRST write happens immediately on
// construction, not one period later — a run shorter than one tick must
// still leave a snapshot on disk.
TEST(PeriodicSnapshotWriterTest, FirstWriteHappensImmediately) {
  Registry registry;
  registry.GetCounter("writer.immediate")->Increment(5);
  const std::string path =
      testing::TempDir() + "/metrics_writer_immediate.json";
  std::remove(path.c_str());
  PeriodicSnapshotWriter writer(
      path, PeriodicSnapshotWriter::Format::kJson,
      std::chrono::hours(1),  // no tick will ever fire during the test
      [&registry] { return registry.TakeSnapshot(); });
  // Before Stop(): the construction-time write must already be on disk.
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no snapshot written at construction";
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"writer.immediate\":5"), std::string::npos)
      << contents;
  EXPECT_TRUE(writer.Stop().ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace metrics
}  // namespace skimjoin
