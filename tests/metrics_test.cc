#include "util/metrics.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace skimjoin {
namespace metrics {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset(7);
  EXPECT_EQ(c.Value(), 7u);
}

TEST(GaugeTest, LastValueWins) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.Value(), -1.25);
}

TEST(RegistryTest, GetReturnsStablePointers) {
  Registry registry;
  Counter* a = registry.GetCounter("a");
  Counter* again = registry.GetCounter("a");
  EXPECT_EQ(a, again);
  EXPECT_NE(a, registry.GetCounter("b"));
  Gauge* g = registry.GetGauge("a");  // separate namespace from counters
  EXPECT_EQ(g, registry.GetGauge("a"));
  ShardedHistogram* h = registry.GetHistogram("a");
  EXPECT_EQ(h, registry.GetHistogram("a"));
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  Registry registry;
  registry.GetCounter("zebra")->Increment(1);
  registry.GetCounter("apple")->Increment(2);
  registry.GetCounter("mango")->Increment(3);
  const Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].first, "apple");
  EXPECT_EQ(snapshot.counters[1].first, "mango");
  EXPECT_EQ(snapshot.counters[2].first, "zebra");
  EXPECT_EQ(snapshot.counters[0].second, 2u);
}

TEST(ShardedHistogramTest, EmptySnapshotHasNaNMinMax) {
  ShardedHistogram h;
  const HistogramSnapshot snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.0);
  EXPECT_TRUE(std::isnan(snapshot.min));
  EXPECT_TRUE(std::isnan(snapshot.max));
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5), 0.0);
}

#ifndef SKIMJOIN_DISABLE_METRICS

TEST(ShardedHistogramTest, RecordsExactSummaryStats) {
  ShardedHistogram h;
  h.Record(1.0);
  h.Record(3.0);
  h.Record(10.0);
  const HistogramSnapshot snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 14.0);
  EXPECT_NEAR(snapshot.Mean(), 14.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(snapshot.min, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 10.0);
  // Buckets match util::Histogram's power-of-two scheme.
  EXPECT_EQ(snapshot.buckets[Histogram::BucketIndexOf(1.0)], 1u);
  EXPECT_EQ(snapshot.buckets[Histogram::BucketIndexOf(3.0)], 1u);
  EXPECT_EQ(snapshot.buckets[Histogram::BucketIndexOf(10.0)], 1u);
}

TEST(ShardedHistogramTest, QuantileMonotoneInQ) {
  ShardedHistogram h;
  for (int i = 1; i <= 5000; ++i) h.Record(static_cast<double>(i));
  const HistogramSnapshot snapshot = h.Snapshot();
  double previous = 0.0;
  for (double q : {0.1, 0.5, 0.9, 1.0}) {
    const double value = snapshot.Quantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

// The TSan target: hammer one registry from many threads — registration,
// counter increments, gauge sets, histogram records, and snapshots all
// racing. Correctness check is just the deterministic totals; the real
// assertion is "no data race report".
TEST(MetricsConcurrencyTest, TortureManyWritersOneReader) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::atomic<bool> stop{false};

  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const Snapshot snapshot = registry.TakeSnapshot();
      (void)ToJson(snapshot);  // exercise exporters against live writers
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      // Half shared instruments (contended), half per-thread (sharded path).
      Counter* shared = registry.GetCounter("torture.shared");
      Counter* mine = registry.GetCounter("torture.t" + std::to_string(t));
      Gauge* gauge = registry.GetGauge("torture.gauge");
      ShardedHistogram* histogram = registry.GetHistogram("torture.latency");
      for (int i = 0; i < kOpsPerThread; ++i) {
        shared->Increment();
        mine->Increment();
        gauge->Set(static_cast<double>(i));
        histogram->Record(static_cast<double>(i % 1024));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const Snapshot snapshot = registry.TakeSnapshot();
  uint64_t shared = 0, histogram_count = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "torture.shared") shared = value;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    if (name == "torture.latency") histogram_count = h.count;
  }
  EXPECT_EQ(shared, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(histogram_count, static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(TraceTest, SpansRecordOnlyWhileEnabled) {
  TraceRecorder& recorder = TraceRecorder::Global();
  (void)recorder.DrainAsChromeTrace();  // discard spans from other tests
  { TraceSpan span("ignored", "test"); }
  EXPECT_EQ(recorder.event_count(), 0u);

  recorder.Enable();
  { TraceSpan span("phase_a", "test"); }
  { TraceSpan span("phase_b", "test"); }
  recorder.Disable();
  { TraceSpan span("ignored_again", "test"); }
  EXPECT_EQ(recorder.event_count(), 2u);

  const std::string json = recorder.DrainAsChromeTrace();
  EXPECT_NE(json.find("\"name\":\"phase_a\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"phase_b\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos) << json;
  EXPECT_EQ(json.find("ignored"), std::string::npos) << json;
  // Drain empties the buffer.
  EXPECT_EQ(recorder.event_count(), 0u);
  EXPECT_EQ(recorder.DrainAsChromeTrace(), "{\"traceEvents\":[]}");
}

// The recorder's buffer is bounded: a long traced session drops (and
// counts) events instead of growing without limit, and the drained trace
// reports the loss.
TEST(TraceTest, BoundedBufferDropsAndReportsCount) {
  TraceRecorder& recorder = TraceRecorder::Global();
  (void)recorder.DrainAsChromeTrace();  // discard spans from other tests
  recorder.set_max_events(4);
  recorder.Enable();
  for (int i = 0; i < 6; ++i) {
    TraceSpan span("bounded", "test");
  }
  recorder.Disable();
  EXPECT_EQ(recorder.event_count(), 4u);
  EXPECT_EQ(recorder.dropped_count(), 2u);

  const std::string json = recorder.DrainAsChromeTrace();
  EXPECT_NE(json.find("\"name\":\"trace_events_dropped\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"dropped\":2"), std::string::npos) << json;
  // Draining resets the loss accounting along with the buffer.
  EXPECT_EQ(recorder.dropped_count(), 0u);
  EXPECT_EQ(recorder.DrainAsChromeTrace(), "{\"traceEvents\":[]}");
  recorder.set_max_events(TraceRecorder::kDefaultMaxEvents);
}

#endif  // SKIMJOIN_DISABLE_METRICS

// Exporter goldens: exact output strings, so a format change is a conscious
// decision. Counters/gauges stay live under SKIMJOIN_DISABLE_METRICS; the
// histogram in these registries stays empty, so the goldens hold there too.
TEST(ExporterTest, JsonGolden) {
  Registry registry;
  registry.GetCounter("ingest.s.batches")->Increment(3);
  registry.GetGauge("engine.num_streams")->Set(2);
  registry.GetHistogram("query.1.rel_error");
  EXPECT_EQ(ToJson(registry.TakeSnapshot()),
            "{\"counters\":{\"ingest.s.batches\":3},"
            "\"gauges\":{\"engine.num_streams\":2},"
            "\"histograms\":{\"query.1.rel_error\":{\"count\":0,\"sum\":0,"
            "\"min\":null,\"max\":null,\"p50\":0,\"p99\":0,\"buckets\":[]}}}");
}

TEST(ExporterTest, JsonEscapesNames) {
  Registry registry;
  registry.GetCounter("weird\"name\\with\ttabs")->Increment(1);
  const std::string json = ToJson(registry.TakeSnapshot());
  EXPECT_NE(json.find("weird\\\"name\\\\with\\u0009tabs"), std::string::npos)
      << json;
}

TEST(ExporterTest, PrometheusGolden) {
  Registry registry;
  registry.GetCounter("ingest.s.batches")->Increment(3);
  registry.GetGauge("engine.num_streams")->Set(2);
  registry.GetHistogram("query.1.rel_error");
  EXPECT_EQ(ToPrometheusText(registry.TakeSnapshot()),
            "# TYPE ingest_s_batches counter\n"
            "ingest_s_batches 3\n"
            "# TYPE engine_num_streams gauge\n"
            "engine_num_streams 2\n"
            "# TYPE query_1_rel_error histogram\n"
            "query_1_rel_error_bucket{le=\"+Inf\"} 0\n"
            "query_1_rel_error_sum 0\n"
            "query_1_rel_error_count 0\n");
}

#ifndef SKIMJOIN_DISABLE_METRICS

// Sanitization maps '.' and '_' to the same byte; the exporter must not
// emit duplicate "# TYPE" lines (strict parsers reject the exposition).
TEST(ExporterTest, PrometheusDisambiguatesSanitizedNameCollisions) {
  Registry registry;
  registry.GetCounter("ingest.a.x")->Increment(1);
  registry.GetCounter("ingest.a_x")->Increment(2);
  registry.GetGauge("ingest.a.x")->Set(3);  // cross-type collision too
  const std::string text = ToPrometheusText(registry.TakeSnapshot());
  // Name-sorted snapshot => deterministic suffixes: "ingest.a.x" keeps the
  // plain name, later colliders get _2, _3, ...
  EXPECT_NE(text.find("# TYPE ingest_a_x counter\ningest_a_x 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE ingest_a_x_2 counter\ningest_a_x_2 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE ingest_a_x_3 gauge\ningest_a_x_3 3\n"),
            std::string::npos)
      << text;
}

// A histogram's derived _bucket/_sum/_count series must not collide with
// an instrument that literally carries one of those names.
TEST(ExporterTest, PrometheusProtectsHistogramDerivedSeries) {
  Registry registry;
  registry.GetCounter("lat_count")->Increment(5);
  registry.GetHistogram("lat");
  const std::string text = ToPrometheusText(registry.TakeSnapshot());
  EXPECT_NE(text.find("# TYPE lat_count counter\nlat_count 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE lat_2 histogram\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_2_count 0\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("\nlat_sum"), std::string::npos) << text;
}

TEST(ExporterTest, PrometheusHistogramBucketsAreCumulative) {
  Registry registry;
  ShardedHistogram* h = registry.GetHistogram("lat");
  h->Record(0.5);   // bucket [0,1)
  h->Record(3.0);   // bucket [2,4)
  h->Record(3.5);   // bucket [2,4)
  const std::string text = ToPrometheusText(registry.TakeSnapshot());
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_bucket{le=\"4\"} 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_sum 7\n"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_count 3\n"), std::string::npos) << text;
}

#endif  // SKIMJOIN_DISABLE_METRICS

TEST(PeriodicSnapshotWriterTest, StopWritesFinalSnapshot) {
  Registry registry;
  registry.GetCounter("writer.test")->Increment(11);
  const std::string path =
      testing::TempDir() + "/metrics_writer_snapshot.json";
  std::remove(path.c_str());
  {
    PeriodicSnapshotWriter writer(
        path, PeriodicSnapshotWriter::Format::kJson,
        std::chrono::milliseconds(10'000),  // period >> test: only the
                                            // final Stop() write happens
        [&registry] { return registry.TakeSnapshot(); });
    EXPECT_TRUE(writer.Stop().ok());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"writer.test\":11"), std::string::npos)
      << contents;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace metrics
}  // namespace skimjoin
