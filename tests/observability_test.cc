// End-to-end coverage of the engine's observability surface: instrument
// naming, ingest counters, per-query latency histograms, memory-footprint
// gauges, and the accuracy-drift monitor (docs/OBSERVABILITY.md).

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "query/engine.h"
#include "stream/frequency_vector.h"
#include "util/estimate_report.h"
#include "util/event_log.h"
#include "util/metrics.h"

namespace skimjoin {
namespace query {
namespace {

uint64_t CounterValue(const metrics::Snapshot& snapshot,
                      const std::string& name) {
  for (const auto& [n, v] : snapshot.counters) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "no counter named " << name;
  return 0;
}

double GaugeValue(const metrics::Snapshot& snapshot, const std::string& name) {
  for (const auto& [n, v] : snapshot.gauges) {
    if (n == name) return v;
  }
  ADD_FAILURE() << "no gauge named " << name;
  return 0.0;
}

const metrics::HistogramSnapshot* FindHistogram(
    const metrics::Snapshot& snapshot, const std::string& name) {
  for (const auto& [n, h] : snapshot.histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

TEST(ObservabilityTest, SnapshotCoversIngestQueriesAndMemory) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({.name = "f", .domain_size = 1024}).ok());
  ASSERT_TRUE(engine.RegisterStream({.name = "g", .domain_size = 1024}).ok());
  JoinQuerySpec join;
  join.left_stream = "f";
  join.right_stream = "g";
  join.estimator.kind = core::EstimatorKind::kSkimmedSketch;
  join.estimator.space_counters = 2048;
  const StatusOr<QueryId> join_id = engine.AddJoinQuery(join, /*seed=*/7);
  ASSERT_TRUE(join_id.ok());

  std::vector<StreamUpdate> batch;
  for (uint64_t i = 0; i < 100; ++i) batch.push_back({.value = i % 50});
  ASSERT_TRUE(engine.UpdateBatch("f", batch).ok());
  ASSERT_TRUE(engine.UpdateBatch("g", batch).ok());
  // Out-of-domain: dropped, counted, and reported as OUT_OF_RANGE.
  EXPECT_EQ(engine.Update("f", {.value = 5000}).code(),
            StatusCode::kOutOfRange);
  ASSERT_TRUE(engine.AnswerJoin(*join_id).ok());

  const metrics::Snapshot snapshot = engine.MetricsSnapshot();
  EXPECT_EQ(CounterValue(snapshot, "ingest.f.elements_absorbed"), 100u);
  EXPECT_EQ(CounterValue(snapshot, "ingest.f.elements_dropped"), 1u);
  EXPECT_EQ(CounterValue(snapshot, "ingest.f.batches"), 1u);
  EXPECT_EQ(CounterValue(snapshot, "ingest.g.elements_absorbed"), 100u);
  const std::string prefix = "query." + std::to_string(*join_id) + ".";
  EXPECT_EQ(CounterValue(snapshot, prefix + "estimate_calls"), 1u);
  EXPECT_GT(GaugeValue(snapshot, prefix + "memory_bytes"), 0.0);
  EXPECT_EQ(GaugeValue(snapshot, "engine.num_streams"), 2.0);
  EXPECT_EQ(GaugeValue(snapshot, "engine.num_queries"), 1.0);
  EXPECT_EQ(GaugeValue(snapshot, "engine.ingest_shards"), 1.0);
  ASSERT_NE(FindHistogram(snapshot, prefix + "estimate_ns"), nullptr);
  ASSERT_NE(FindHistogram(snapshot, prefix + "rel_error"), nullptr);
}

#ifndef SKIMJOIN_DISABLE_METRICS

TEST(ObservabilityTest, EstimateLatencyHistogramCountsCalls) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({.name = "f", .domain_size = 256}).ok());
  SelfJoinQuerySpec spec;
  spec.stream = "f";
  spec.estimator.kind = core::EstimatorKind::kAgms;
  spec.estimator.space_counters = 512;
  const StatusOr<QueryId> id = engine.AddSelfJoinQuery(spec, /*seed=*/3);
  ASSERT_TRUE(id.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.Update("f", {.value = static_cast<uint64_t>(i)}).ok());
  }
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(engine.AnswerJoin(*id).ok());

  const metrics::Snapshot snapshot = engine.MetricsSnapshot();
  const std::string prefix = "query." + std::to_string(*id) + ".";
  EXPECT_EQ(CounterValue(snapshot, prefix + "estimate_calls"), 5u);
  const metrics::HistogramSnapshot* latency =
      FindHistogram(snapshot, prefix + "estimate_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 5u);
  EXPECT_GT(latency->sum, 0.0);
}

// The drift monitor: with an exact FrequencyVector attached, every point
// answer records |estimate - exact| / max(1, |exact|). A well-provisioned
// sketch over a light stream keeps the error essentially zero.
TEST(ObservabilityTest, DriftNearZeroForWellProvisionedSketch) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({.name = "f", .domain_size = 1024}).ok());
  FrequencyQuerySpec spec;
  spec.stream = "f";
  spec.space_counters = 4096;
  const StatusOr<QueryId> id = engine.AddFrequencyQuery(spec, /*seed=*/11);
  ASSERT_TRUE(id.ok());

  stream::FrequencyVector reference(1024);
  ASSERT_TRUE(engine.AttachAccuracyReference("f", &reference).ok());
  for (uint64_t v = 0; v < 20; ++v) {
    const int64_t count = static_cast<int64_t>(10 * (v + 1));
    ASSERT_TRUE(engine.Update("f", {.value = v, .count = count}).ok());
    reference.Add(v, count);
  }
  for (uint64_t v = 0; v < 20; ++v) {
    ASSERT_TRUE(engine.AnswerPointFrequency(*id, v).ok());
  }

  const metrics::Snapshot snapshot = engine.MetricsSnapshot();
  const std::string name = "query." + std::to_string(*id) + ".rel_error";
  const metrics::HistogramSnapshot* drift = FindHistogram(snapshot, name);
  ASSERT_NE(drift, nullptr);
  EXPECT_EQ(drift->count, 20u);
  EXPECT_LT(drift->Mean(), 0.05);
}

// The threshold test: starve the sketch and the same workload trips a drift
// alarm a monitoring rule would page on (mean relative error above 10%).
TEST(ObservabilityTest, DriftDetectsUndersizedSketch) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({.name = "f", .domain_size = 4096}).ok());
  FrequencyQuerySpec spec;
  spec.stream = "f";
  spec.space_counters = 8;  // starved: heavy values collide constantly
  spec.num_tables = 1;
  spec.use_dyadic = false;
  const StatusOr<QueryId> id = engine.AddFrequencyQuery(spec, /*seed=*/11);
  ASSERT_TRUE(id.ok());

  stream::FrequencyVector reference(4096);
  ASSERT_TRUE(engine.AttachAccuracyReference("f", &reference).ok());
  for (uint64_t v = 0; v < 512; ++v) {
    const int64_t count = static_cast<int64_t>(1 + v % 97);
    ASSERT_TRUE(engine.Update("f", {.value = v, .count = count}).ok());
    reference.Add(v, count);
  }
  for (uint64_t v = 0; v < 512; ++v) {
    ASSERT_TRUE(engine.AnswerPointFrequency(*id, v).ok());
  }

  const metrics::Snapshot snapshot = engine.MetricsSnapshot();
  const std::string name = "query." + std::to_string(*id) + ".rel_error";
  const metrics::HistogramSnapshot* drift = FindHistogram(snapshot, name);
  ASSERT_NE(drift, nullptr);
  EXPECT_EQ(drift->count, 512u);
  EXPECT_GT(drift->Mean(), 0.10);
}

TEST(ObservabilityTest, JoinDriftNeedsBothReferences) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({.name = "f", .domain_size = 256}).ok());
  ASSERT_TRUE(engine.RegisterStream({.name = "g", .domain_size = 256}).ok());
  JoinQuerySpec join;
  join.left_stream = "f";
  join.right_stream = "g";
  join.estimator.kind = core::EstimatorKind::kSkimmedSketch;
  join.estimator.space_counters = 2048;
  const StatusOr<QueryId> id = engine.AddJoinQuery(join, /*seed=*/5);
  ASSERT_TRUE(id.ok());

  stream::FrequencyVector ref_f(256), ref_g(256);
  for (uint64_t v = 0; v < 32; ++v) {
    ASSERT_TRUE(engine.Update("f", {.value = v, .count = 4}).ok());
    ASSERT_TRUE(engine.Update("g", {.value = v, .count = 4}).ok());
    ref_f.Add(v, 4);
    ref_g.Add(v, 4);
  }
  const std::string name = "query." + std::to_string(*id) + ".rel_error";

  // Only one side referenced: no exact answer exists, nothing recorded.
  ASSERT_TRUE(engine.AttachAccuracyReference("f", &ref_f).ok());
  ASSERT_TRUE(engine.AnswerJoin(*id).ok());
  metrics::Snapshot snapshot = engine.MetricsSnapshot();
  const metrics::HistogramSnapshot* drift = FindHistogram(snapshot, name);
  ASSERT_NE(drift, nullptr);
  EXPECT_EQ(drift->count, 0u);

  // Both sides referenced: every answer records one drift sample.
  ASSERT_TRUE(engine.AttachAccuracyReference("g", &ref_g).ok());
  ASSERT_TRUE(engine.AnswerJoin(*id).ok());
  ASSERT_TRUE(engine.AnswerJoin(*id).ok());
  snapshot = engine.MetricsSnapshot();
  drift = FindHistogram(snapshot, name);
  ASSERT_NE(drift, nullptr);
  EXPECT_EQ(drift->count, 2u);
  EXPECT_LT(drift->Mean(), 0.25);  // well-provisioned sketch, mild stream

  // Detach stops recording.
  ASSERT_TRUE(engine.AttachAccuracyReference("f", nullptr).ok());
  ASSERT_TRUE(engine.AnswerJoin(*id).ok());
  snapshot = engine.MetricsSnapshot();
  drift = FindHistogram(snapshot, name);
  EXPECT_EQ(drift->count, 2u);
}

// *WithReport answers feed the report-derived instruments: one ci_rel_width
// sample per answer, and two skim_residual_ratio samples (one per stream)
// for skimmed methods.
TEST(ObservabilityTest, ReportAnswersRecordCiAndSkimInstruments) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({.name = "f", .domain_size = 1024}).ok());
  ASSERT_TRUE(engine.RegisterStream({.name = "g", .domain_size = 1024}).ok());
  JoinQuerySpec join;
  join.left_stream = "f";
  join.right_stream = "g";
  join.estimator.kind = core::EstimatorKind::kSkimmedSketch;
  join.estimator.space_counters = 2048;
  const StatusOr<QueryId> id = engine.AddJoinQuery(join, /*seed=*/7);
  ASSERT_TRUE(id.ok());
  for (uint64_t v = 0; v < 100; ++v) {
    ASSERT_TRUE(engine.Update("f", {.value = v % 40}).ok());
    ASSERT_TRUE(engine.Update("g", {.value = v % 40}).ok());
  }
  for (int i = 0; i < 2; ++i) {
    const StatusOr<EstimateReport> report = engine.AnswerJoinWithReport(*id);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->method, "skimmed");
    ASSERT_TRUE(report->skim.has_value());
  }

  const metrics::Snapshot snapshot = engine.MetricsSnapshot();
  const std::string prefix = "query." + std::to_string(*id) + ".";
  const metrics::HistogramSnapshot* ci_width =
      FindHistogram(snapshot, prefix + "ci_rel_width");
  ASSERT_NE(ci_width, nullptr);
  const metrics::HistogramSnapshot* residual =
      FindHistogram(snapshot, prefix + "skim_residual_ratio");
  ASSERT_NE(residual, nullptr);
#ifndef SKIMJOIN_DISABLE_METRICS
  EXPECT_EQ(ci_width->count, 2u);
  EXPECT_EQ(residual->count, 4u);
#endif
}

#endif  // SKIMJOIN_DISABLE_METRICS

// Engine-level bit-identity: AnswerJoinWithReport must return exactly the
// double AnswerJoin returns (the synopses are deterministic between calls).
TEST(ObservabilityTest, ReportEstimateBitIdenticalToAnswer) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({.name = "f", .domain_size = 256}).ok());
  ASSERT_TRUE(engine.RegisterStream({.name = "g", .domain_size = 256}).ok());
  std::vector<QueryId> ids;
  for (core::EstimatorKind kind :
       {core::EstimatorKind::kAgms, core::EstimatorKind::kHashSketch,
        core::EstimatorKind::kSkimmedSketch, core::EstimatorKind::kCountMin}) {
    JoinQuerySpec join;
    join.left_stream = "f";
    join.right_stream = "g";
    join.estimator.kind = kind;
    join.estimator.space_counters = 1024;
    const StatusOr<QueryId> id = engine.AddJoinQuery(join, /*seed=*/13);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  for (uint64_t v = 0; v < 64; ++v) {
    ASSERT_TRUE(engine.Update("f", {.value = v % 16, .count = 3}).ok());
    ASSERT_TRUE(engine.Update("g", {.value = v % 16, .count = 2}).ok());
  }
  for (QueryId id : ids) {
    const StatusOr<double> answer = engine.AnswerJoin(id);
    const StatusOr<EstimateReport> report = engine.AnswerJoinWithReport(id);
    ASSERT_TRUE(answer.ok() && report.ok());
    EXPECT_EQ(report->estimate, *answer) << report->method;
    EXPECT_LE(report->ci.lower, report->estimate) << report->method;
    EXPECT_GE(report->ci.upper, report->estimate) << report->method;
  }
}

TEST(ObservabilityTest, ChainJoinReportMatchesAnswer) {
  for (ChainJoinQuerySpec::Method method :
       {ChainJoinQuerySpec::Method::kAgmsGrid,
        ChainJoinQuerySpec::Method::kHashSketch}) {
    Engine engine;
    ASSERT_TRUE(engine.RegisterRelation({"a", 1, 64}).ok());
    ASSERT_TRUE(engine.RegisterRelation({"b", 2, 64}).ok());
    ASSERT_TRUE(engine.RegisterRelation({"c", 1, 64}).ok());
    ChainJoinQuerySpec spec;
    spec.relations = {"a", "b", "c"};
    spec.method = method;
    const StatusOr<QueryId> id = engine.AddChainJoinQuery(spec, /*seed=*/9);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(engine.UpdateRelation("a", {7}, 4).ok());
    ASSERT_TRUE(engine.UpdateRelation("b", {7, 9}, 3).ok());
    ASSERT_TRUE(engine.UpdateRelation("c", {9}, 2).ok());

    const StatusOr<double> answer = engine.AnswerChainJoin(*id);
    const StatusOr<EstimateReport> report =
        engine.AnswerChainJoinWithReport(*id);
    ASSERT_TRUE(answer.ok() && report.ok());
    EXPECT_EQ(report->estimate, *answer);
    EXPECT_FALSE(report->copy_estimates.empty());
    EXPECT_LE(report->ci.lower, report->estimate);
    EXPECT_GE(report->ci.upper, report->estimate);
  }
}

// Satellite regression test: the accuracy-drift monitor (PR 3) is wired to
// the event log — crossing the configured rel_error threshold emits one
// `accuracy_drift` warn event; the default (+inf) threshold never does.
TEST(ObservabilityTest, AccuracyDriftCrossingEmitsWarnEvent) {
  EventLog::Global().Clear();
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({.name = "f", .domain_size = 256}).ok());
  FrequencyQuerySpec spec;
  spec.stream = "f";
  spec.space_counters = 2048;
  const StatusOr<QueryId> id = engine.AddFrequencyQuery(spec, /*seed=*/3);
  ASSERT_TRUE(id.ok());

  // A deliberately stale (empty) reference: exact stays 0 while the sketch
  // sees real mass, so rel_error is large and controlled.
  stream::FrequencyVector reference(256);
  ASSERT_TRUE(engine.AttachAccuracyReference("f", &reference).ok());
  ASSERT_TRUE(engine.Update("f", {.value = 7, .count = 500}).ok());

  // Default threshold (+inf): the histogram records, no event.
  ASSERT_TRUE(engine.AnswerPointFrequency(*id, 7).ok());
  EXPECT_EQ(EventLog::Global().emitted_count(), 0u);

  engine.SetAccuracyDriftWarnThreshold(0.5);
  ASSERT_TRUE(engine.AnswerPointFrequency(*id, 7).ok());
  ASSERT_EQ(EventLog::Global().emitted_count(), 1u);
  const std::vector<LogEvent> tail = EventLog::Global().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].event, "accuracy_drift");
  EXPECT_EQ(tail[0].level, LogLevel::kWarn);
  ASSERT_FALSE(tail[0].fields.empty());
  EXPECT_EQ(tail[0].fields[0].first, "query");
  EXPECT_EQ(tail[0].fields[0].second, std::to_string(*id));

  // Raising the threshold back to +inf silences further events.
  engine.SetAccuracyDriftWarnThreshold(
      std::numeric_limits<double>::infinity());
  ASSERT_TRUE(engine.AnswerPointFrequency(*id, 7).ok());
  EXPECT_EQ(EventLog::Global().emitted_count(), 1u);
  EventLog::Global().Clear();
}

TEST(ObservabilityTest, CiBlowupEmitsWarnEvent) {
  EventLog::Global().Clear();
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({.name = "f", .domain_size = 256}).ok());
  ASSERT_TRUE(engine.RegisterStream({.name = "g", .domain_size = 256}).ok());
  JoinQuerySpec join;
  join.left_stream = "f";
  join.right_stream = "g";
  join.estimator.kind = core::EstimatorKind::kAgms;
  join.estimator.space_counters = 512;
  const StatusOr<QueryId> id = engine.AddJoinQuery(join, /*seed=*/21);
  ASSERT_TRUE(id.ok());
  for (uint64_t v = 0; v < 64; ++v) {
    ASSERT_TRUE(engine.Update("f", {.value = v % 32}).ok());
    ASSERT_TRUE(engine.Update("g", {.value = (v + 5) % 32}).ok());
  }

  // Default threshold (+inf): no event, however wide the interval.
  ASSERT_TRUE(engine.AnswerJoinWithReport(*id).ok());
  EXPECT_EQ(EventLog::Global().emitted_count(), 0u);

  // Threshold 0: any interval of non-zero width is a "blow-up".
  engine.SetCiWarnRelWidth(0.0);
  const StatusOr<EstimateReport> report = engine.AnswerJoinWithReport(*id);
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->CiRelWidth(), 0.0);
  ASSERT_EQ(EventLog::Global().emitted_count(), 1u);
  const std::vector<LogEvent> tail = EventLog::Global().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].event, "ci_blowup");
  EXPECT_EQ(tail[0].level, LogLevel::kWarn);
  bool saw_method = false;
  for (const auto& [key, value] : tail[0].fields) {
    if (key == "method") {
      saw_method = true;
      EXPECT_EQ(value, "agms");
    }
  }
  EXPECT_TRUE(saw_method);
  EventLog::Global().Clear();
}

TEST(ObservabilityTest, AttachAccuracyReferenceUnknownStream) {
  Engine engine;
  stream::FrequencyVector reference(16);
  EXPECT_EQ(engine.AttachAccuracyReference("nope", &reference).code(),
            StatusCode::kNotFound);
}

// A reference narrower than the stream would abort inside Get() on the
// first point query past its domain — attach must reject the mismatch.
TEST(ObservabilityTest, AttachAccuracyReferenceRejectsDomainMismatch) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({.name = "f", .domain_size = 64}).ok());
  stream::FrequencyVector narrow(16), wide(128), exact(64);
  EXPECT_EQ(engine.AttachAccuracyReference("f", &narrow).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.AttachAccuracyReference("f", &wide).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(engine.AttachAccuracyReference("f", &exact).ok());
  // Detaching never needs a domain.
  EXPECT_TRUE(engine.AttachAccuracyReference("f", nullptr).ok());
}

// The thread-safe exporter path: a background writer may only call
// metrics_registry().TakeSnapshot(); gauges show up there once the writer
// thread has called RefreshMetricsGauges() (the skimjoin_cli split).
TEST(ObservabilityTest, RegistrySnapshotSeesRefreshedGauges) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({.name = "f", .domain_size = 64}).ok());
  FrequencyQuerySpec spec;
  spec.stream = "f";
  spec.space_counters = 512;
  const StatusOr<QueryId> id = engine.AddFrequencyQuery(spec, /*seed=*/1);
  ASSERT_TRUE(id.ok());

  engine.RefreshMetricsGauges();
  const metrics::Snapshot snapshot = engine.metrics_registry().TakeSnapshot();
  EXPECT_EQ(GaugeValue(snapshot, "engine.num_streams"), 1.0);
  EXPECT_EQ(GaugeValue(snapshot, "engine.num_queries"), 1.0);
  const std::string prefix = "query." + std::to_string(*id) + ".";
  EXPECT_GT(GaugeValue(snapshot, prefix + "memory_bytes"), 0.0);
}

TEST(ObservabilityTest, EmbedderInstrumentsRideAlong) {
  Engine engine;
  engine.metrics_registry().GetCounter("shell.commands")->Increment(9);
  const metrics::Snapshot snapshot = engine.MetricsSnapshot();
  EXPECT_EQ(CounterValue(snapshot, "shell.commands"), 9u);
}

TEST(ObservabilityTest, ClearDropsInstruments) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({.name = "f", .domain_size = 64}).ok());
  ASSERT_TRUE(engine.Update("f", {.value = 1}).ok());
  EXPECT_FALSE(engine.MetricsSnapshot().counters.empty());
  engine.Clear();
  const metrics::Snapshot snapshot = engine.MetricsSnapshot();
  for (const auto& [name, value] : snapshot.counters) {
    EXPECT_NE(name.rfind("ingest.", 0), 0u) << name;
  }
}

TEST(ObservabilityTest, StreamNamesInRegistrationOrder) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({.name = "zebra", .domain_size = 64}).ok());
  ASSERT_TRUE(engine.RegisterStream({.name = "apple", .domain_size = 64}).ok());
  EXPECT_EQ(engine.StreamNames(),
            (std::vector<std::string>{"zebra", "apple"}));
}

}  // namespace
}  // namespace query
}  // namespace skimjoin
