// Engine stress: many streams, many simultaneous queries of every type,
// interleaved updates with deletions — the answers must stay coherent with
// an exact shadow computation.

#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "query/engine.h"
#include "stream/frequency_vector.h"
#include "util/random.h"

namespace skimjoin {
namespace query {
namespace {

constexpr uint64_t kDomain = 1u << 10;

TEST(EngineStressTest, ManyStreamsManyQueriesStayCoherent) {
  Engine engine;
  constexpr int kStreams = 6;
  std::vector<std::string> names;
  std::vector<stream::FrequencyVector> exact;
  for (int s = 0; s < kStreams; ++s) {
    names.push_back("stream-" + std::to_string(s));
    ASSERT_TRUE(engine.RegisterStream({names.back(), kDomain}).ok());
    exact.emplace_back(kDomain);
  }

  // A join query between every adjacent pair, alternating estimators.
  struct JoinCase {
    QueryId id;
    int left;
    int right;
  };
  std::vector<JoinCase> joins;
  for (int s = 0; s + 1 < kStreams; ++s) {
    JoinQuerySpec spec;
    spec.left_stream = names[s];
    spec.right_stream = names[s + 1];
    spec.estimator.kind = (s % 2 == 0) ? core::EstimatorKind::kSkimmedSketch
                                       : core::EstimatorKind::kHashSketch;
    spec.estimator.space_counters = 2048;
    StatusOr<QueryId> id = engine.AddJoinQuery(spec, 100 + s);
    ASSERT_TRUE(id.ok()) << id.status();
    joins.push_back({*id, s, s + 1});
  }
  // Per-stream auxiliary queries on stream 0.
  FrequencyQuerySpec freq_spec;
  freq_spec.stream = names[0];
  freq_spec.space_counters = 4096;
  auto freq_query = *engine.AddFrequencyQuery(freq_spec, 7);
  DistinctCountQuerySpec distinct_spec;
  distinct_spec.stream = names[0];
  distinct_spec.num_maps = 128;
  auto distinct_query = *engine.AddDistinctCountQuery(distinct_spec, 8);
  TopKQuerySpec topk_spec;
  topk_spec.stream = names[0];
  topk_spec.k = 3;
  auto topk_query = *engine.AddTopKQuery(topk_spec, 9);
  EXPECT_EQ(engine.num_queries(), joins.size() + 3);

  // Interleaved workload: skewed inserts everywhere, churn deletions, and
  // three planted heavies on stream 0.
  Rng rng(11);
  for (int round = 0; round < 20000; ++round) {
    const int s = static_cast<int>(rng.NextUint64Below(kStreams));
    const uint64_t value = rng.NextUint64Below(kDomain) %
                           (1 + rng.NextUint64Below(kDomain));
    ASSERT_TRUE(engine.Update(names[s], {value, 1, 0}).ok());
    exact[s].Add(value, 1);
    if (round % 5 == 0) {
      // Delete something that exists (value 0 is always hot under skew).
      const int d = static_cast<int>(rng.NextUint64Below(kStreams));
      if (exact[d].Get(0) > 0) {
        ASSERT_TRUE(engine.Update(names[d], {0, -1, 0}).ok());
        exact[d].Add(0, -1);
      }
    }
  }
  for (int i = 0; i < 700; ++i) {
    ASSERT_TRUE(engine.Update(names[0], {555, 1, 0}).ok());
    exact[0].Add(555, 1);
  }

  // Every join answer within a generous factor of the exact one.
  for (const JoinCase& j : joins) {
    const double true_join =
        static_cast<double>(JoinSize(exact[j.left], exact[j.right]));
    ASSERT_GT(true_join, 0.0);
    StatusOr<double> answer = engine.AnswerJoin(j.id);
    ASSERT_TRUE(answer.ok());
    EXPECT_GT(*answer, 0.3 * true_join) << j.left << "⋈" << j.right;
    EXPECT_LT(*answer, 3.0 * true_join) << j.left << "⋈" << j.right;
  }

  // Frequency answers on stream 0.
  StatusOr<int64_t> point = engine.AnswerPointFrequency(freq_query, 555);
  ASSERT_TRUE(point.ok());
  EXPECT_NEAR(static_cast<double>(*point),
              static_cast<double>(exact[0].Get(555)),
              0.2 * static_cast<double>(exact[0].Get(555)) + 20);

  StatusOr<double> distinct = engine.AnswerDistinctCount(distinct_query);
  ASSERT_TRUE(distinct.ok());
  const double true_distinct = static_cast<double>(exact[0].SupportSize());
  EXPECT_GT(*distinct, true_distinct / 3);
  EXPECT_LT(*distinct, true_distinct * 3);

  StatusOr<std::vector<std::pair<uint64_t, int64_t>>> top =
      engine.AnswerTopK(topk_query);
  ASSERT_TRUE(top.ok());
  ASSERT_FALSE(top->empty());
  // The planted heavy (or the skew head 0/1) must appear.
  bool found_hot = false;
  for (const auto& [value, freq] : *top) {
    found_hot = found_hot || value == 555 || value <= 2;
  }
  EXPECT_TRUE(found_hot);
}

TEST(EngineStressTest, QueriesRegisteredMidStreamOnlySeeSubsequentData) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterStream({"f", kDomain}).ok());
  ASSERT_TRUE(engine.RegisterStream({"g", kDomain}).ok());
  // Phase 1: traffic before any query exists.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(engine.Update("f", {1, 1, 0}).ok());
    ASSERT_TRUE(engine.Update("g", {1, 1, 0}).ok());
  }
  JoinQuerySpec spec;
  spec.left_stream = "f";
  spec.right_stream = "g";
  spec.estimator.kind = core::EstimatorKind::kSkimmedSketch;
  spec.estimator.space_counters = 1024;
  auto query = *engine.AddJoinQuery(spec, 5);
  // Phase 2: traffic the query observes.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.Update("f", {2, 1, 0}).ok());
    ASSERT_TRUE(engine.Update("g", {2, 1, 0}).ok());
  }
  StatusOr<double> answer = engine.AnswerJoin(query);
  ASSERT_TRUE(answer.ok());
  // Only phase-2 mass: 100·100, not 600·600.
  EXPECT_NEAR(*answer, 10000.0, 1500.0);
}

}  // namespace
}  // namespace query
}  // namespace skimjoin
