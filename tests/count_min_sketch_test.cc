#include "sketch/count_min_sketch.h"

#include <utility>

#include "gtest/gtest.h"
#include "stream/zipf.h"
#include "util/random.h"

namespace skimjoin {
namespace sketch {
namespace {

using stream::FrequencyVector;

CountMinSketch MustCreate(const CountMinConfig& config, uint64_t seed) {
  StatusOr<CountMinSketch> sketch = CountMinSketch::Create(config, seed);
  EXPECT_TRUE(sketch.ok()) << sketch.status();
  return *std::move(sketch);
}

TEST(CountMinTest, CreateValidatesConfig) {
  EXPECT_FALSE(CountMinSketch::Create({0, 8}, 1).ok());
  EXPECT_FALSE(CountMinSketch::Create({3, 0}, 1).ok());
  EXPECT_TRUE(CountMinSketch::Create({1, 1}, 1).ok());
}

TEST(CountMinTest, PointEstimateNeverUnderestimatesInsertOnly) {
  constexpr uint64_t kDomain = 512;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.0).ExpectedFrequencies(20000);
  CountMinSketch sketch = MustCreate({5, 128}, 3);
  sketch.Absorb(f);
  for (uint64_t v = 0; v < kDomain; ++v) {
    EXPECT_GE(sketch.PointEstimate(v), f.Get(v)) << "value " << v;
  }
}

TEST(CountMinTest, PointEstimateExactWithoutCollisions) {
  CountMinSketch sketch = MustCreate({5, 1024}, 4);
  sketch.Update(3, 9);
  sketch.Update(900, 2);
  EXPECT_EQ(sketch.PointEstimate(3), 9);
  EXPECT_EQ(sketch.PointEstimate(900), 2);
}

TEST(CountMinTest, JoinEstimateUpperBoundsExactInsertOnly) {
  constexpr uint64_t kDomain = 512;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.0).ExpectedFrequencies(10000);
  const FrequencyVector g =
      stream::ZipfDistribution(kDomain, 1.0, /*shift=*/8)
          .ExpectedFrequencies(10000);
  CountMinSketch sf = MustCreate({5, 128}, 6);
  CountMinSketch sg = MustCreate({5, 128}, 6);
  sf.Absorb(f);
  sg.Absorb(g);
  StatusOr<double> join = CountMinSketch::EstimateJoinSize(sf, sg);
  ASSERT_TRUE(join.ok());
  EXPECT_GE(*join, static_cast<double>(stream::JoinSize(f, g)));
}

TEST(CountMinTest, IncompatibleSketchesRejected) {
  CountMinSketch f = MustCreate({3, 32}, 1);
  EXPECT_FALSE(
      CountMinSketch::EstimateJoinSize(f, MustCreate({3, 32}, 2)).ok());
  EXPECT_FALSE(
      CountMinSketch::EstimateJoinSize(f, MustCreate({4, 32}, 1)).ok());
}

TEST(CountMinTest, DeletesReduceCounters) {
  CountMinSketch sketch = MustCreate({5, 64}, 8);
  sketch.Update(10, 5);
  sketch.Update(10, -5);
  EXPECT_EQ(sketch.PointEstimate(10), 0);
}

TEST(CountMinTest, MoreBucketsTightenPointEstimates) {
  constexpr uint64_t kDomain = 2048;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 0.6).ExpectedFrequencies(50000);
  CountMinSketch narrow = MustCreate({5, 32}, 9);
  CountMinSketch wide = MustCreate({5, 2048}, 9);
  narrow.Absorb(f);
  wide.Absorb(f);
  int64_t narrow_excess = 0;
  int64_t wide_excess = 0;
  for (uint64_t v = 0; v < 200; ++v) {
    narrow_excess += narrow.PointEstimate(v) - f.Get(v);
    wide_excess += wide.PointEstimate(v) - f.Get(v);
  }
  EXPECT_LT(wide_excess, narrow_excess);
}

}  // namespace
}  // namespace sketch
}  // namespace skimjoin
