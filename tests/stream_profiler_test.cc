// util/stream_profiler accuracy and bookkeeping tests. The accuracy
// contract pinned here is the one OBSERVABILITY.md advertises: on seeded
// Zipf workloads the fitted skew lands within ±0.15 of the generator's
// exponent, and heavy-hitter recall against exact counts is at least 0.9.

#include "util/stream_profiler.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "stream/frequency_vector.h"
#include "stream/stream_element.h"
#include "stream/zipf.h"
#include "util/random.h"

namespace skimjoin {
namespace util {
namespace {

constexpr uint64_t kDomain = 8192;
constexpr uint64_t kElements = 1u << 20;

// One seeded Zipf(z) stream fed through a profiler, alongside the exact
// frequency vector for reference.
struct ProfiledStream {
  StreamProfiler profiler;
  stream::FrequencyVector exact{kDomain};
};

void FeedZipf(double z, uint64_t seed, ProfiledStream* out) {
  Rng rng(seed);
  const stream::ZipfDistribution distribution(kDomain, z);
  const std::vector<stream::StreamElement> elements =
      distribution.GenerateElements(kElements, &rng);
  for (const stream::StreamElement& element : elements) {
    out->profiler.Observe(element.value, element.weight);
    out->exact.Apply(element);
  }
}

TEST(StreamProfilerTest, TalliesAndDeleteRatio) {
  StreamProfiler profiler;
  profiler.Observe(1, 6);
  profiler.Observe(2, 3);
  profiler.Observe(1, -3);
  const StreamProfiler::Snapshot snapshot = profiler.TakeSnapshot();
  EXPECT_EQ(snapshot.observations, 3u);
  EXPECT_EQ(snapshot.insert_mass, 9u);
  EXPECT_EQ(snapshot.delete_mass, 3u);
  EXPECT_EQ(snapshot.net_mass, 6);
  EXPECT_DOUBLE_EQ(snapshot.delete_ratio, 0.25);
}

TEST(StreamProfilerTest, EmptySnapshotIsAllZeroAndUnfitted) {
  StreamProfiler profiler;
  const StreamProfiler::Snapshot snapshot = profiler.TakeSnapshot();
  EXPECT_EQ(snapshot.observations, 0u);
  EXPECT_DOUBLE_EQ(snapshot.delete_ratio, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.heavy_mass_fraction, 0.0);
  EXPECT_TRUE(std::isnan(snapshot.skew));
  EXPECT_TRUE(snapshot.heavy_hitters.empty());
}

// Below capacity every value is monitored with zero inherited error, so the
// heavy-hitter counts are exact.
TEST(StreamProfilerTest, ExactCountsUnderCapacity) {
  StreamProfiler profiler(/*capacity=*/16);
  for (uint64_t value = 0; value < 10; ++value) {
    for (uint64_t repeat = 0; repeat <= value; ++repeat) {
      profiler.Observe(value, 1);
    }
  }
  const StreamProfiler::Snapshot snapshot = profiler.TakeSnapshot();
  ASSERT_EQ(snapshot.heavy_hitters.size(), 10u);
  EXPECT_EQ(snapshot.heavy_hitters.front().value, 9u);
  EXPECT_EQ(snapshot.heavy_hitters.front().count, 10);
  for (const StreamProfiler::HeavyHitter& hitter : snapshot.heavy_hitters) {
    EXPECT_EQ(hitter.error, 0);
    EXPECT_EQ(hitter.count, static_cast<int64_t>(hitter.value) + 1);
  }
}

// Satellite accuracy pin: fitted Zipf exponent within ±0.15 across the
// skews the paper's evaluation sweeps.
TEST(StreamProfilerTest, SkewFitAcrossZipfExponents) {
  const double skews[] = {0.5, 1.0, 1.5};
  uint64_t seed = 101;
  for (const double z : skews) {
    ProfiledStream fed;
    FeedZipf(z, seed++, &fed);
    const StreamProfiler::Snapshot snapshot = fed.profiler.TakeSnapshot();
    ASSERT_FALSE(std::isnan(snapshot.skew)) << "z=" << z;
    EXPECT_NEAR(snapshot.skew, z, 0.15) << "z=" << z;
  }
}

// Recall against exact counts: every value whose true frequency clears
// twice the SpaceSaving guarantee threshold (N / capacity) must be among
// the monitored entries. Vacuous at z=0.5 (no value is that heavy over
// this domain), so the non-vacuity assert applies from z=1.0 up.
TEST(StreamProfilerTest, HeavyHitterRecallAgainstExactCounts) {
  const double skews[] = {1.0, 1.5};
  uint64_t seed = 202;
  for (const double z : skews) {
    ProfiledStream fed;
    FeedZipf(z, seed++, &fed);
    const StreamProfiler::Snapshot snapshot = fed.profiler.TakeSnapshot();
    const int64_t threshold =
        2 * static_cast<int64_t>(kElements / fed.profiler.capacity());
    std::vector<uint64_t> expected;
    for (uint64_t value = 0; value < kDomain; ++value) {
      if (fed.exact.Get(value) >= threshold) expected.push_back(value);
    }
    ASSERT_FALSE(expected.empty()) << "vacuous recall target at z=" << z;
    std::set<uint64_t> monitored;
    for (const StreamProfiler::HeavyHitter& hitter : snapshot.heavy_hitters) {
      monitored.insert(hitter.value);
    }
    size_t recalled = 0;
    for (const uint64_t value : expected) {
      recalled += monitored.count(value);
    }
    const double recall =
        static_cast<double>(recalled) / static_cast<double>(expected.size());
    EXPECT_GE(recall, 0.9) << "z=" << z << " (" << recalled << "/"
                           << expected.size() << ")";
    // Mass fraction should be meaningful on a skewed stream: the monitored
    // set provably covers a nontrivial share of the insert mass.
    EXPECT_GT(snapshot.heavy_mass_fraction, 0.2) << "z=" << z;
  }
}

TEST(StreamProfilerTest, DistinctEstimateTracksSupportSize) {
  ProfiledStream fed;
  FeedZipf(1.0, 303, &fed);
  const StreamProfiler::Snapshot snapshot = fed.profiler.TakeSnapshot();
  const double exact = static_cast<double>(fed.exact.SupportSize());
  // 64 HLL registers give ~13% standard error; 35% is a 2.7-sigma band.
  EXPECT_NEAR(snapshot.distinct_estimate, exact, 0.35 * exact);
  EXPECT_GT(snapshot.distinct_rate, 0.0);
  EXPECT_LT(snapshot.distinct_rate, 1.0);
}

TEST(StreamProfilerTest, ResetReturnsToFreshState) {
  StreamProfiler profiler;
  for (uint64_t value = 0; value < 1000; ++value) {
    profiler.Observe(value % 37, 2);
  }
  profiler.Reset();
  const StreamProfiler::Snapshot snapshot = profiler.TakeSnapshot();
  EXPECT_EQ(snapshot.observations, 0u);
  EXPECT_EQ(snapshot.insert_mass, 0u);
  EXPECT_EQ(snapshot.net_mass, 0);
  EXPECT_DOUBLE_EQ(snapshot.distinct_estimate, 0.0);
  EXPECT_TRUE(snapshot.heavy_hitters.empty());
  EXPECT_TRUE(std::isnan(snapshot.skew));
}

TEST(FitZipfExponentTest, RejectsUnderdeterminedInputs) {
  EXPECT_TRUE(std::isnan(FitZipfExponentFromHeavyMass(0, 1000.0, 0.5)));
  EXPECT_TRUE(std::isnan(FitZipfExponentFromHeavyMass(10, 1000.0, 0.0)));
  EXPECT_TRUE(std::isnan(FitZipfExponentFromHeavyMass(10, 1000.0, -0.1)));
  // distinct must exceed the stable count for the model to have a tail.
  EXPECT_TRUE(std::isnan(FitZipfExponentFromHeavyMass(10, 10.0, 0.5)));
}

// Feeding the fitter the EXACT top-k mass fraction of a Zipf(z) model must
// recover z almost perfectly — this isolates the fitter from sampling and
// SpaceSaving noise.
TEST(FitZipfExponentTest, RecoversExponentFromExactMass) {
  const double skews[] = {0.3, 0.8, 1.2, 2.0};
  const uint64_t top = 64;
  const double distinct = 4096.0;
  for (const double z : skews) {
    double top_mass = 0.0;
    double total_mass = 0.0;
    for (uint64_t rank = 1; rank <= static_cast<uint64_t>(distinct); ++rank) {
      const double mass = std::pow(static_cast<double>(rank), -z);
      total_mass += mass;
      if (rank <= top) top_mass += mass;
    }
    const double fitted =
        FitZipfExponentFromHeavyMass(top, distinct, top_mass / total_mass);
    EXPECT_NEAR(fitted, z, 1e-6) << "z=" << z;
  }
}

TEST(FitZipfExponentTest, SaturatesAtBisectionBounds) {
  // A mass fraction at/below the uniform cover clamps to 0; a fraction the
  // steepest modeled skew cannot reach clamps to the upper bound.
  EXPECT_DOUBLE_EQ(FitZipfExponentFromHeavyMass(64, 4096.0, 64.0 / 4096.0),
                   0.0);
  EXPECT_DOUBLE_EQ(FitZipfExponentFromHeavyMass(1, 1u << 30, 1.0), 5.0);
}

}  // namespace
}  // namespace util
}  // namespace skimjoin
