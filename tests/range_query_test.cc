// Range-frequency and quantile queries answered from the dyadic levels of a
// SkimmedSketch (core/skimmed_sketch.h).

#include <cstdint>
#include <utility>

#include "core/skimmed_sketch.h"
#include "gtest/gtest.h"
#include "stream/frequency_vector.h"
#include "stream/zipf.h"
#include "util/random.h"

namespace skimjoin {
namespace core {
namespace {

SkimmedSketchConfig DyadicConfig() {
  SkimmedSketchConfig config;
  config.domain_size = 1u << 10;
  config.num_tables = 7;
  config.num_buckets = 256;
  config.use_dyadic_skim = true;
  config.dyadic_num_buckets = 256;
  return config;
}

TEST(RangeQueryTest, RequiresDyadicLevels) {
  SkimmedSketchConfig config = DyadicConfig();
  config.use_dyadic_skim = false;
  auto sketch = *SkimmedSketch::Create(config, 1);
  EXPECT_EQ(sketch.EstimateRangeFrequency(0, 5).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(sketch.EstimateQuantile(0.5).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(RangeQueryTest, ValidatesBounds) {
  auto sketch = *SkimmedSketch::Create(DyadicConfig(), 2);
  EXPECT_EQ(sketch.EstimateRangeFrequency(5, 4).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sketch.EstimateRangeFrequency(0, 1u << 10).status().code(),
            StatusCode::kOutOfRange);
}

TEST(RangeQueryTest, ExactOnIsolatedValues) {
  auto sketch = *SkimmedSketch::Create(DyadicConfig(), 3);
  sketch.Update(10, 100);
  sketch.Update(20, 50);
  sketch.Update(600, 7);
  EXPECT_EQ(*sketch.EstimateRangeFrequency(10, 10), 100);
  EXPECT_EQ(*sketch.EstimateRangeFrequency(0, 99), 150);
  EXPECT_EQ(*sketch.EstimateRangeFrequency(11, 599), 50);
  EXPECT_EQ(*sketch.EstimateRangeFrequency(0, 1023), 157);
  EXPECT_EQ(*sketch.EstimateRangeFrequency(601, 1023), 0);
}

TEST(RangeQueryTest, SingletonAndFullDomainRanges) {
  auto sketch = *SkimmedSketch::Create(DyadicConfig(), 4);
  for (uint64_t v = 0; v < 1024; ++v) sketch.Update(v, 1);
  EXPECT_NEAR(*sketch.EstimateRangeFrequency(0, 1023), 1024, 64);
  EXPECT_NEAR(*sketch.EstimateRangeFrequency(512, 512), 1, 8);
}

TEST(RangeQueryTest, UnalignedRangesTrackExactSums) {
  constexpr uint64_t kDomain = 1u << 10;
  const stream::FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.0).ExpectedFrequencies(50000);
  auto sketch = *SkimmedSketch::Create(DyadicConfig(), 5);
  sketch.Absorb(f);
  struct Range {
    uint64_t lo, hi;
  };
  for (const Range r : {Range{3, 117}, Range{100, 611}, Range{511, 513},
                        Range{900, 1023}, Range{0, 7}}) {
    int64_t exact = 0;
    for (uint64_t v = r.lo; v <= r.hi; ++v) exact += f.Get(v);
    StatusOr<int64_t> estimate = sketch.EstimateRangeFrequency(r.lo, r.hi);
    ASSERT_TRUE(estimate.ok());
    // O(log m) interval estimates, each with noise ~sqrt(F2_level/b);
    // generous absolute envelope keeps the test stable.
    EXPECT_NEAR(*estimate, exact, 0.1 * 50000 + 0.15 * exact)
        << "[" << r.lo << ", " << r.hi << "]";
  }
}

TEST(RangeQueryTest, DeletesFlowThroughRanges) {
  auto sketch = *SkimmedSketch::Create(DyadicConfig(), 6);
  sketch.Update(100, 500);
  sketch.Update(100, -500);
  sketch.Update(101, 30);
  EXPECT_EQ(*sketch.EstimateRangeFrequency(64, 127), 30);
}

TEST(QuantileTest, UniformDataQuantilesAreProportional) {
  auto sketch = *SkimmedSketch::Create(DyadicConfig(), 7);
  for (uint64_t v = 0; v < 1024; ++v) sketch.Update(v, 10);
  for (double phi : {0.25, 0.5, 0.75, 1.0}) {
    StatusOr<uint64_t> q = sketch.EstimateQuantile(phi);
    ASSERT_TRUE(q.ok());
    EXPECT_NEAR(static_cast<double>(*q), phi * 1024.0, 96.0) << "phi=" << phi;
  }
}

TEST(QuantileTest, PointMassPullsEveryQuantile) {
  auto sketch = *SkimmedSketch::Create(DyadicConfig(), 8);
  sketch.Update(700, 10000);
  sketch.Update(10, 1);
  for (double phi : {0.2, 0.5, 0.9}) {
    EXPECT_EQ(*sketch.EstimateQuantile(phi), 700u) << "phi=" << phi;
  }
}

TEST(QuantileTest, SkewedDataMedianLandsInTheHead) {
  constexpr uint64_t kDomain = 1u << 10;
  const stream::FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.2).ExpectedFrequencies(100000);
  auto sketch = *SkimmedSketch::Create(DyadicConfig(), 9);
  sketch.Absorb(f);
  // Exact median value.
  int64_t cumulative = 0;
  uint64_t exact_median = 0;
  for (uint64_t v = 0; v < kDomain; ++v) {
    cumulative += f.Get(v);
    if (cumulative >= 50000) {
      exact_median = v;
      break;
    }
  }
  StatusOr<uint64_t> estimated = sketch.EstimateQuantile(0.5);
  ASSERT_TRUE(estimated.ok());
  // Rank error, not value error: the estimated median's cumulative rank
  // should be within a few percent of n/2.
  int64_t estimated_rank = 0;
  for (uint64_t v = 0; v <= *estimated; ++v) estimated_rank += f.Get(v);
  EXPECT_NEAR(estimated_rank, 50000, 5000) << "value " << *estimated
                                           << " exact median " << exact_median;
}

TEST(QuantileTest, EmptyStreamRejected) {
  auto sketch = *SkimmedSketch::Create(DyadicConfig(), 10);
  EXPECT_EQ(sketch.EstimateQuantile(0.5).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(QuantileDeathTest, PhiValidated) {
  auto sketch = *SkimmedSketch::Create(DyadicConfig(), 11);
  sketch.Update(1, 5);
  EXPECT_DEATH((void)sketch.EstimateQuantile(0.0), "phi");
  EXPECT_DEATH((void)sketch.EstimateQuantile(1.5), "phi");
}

}  // namespace
}  // namespace core
}  // namespace skimjoin
