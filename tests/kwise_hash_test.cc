#include "hashing/kwise_hash.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "hashing/prime_field.h"
#include "util/random.h"

namespace skimjoin {
namespace hashing {
namespace {

TEST(KWiseHashTest, DeterministicGivenSameRngState) {
  Rng rng_a(5);
  Rng rng_b(5);
  KWiseHash a(4, &rng_a);
  KWiseHash b(4, &rng_b);
  for (uint64_t x = 0; x < 100; ++x) EXPECT_EQ(a(x), b(x));
}

TEST(KWiseHashTest, IndependenceParameterSetsDegree) {
  Rng rng(5);
  for (int k : {1, 2, 3, 4, 7}) {
    KWiseHash h(k, &rng);
    EXPECT_EQ(h.independence(), k);
    EXPECT_EQ(h.coefficients().size(), static_cast<size_t>(k));
  }
}

TEST(KWiseHashTest, OutputsStayInField) {
  Rng rng(11);
  KWiseHash h(4, &rng);
  Rng inputs(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(h(inputs.NextUint64()), kMersennePrime61);
  }
}

TEST(KWiseHashTest, ConstantFamilyWhenIndependenceOne) {
  Rng rng(2);
  KWiseHash h(1, &rng);
  const uint64_t c = h(0);
  for (uint64_t x = 1; x < 50; ++x) EXPECT_EQ(h(x), c);
}

TEST(KWiseHashTest, LeadingCoefficientNonZero) {
  // Try many draws; the degree-forcing rule must always hold.
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    KWiseHash h(4, &rng);
    EXPECT_NE(h.coefficients().back(), 0u);
  }
}

TEST(KWiseHashTest, MatchesManualPolynomialEvaluation) {
  Rng rng(21);
  KWiseHash h(3, &rng);
  const auto& c = h.coefficients();
  for (uint64_t x : {0ull, 1ull, 17ull, 123456789ull}) {
    const uint64_t v = FoldToField61(x);
    // c0 + c1*v + c2*v^2 mod p
    uint64_t expected = AddMod61(c[0], MulMod61(c[1], v));
    expected = AddMod61(expected, MulMod61(c[2], MulMod61(v, v)));
    EXPECT_EQ(h(x), expected);
  }
}

TEST(KWiseHashTest, DistinctFamiliesDisagree) {
  Rng rng(5);
  KWiseHash a(4, &rng);
  KWiseHash b(4, &rng);
  int equal = 0;
  for (uint64_t x = 0; x < 200; ++x) equal += (a(x) == b(x));
  EXPECT_LE(equal, 2);
}

TEST(BucketHashTest, RangeRespected) {
  Rng rng(9);
  for (uint64_t buckets : {1ull, 2ull, 7ull, 64ull, 1000ull}) {
    Rng local(rng.NextUint64());
    BucketHash h(buckets, &local);
    EXPECT_EQ(h.num_buckets(), buckets);
    for (uint64_t x = 0; x < 500; ++x) EXPECT_LT(h(x), buckets);
  }
}

TEST(BucketHashTest, SingleBucketMapsEverythingToZero) {
  Rng rng(4);
  BucketHash h(1, &rng);
  for (uint64_t x = 0; x < 100; ++x) EXPECT_EQ(h(x), 0u);
}

TEST(BucketHashTest, RoughlyUniformOverBuckets) {
  Rng rng(31);
  constexpr uint64_t kBuckets = 16;
  BucketHash h(kBuckets, &rng);
  constexpr int kDraws = 32000;
  std::vector<int> histogram(kBuckets, 0);
  for (int x = 0; x < kDraws; ++x) ++histogram[h(static_cast<uint64_t>(x))];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(histogram[b], expected, 6 * std::sqrt(expected))
        << "bucket " << b;
  }
}

// Pairwise-independence smoke test: over random pairs (x, y), collision
// probability should be close to 1/num_buckets on average across many
// independently drawn family members.
TEST(BucketHashTest, CollisionRateNearOneOverB) {
  constexpr uint64_t kBuckets = 32;
  constexpr int kFamilies = 200;
  constexpr int kPairsPerFamily = 200;
  Rng seeder(123);
  int collisions = 0;
  for (int f = 0; f < kFamilies; ++f) {
    Rng family_rng(seeder.NextUint64());
    BucketHash h(kBuckets, &family_rng);
    Rng values(seeder.NextUint64());
    for (int p = 0; p < kPairsPerFamily; ++p) {
      const uint64_t x = values.NextUint64Below(1u << 20);
      uint64_t y = values.NextUint64Below(1u << 20);
      if (y == x) ++y;
      collisions += (h(x) == h(y));
    }
  }
  const double rate =
      static_cast<double>(collisions) / (kFamilies * kPairsPerFamily);
  EXPECT_NEAR(rate, 1.0 / kBuckets, 0.01);
}

}  // namespace
}  // namespace hashing
}  // namespace skimjoin
