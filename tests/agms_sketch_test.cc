#include "sketch/agms_sketch.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "stream/exact.h"
#include "stream/zipf.h"
#include "util/random.h"

namespace skimjoin {
namespace sketch {
namespace {

using stream::FrequencyVector;

AgmsSketch MustCreate(const AgmsConfig& config, uint64_t seed) {
  StatusOr<AgmsSketch> sketch = AgmsSketch::Create(config, seed);
  EXPECT_TRUE(sketch.ok()) << sketch.status();
  return *std::move(sketch);
}

TEST(AgmsSketchTest, CreateValidatesConfig) {
  EXPECT_FALSE(AgmsSketch::Create({0, 5}, 1).ok());
  EXPECT_FALSE(AgmsSketch::Create({5, 0}, 1).ok());
  EXPECT_TRUE(AgmsSketch::Create({1, 1}, 1).ok());
}

TEST(AgmsSketchTest, EmptySketchEstimatesZero) {
  AgmsSketch f = MustCreate({16, 5}, 1);
  AgmsSketch g = MustCreate({16, 5}, 1);
  StatusOr<double> join = AgmsSketch::EstimateJoinSize(f, g);
  ASSERT_TRUE(join.ok());
  EXPECT_DOUBLE_EQ(*join, 0.0);
  EXPECT_DOUBLE_EQ(f.EstimateSelfJoinSize(), 0.0);
}

TEST(AgmsSketchTest, SingleValueSelfJoinIsExact) {
  // With one distinct value, X = f_v·ξ(v), so X² = f_v² in every cell.
  AgmsSketch f = MustCreate({8, 3}, 2);
  f.Update(7, 6);
  EXPECT_DOUBLE_EQ(f.EstimateSelfJoinSize(), 36.0);
}

TEST(AgmsSketchTest, SingleSharedValueJoinIsExact) {
  AgmsSketch f = MustCreate({8, 3}, 2);
  AgmsSketch g = MustCreate({8, 3}, 2);
  f.Update(7, 6);
  g.Update(7, 5);
  StatusOr<double> join = AgmsSketch::EstimateJoinSize(f, g);
  ASSERT_TRUE(join.ok());
  EXPECT_DOUBLE_EQ(*join, 30.0);  // ξ(7)² = 1 in every cell
}

TEST(AgmsSketchTest, InsertThenDeleteCancelsExactly) {
  AgmsSketch f = MustCreate({16, 5}, 3);
  const AgmsSketch empty = MustCreate({16, 5}, 3);
  for (uint64_t v = 0; v < 50; ++v) f.Update(v, 1);
  for (uint64_t v = 0; v < 50; ++v) f.Update(v, -1);
  for (uint64_t i = 0; i < 16; ++i) {
    for (uint64_t j = 0; j < 5; ++j) {
      EXPECT_EQ(f.counter(i, j), empty.counter(i, j));
    }
  }
}

TEST(AgmsSketchTest, AbsorbMatchesElementwiseUpdates) {
  FrequencyVector fv(64);
  Rng rng(4);
  for (int i = 0; i < 500; ++i) fv.Add(rng.NextUint64Below(64), 1);
  AgmsSketch by_absorb = MustCreate({8, 3}, 7);
  by_absorb.Absorb(fv);
  AgmsSketch by_updates = MustCreate({8, 3}, 7);
  for (uint64_t v = 0; v < 64; ++v) {
    for (int64_t c = 0; c < fv.Get(v); ++c) by_updates.Update(v, 1);
  }
  for (uint64_t i = 0; i < 8; ++i) {
    for (uint64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(by_absorb.counter(i, j), by_updates.counter(i, j));
    }
  }
}

TEST(AgmsSketchTest, MergeEqualsConcatenatedStream) {
  AgmsSketch part1 = MustCreate({8, 3}, 9);
  AgmsSketch part2 = MustCreate({8, 3}, 9);
  AgmsSketch whole = MustCreate({8, 3}, 9);
  for (uint64_t v = 0; v < 30; ++v) {
    part1.Update(v, 2);
    whole.Update(v, 2);
  }
  for (uint64_t v = 20; v < 60; ++v) {
    part2.Update(v, -1);
    whole.Update(v, -1);
  }
  part1.Merge(part2);
  for (uint64_t i = 0; i < 8; ++i) {
    for (uint64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(part1.counter(i, j), whole.counter(i, j));
    }
  }
}

TEST(AgmsSketchTest, IncompatibleSketchesRejected) {
  AgmsSketch f = MustCreate({8, 3}, 1);
  AgmsSketch different_seed = MustCreate({8, 3}, 2);
  AgmsSketch different_shape = MustCreate({4, 3}, 1);
  EXPECT_FALSE(AgmsSketch::EstimateJoinSize(f, different_seed).ok());
  EXPECT_FALSE(AgmsSketch::EstimateJoinSize(f, different_shape).ok());
  EXPECT_FALSE(f.CompatibleWith(different_seed));
  EXPECT_TRUE(f.CompatibleWith(MustCreate({8, 3}, 1)));
}

// Unbiasedness: the mean estimate over many independent seeds approaches the
// exact join size.
TEST(AgmsSketchTest, JoinEstimateIsUnbiasedAcrossSeeds) {
  constexpr uint64_t kDomain = 128;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.0).ExpectedFrequencies(5000);
  const FrequencyVector g =
      stream::ZipfDistribution(kDomain, 1.0, /*shift=*/4)
          .ExpectedFrequencies(5000);
  const double exact = static_cast<double>(stream::JoinSize(f, g));
  ASSERT_GT(exact, 0.0);

  double sum = 0.0;
  constexpr int kSeeds = 120;
  for (int seed = 0; seed < kSeeds; ++seed) {
    AgmsSketch sf = MustCreate({16, 1}, static_cast<uint64_t>(seed) + 100);
    AgmsSketch sg = MustCreate({16, 1}, static_cast<uint64_t>(seed) + 100);
    sf.Absorb(f);
    sg.Absorb(g);
    StatusOr<double> join = AgmsSketch::EstimateJoinSize(sf, sg);
    ASSERT_TRUE(join.ok());
    sum += *join;
  }
  const double mean = sum / kSeeds;
  EXPECT_NEAR(mean, exact, 0.25 * exact);
}

// Accuracy scales with space: a big sketch should estimate a moderately
// skewed self-join within 20%.
TEST(AgmsSketchTest, SelfJoinAccuracyWithAmpleSpace) {
  constexpr uint64_t kDomain = 256;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 0.8).ExpectedFrequencies(20000);
  const double exact = static_cast<double>(f.SelfJoinSize());
  AgmsSketch sketch = MustCreate({128, 7}, 5);
  sketch.Absorb(f);
  EXPECT_NEAR(sketch.EstimateSelfJoinSize(), exact, 0.2 * exact);
}

TEST(AgmsSketchTest, HandlesDeleteHeavyWorkload) {
  constexpr uint64_t kDomain = 64;
  FrequencyVector net(kDomain);
  AgmsSketch sf = MustCreate({64, 5}, 11);
  AgmsSketch sg = MustCreate({64, 5}, 11);
  Rng rng(8);
  // Insert a lot, delete most of it.
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.NextUint64Below(kDomain);
    sf.Update(v, 1);
    net.Add(v, 1);
  }
  for (int i = 0; i < 4000; ++i) {
    const uint64_t v = rng.NextUint64Below(kDomain);
    sf.Update(v, -1);
    net.Add(v, -1);
  }
  FrequencyVector g(kDomain);
  for (uint64_t v = 0; v < kDomain; ++v) {
    g.Add(v, 3);
    sg.Update(v, 3);
  }
  const double exact = static_cast<double>(stream::JoinSize(net, g));
  StatusOr<double> join = AgmsSketch::EstimateJoinSize(sf, sg);
  ASSERT_TRUE(join.ok());
  EXPECT_NEAR(*join, exact, 0.5 * std::abs(exact) + 200.0);
}

// Property sweep over grid shapes: estimates stay finite and compatible
// self-join estimates are non-negative-ish (each average is a mean of
// squares, so every per-median average is >= 0).
class AgmsShapeTest
    : public ::testing::TestWithParam<std::pair<uint64_t, uint64_t>> {};

TEST_P(AgmsShapeTest, SelfJoinEstimateNonNegative) {
  const auto [means, medians] = GetParam();
  AgmsSketch sketch = MustCreate({means, medians}, 17);
  Rng rng(19);
  for (int i = 0; i < 300; ++i) sketch.Update(rng.NextUint64Below(100), 1);
  EXPECT_GE(sketch.EstimateSelfJoinSize(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AgmsShapeTest,
    ::testing::Values(std::pair<uint64_t, uint64_t>{1, 1},
                      std::pair<uint64_t, uint64_t>{1, 9},
                      std::pair<uint64_t, uint64_t>{32, 1},
                      std::pair<uint64_t, uint64_t>{16, 4},
                      std::pair<uint64_t, uint64_t>{50, 11}));

}  // namespace
}  // namespace sketch
}  // namespace skimjoin
