#include "core/skimmed_sketch.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <tuple>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "sketch/agms_sketch.h"
#include "stream/exact.h"
#include "stream/zipf.h"
#include "util/random.h"
#include "util/stats.h"

namespace skimjoin {
namespace core {
namespace {

using stream::FrequencyVector;

SkimmedSketchConfig BaseConfig() {
  SkimmedSketchConfig config;
  config.domain_size = 1u << 10;
  config.num_tables = 5;
  config.num_buckets = 256;
  config.use_dyadic_skim = false;
  return config;
}

SkimmedSketch MustCreate(const SkimmedSketchConfig& config, uint64_t seed) {
  StatusOr<SkimmedSketch> sketch = SkimmedSketch::Create(config, seed);
  EXPECT_TRUE(sketch.ok()) << sketch.status();
  return *std::move(sketch);
}

TEST(SkimmedSketchTest, CreateValidatesConfig) {
  SkimmedSketchConfig config = BaseConfig();
  config.domain_size = 1;
  EXPECT_FALSE(SkimmedSketch::Create(config, 1).ok());

  config = BaseConfig();
  config.use_dyadic_skim = true;
  config.domain_size = 100;  // not a power of two
  EXPECT_FALSE(SkimmedSketch::Create(config, 1).ok());

  config = BaseConfig();
  config.num_tables = 0;
  EXPECT_FALSE(SkimmedSketch::Create(config, 1).ok());

  config = BaseConfig();
  config.num_buckets = 0;
  EXPECT_FALSE(SkimmedSketch::Create(config, 1).ok());

  config = BaseConfig();
  config.threshold_scale = 0.0;
  EXPECT_FALSE(SkimmedSketch::Create(config, 1).ok());

  config = BaseConfig();
  config.min_threshold = 0;
  EXPECT_FALSE(SkimmedSketch::Create(config, 1).ok());

  config = BaseConfig();
  config.recurse_slack = 0.0;
  EXPECT_FALSE(SkimmedSketch::Create(config, 1).ok());
  config.recurse_slack = 1.5;
  EXPECT_FALSE(SkimmedSketch::Create(config, 1).ok());

  // Non-power-of-two domains are fine without dyadic skimming.
  config = BaseConfig();
  config.domain_size = 1000;
  EXPECT_TRUE(SkimmedSketch::Create(config, 1).ok());
}

TEST(SkimmedSketchTest, EmptySketchEstimatesZeroJoin) {
  SkimmedSketch f = MustCreate(BaseConfig(), 1);
  SkimmedSketch g = MustCreate(BaseConfig(), 1);
  StatusOr<double> join = SkimmedSketch::EstimateJoinSize(f, g);
  ASSERT_TRUE(join.ok());
  EXPECT_DOUBLE_EQ(*join, 0.0);
}

TEST(SkimmedSketchTest, PointEstimateRecoversIsolatedValues) {
  SkimmedSketch sketch = MustCreate(BaseConfig(), 2);
  sketch.Update(7, 55);
  sketch.Update(600, -12);
  EXPECT_EQ(sketch.EstimatePointFrequency(7), 55);
  EXPECT_EQ(sketch.EstimatePointFrequency(600), -12);
  EXPECT_EQ(sketch.EstimatePointFrequency(8), 0);
}

TEST(SkimmedSketchTest, HeavyHittersFindPlantedValues) {
  SkimmedSketch sketch = MustCreate(BaseConfig(), 3);
  sketch.Update(100, 900);
  sketch.Update(200, 450);
  for (uint64_t v = 0; v < 50; ++v) sketch.Update(v, 1);
  const DenseFrequencies hh = sketch.HeavyHitters(300);
  EXPECT_GT(LookupDense(hh, 100), 800);
  EXPECT_GT(LookupDense(hh, 200), 350);
  for (const auto& [value, freq] : hh) {
    EXPECT_TRUE(value == 100 || value == 200);
  }
}

TEST(SkimmedSketchTest, HeavyHittersDoNotMutateSketch) {
  SkimmedSketch sketch = MustCreate(BaseConfig(), 4);
  sketch.Update(5, 1000);
  (void)sketch.HeavyHitters(10);
  (void)sketch.HeavyHitters(10);
  EXPECT_EQ(sketch.EstimatePointFrequency(5), 1000);
}

TEST(SkimmedSketchTest, SkimThresholdScalesWithStreamMass) {
  SkimmedSketch small = MustCreate(BaseConfig(), 5);
  SkimmedSketch large = MustCreate(BaseConfig(), 5);
  for (uint64_t v = 0; v < 100; ++v) small.Update(v, 2);
  for (uint64_t v = 0; v < 100; ++v) large.Update(v, 200);
  EXPECT_GE(small.SkimThreshold(), 1);
  EXPECT_GT(large.SkimThreshold(), small.SkimThreshold());
}

TEST(SkimmedSketchTest, BreakdownComponentsSumToEstimate) {
  constexpr uint64_t kDomain = 1u << 10;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.2).ExpectedFrequencies(30000);
  // Shift of 2 keeps the two streams' dense value sets overlapping, so the
  // exact dense·dense term carries weight.
  const FrequencyVector g =
      stream::ZipfDistribution(kDomain, 1.2, /*shift=*/2)
          .ExpectedFrequencies(30000);
  SkimmedSketch sf = MustCreate(BaseConfig(), 6);
  SkimmedSketch sg = MustCreate(BaseConfig(), 6);
  sf.Absorb(f);
  sg.Absorb(g);
  StatusOr<JoinEstimateBreakdown> breakdown =
      SkimmedSketch::EstimateJoinSizeDetailed(sf, sg);
  ASSERT_TRUE(breakdown.ok());
  StatusOr<double> estimate = SkimmedSketch::EstimateJoinSize(sf, sg);
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(breakdown->Total(), *estimate);
  EXPECT_GT(breakdown->dense_count_f, 0u);
  EXPECT_GT(breakdown->dense_count_g, 0u);
  EXPECT_GT(breakdown->threshold_f, 0);
  // On this skew, dense·dense should carry most of the mass.
  EXPECT_GT(breakdown->dense_dense, 0.5 * *estimate);
}

TEST(SkimmedSketchTest, JoinEstimateAccurateOnSkewedStreams) {
  constexpr uint64_t kDomain = 1u << 10;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.5).ExpectedFrequencies(50000);
  const FrequencyVector g =
      stream::ZipfDistribution(kDomain, 1.5, /*shift=*/4)
          .ExpectedFrequencies(50000);
  const double exact = static_cast<double>(stream::JoinSize(f, g));
  SkimmedSketch sf = MustCreate(BaseConfig(), 7);
  SkimmedSketch sg = MustCreate(BaseConfig(), 7);
  sf.Absorb(f);
  sg.Absorb(g);
  StatusOr<double> join = SkimmedSketch::EstimateJoinSize(sf, sg);
  ASSERT_TRUE(join.ok());
  EXPECT_NEAR(*join, exact, 0.15 * exact);
}

TEST(SkimmedSketchTest, EstimationDoesNotMutateSketches) {
  SkimmedSketch f = MustCreate(BaseConfig(), 8);
  SkimmedSketch g = MustCreate(BaseConfig(), 8);
  f.Update(3, 500);
  g.Update(3, 300);
  StatusOr<double> first = SkimmedSketch::EstimateJoinSize(f, g);
  StatusOr<double> second = SkimmedSketch::EstimateJoinSize(f, g);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(*first, *second);
  EXPECT_DOUBLE_EQ(*first, 150000.0);
}

TEST(SkimmedSketchTest, DeletesCancelExactly) {
  SkimmedSketchConfig config = BaseConfig();
  config.use_dyadic_skim = true;
  SkimmedSketch f = MustCreate(config, 9);
  SkimmedSketch g = MustCreate(config, 9);
  for (uint64_t v = 0; v < 200; ++v) {
    f.Update(v, 5);
    g.Update(v, 5);
  }
  for (uint64_t v = 0; v < 200; ++v) {
    f.Update(v, -5);
    g.Update(v, -5);
  }
  StatusOr<double> join = SkimmedSketch::EstimateJoinSize(f, g);
  ASSERT_TRUE(join.ok());
  EXPECT_DOUBLE_EQ(*join, 0.0);
}

TEST(SkimmedSketchTest, SlidingWindowViaDeletesTracksRecentJoin) {
  // Insert phase A, then delete it while inserting phase B; the estimate
  // should reflect only phase B.
  SkimmedSketch f = MustCreate(BaseConfig(), 10);
  SkimmedSketch g = MustCreate(BaseConfig(), 10);
  for (int i = 0; i < 400; ++i) {
    f.Update(1, 1);
    g.Update(1, 1);
  }
  for (int i = 0; i < 400; ++i) {
    f.Update(1, -1);
    g.Update(1, -1);
    f.Update(2, 1);
    g.Update(2, 1);
  }
  StatusOr<double> join = SkimmedSketch::EstimateJoinSize(f, g);
  ASSERT_TRUE(join.ok());
  EXPECT_NEAR(*join, 400.0 * 400.0, 0.05 * 400.0 * 400.0);
}

TEST(SkimmedSketchTest, MergeEqualsConcatenatedStream) {
  SkimmedSketch part1 = MustCreate(BaseConfig(), 11);
  SkimmedSketch part2 = MustCreate(BaseConfig(), 11);
  SkimmedSketch whole = MustCreate(BaseConfig(), 11);
  part1.Update(5, 100);
  whole.Update(5, 100);
  part2.Update(5, 50);
  part2.Update(9, 70);
  whole.Update(5, 50);
  whole.Update(9, 70);
  part1.Merge(part2);
  EXPECT_EQ(part1.EstimatePointFrequency(5), whole.EstimatePointFrequency(5));
  EXPECT_EQ(part1.EstimatePointFrequency(9), whole.EstimatePointFrequency(9));
}

TEST(SkimmedSketchTest, IncompatibleSketchesRejected) {
  SkimmedSketch f = MustCreate(BaseConfig(), 1);
  SkimmedSketch other_seed = MustCreate(BaseConfig(), 2);
  SkimmedSketchConfig narrow = BaseConfig();
  narrow.num_buckets = 128;
  SkimmedSketch other_shape = MustCreate(narrow, 1);
  EXPECT_FALSE(SkimmedSketch::EstimateJoinSize(f, other_seed).ok());
  EXPECT_FALSE(SkimmedSketch::EstimateJoinSize(f, other_shape).ok());
}

TEST(SkimmedSketchTest, DyadicAndNaiveSkimAgreeOnEstimates) {
  SkimmedSketchConfig naive_config = BaseConfig();
  SkimmedSketchConfig dyadic_config = BaseConfig();
  dyadic_config.use_dyadic_skim = true;
  dyadic_config.recurse_slack = 0.3;

  constexpr uint64_t kDomain = 1u << 10;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.4).ExpectedFrequencies(30000);
  const FrequencyVector g =
      stream::ZipfDistribution(kDomain, 1.4, /*shift=*/4)
          .ExpectedFrequencies(30000);

  SkimmedSketch nf = MustCreate(naive_config, 12);
  SkimmedSketch ng = MustCreate(naive_config, 12);
  SkimmedSketch df = MustCreate(dyadic_config, 12);
  SkimmedSketch dg = MustCreate(dyadic_config, 12);
  nf.Absorb(f);
  ng.Absorb(g);
  df.Absorb(f);
  dg.Absorb(g);

  const double exact = static_cast<double>(stream::JoinSize(f, g));
  StatusOr<double> naive_join = SkimmedSketch::EstimateJoinSize(nf, ng);
  StatusOr<double> dyadic_join = SkimmedSketch::EstimateJoinSize(df, dg);
  ASSERT_TRUE(naive_join.ok());
  ASSERT_TRUE(dyadic_join.ok());
  EXPECT_NEAR(*naive_join, exact, 0.2 * exact);
  EXPECT_NEAR(*dyadic_join, exact, 0.2 * exact);
}

TEST(SkimmedSketchTest, TotalCountersAccountsForDyadicLevels) {
  SkimmedSketchConfig config = BaseConfig();
  EXPECT_EQ(MustCreate(config, 13).TotalCounters(), 5u * 256);
  config.use_dyadic_skim = true;
  config.dyadic_num_buckets = 16;
  const SkimmedSketch with_dyadic = MustCreate(config, 13);
  EXPECT_GT(with_dyadic.TotalCounters(), 5u * 256);
}

TEST(SkimmedSketchTest, SelfJoinEstimateTracksExact) {
  constexpr uint64_t kDomain = 1u << 10;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.3).ExpectedFrequencies(40000);
  SkimmedSketch sketch = MustCreate(BaseConfig(), 14);
  sketch.Absorb(f);
  const double exact = static_cast<double>(f.SelfJoinSize());
  EXPECT_NEAR(sketch.EstimateSelfJoinSize(), exact, 0.15 * exact);
}

TEST(SkimmedSketchTest, UpdateOutsideDomainDropsInsteadOfAborting) {
  SkimmedSketch sketch = MustCreate(BaseConfig(), 15);
  sketch.Update(3, 1);
  const int64_t before = sketch.EstimatePointFrequency(3);
  // An out-of-domain value is stream data, not an internal invariant: it
  // must be dropped and counted, never crash the process.
  sketch.Update(1u << 10, 1);
  sketch.Update(UINT64_MAX, 5);
  EXPECT_EQ(sketch.dropped_updates(), 2u);
  EXPECT_EQ(sketch.EstimatePointFrequency(3), before);
}

// The paper's headline property: at equal space, skimmed sketches beat
// basic AGMS on skewed data. Compared via median ratio error over several
// seeds to keep the test statistically stable.
TEST(SkimmedSketchVsAgmsTest, SkimmedBeatsAgmsOnSkewedData) {
  constexpr uint64_t kDomain = 1u << 10;
  constexpr uint64_t kSpace = 1280;  // counters per stream
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.5).ExpectedFrequencies(100000);
  const FrequencyVector g =
      stream::ZipfDistribution(kDomain, 1.5, /*shift=*/8)
          .ExpectedFrequencies(100000);
  const double exact = static_cast<double>(stream::JoinSize(f, g));

  auto ratio_error = [&](double estimate) {
    if (estimate <= 0) return 10.0;
    const double ratio = std::max(estimate, exact) / std::min(estimate, exact);
    return std::min(ratio - 1.0, 10.0);
  };

  std::vector<double> agms_errors;
  std::vector<double> skim_errors;
  for (uint64_t seed = 100; seed < 107; ++seed) {
    sketch::AgmsConfig agms_config{kSpace / 5, 5};
    auto af = *sketch::AgmsSketch::Create(agms_config, seed);
    auto ag = *sketch::AgmsSketch::Create(agms_config, seed);
    af.Absorb(f);
    ag.Absorb(g);
    agms_errors.push_back(
        ratio_error(*sketch::AgmsSketch::EstimateJoinSize(af, ag)));

    SkimmedSketchConfig skim_config = BaseConfig();
    skim_config.num_tables = 5;
    skim_config.num_buckets = kSpace / 5;
    SkimmedSketch sf = MustCreate(skim_config, seed);
    SkimmedSketch sg = MustCreate(skim_config, seed);
    sf.Absorb(f);
    sg.Absorb(g);
    skim_errors.push_back(
        ratio_error(*SkimmedSketch::EstimateJoinSize(sf, sg)));
  }
  EXPECT_LT(Median(skim_errors), Median(agms_errors));
}

// Parameterized sweep: the estimator stays accurate across skews and
// shifts (generous envelopes keep the test deterministic-stable).
class SkimmedAccuracyTest
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(SkimmedAccuracyTest, EstimateWithinEnvelope) {
  const double z = std::get<0>(GetParam());
  const uint64_t shift = std::get<1>(GetParam());
  constexpr uint64_t kDomain = 1u << 10;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, z).ExpectedFrequencies(50000);
  const FrequencyVector g =
      stream::ZipfDistribution(kDomain, z, shift).ExpectedFrequencies(50000);
  const double exact = static_cast<double>(stream::JoinSize(f, g));
  ASSERT_GT(exact, 0.0);

  SkimmedSketch sf = MustCreate(BaseConfig(), 42);
  SkimmedSketch sg = MustCreate(BaseConfig(), 42);
  sf.Absorb(f);
  sg.Absorb(g);
  StatusOr<double> join = SkimmedSketch::EstimateJoinSize(sf, sg);
  ASSERT_TRUE(join.ok());
  // Envelope: skimming caps residuals near T ≈ 2·sqrt(F2/b); allow several
  // multiples of the residual-noise scale plus a relative slack.
  const double envelope = 0.35 * exact + 8.0 * std::sqrt(exact) + 500.0;
  EXPECT_NEAR(*join, exact, envelope);
}

INSTANTIATE_TEST_SUITE_P(
    SkewShift, SkimmedAccuracyTest,
    ::testing::Combine(::testing::Values(0.8, 1.0, 1.2, 1.5),
                       ::testing::Values(uint64_t{0}, uint64_t{8},
                                         uint64_t{64})));

}  // namespace
}  // namespace core
}  // namespace skimjoin
