#include "core/dyadic_skim.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "stream/frequency_vector.h"
#include "stream/zipf.h"

namespace skimjoin {
namespace core {
namespace {

using sketch::HashSketchConfig;
using stream::FrequencyVector;

DyadicSkimmer MustCreate(uint64_t domain, const HashSketchConfig& config,
                         uint64_t seed) {
  StatusOr<DyadicSkimmer> skimmer = DyadicSkimmer::Create(domain, config, seed);
  EXPECT_TRUE(skimmer.ok()) << skimmer.status();
  return *std::move(skimmer);
}

bool Contains(const std::vector<uint64_t>& values, uint64_t v) {
  return std::find(values.begin(), values.end(), v) != values.end();
}

TEST(DyadicSkimmerTest, CreateRejectsBadArguments) {
  EXPECT_FALSE(DyadicSkimmer::Create(0, {3, 8}, 1).ok());
  EXPECT_FALSE(DyadicSkimmer::Create(1, {3, 8}, 1).ok());
  EXPECT_FALSE(DyadicSkimmer::Create(100, {3, 8}, 1).ok());
  EXPECT_FALSE(DyadicSkimmer::Create(64, {0, 8}, 1).ok());
  EXPECT_FALSE(DyadicSkimmer::Create(64, {3, 0}, 1).ok());
  EXPECT_TRUE(DyadicSkimmer::Create(2, {3, 8}, 1).ok());
  EXPECT_TRUE(DyadicSkimmer::Create(1024, {3, 8}, 1).ok());
}

TEST(DyadicSkimmerTest, NumLevelsIsLogDomain) {
  EXPECT_EQ(MustCreate(2, {3, 8}, 1).num_levels(), 1u);
  EXPECT_EQ(MustCreate(16, {3, 8}, 1).num_levels(), 4u);
  EXPECT_EQ(MustCreate(1u << 12, {3, 8}, 1).num_levels(), 12u);
}

TEST(DyadicSkimmerTest, NarrowLevelsAreStoredExactly) {
  // Domain 64, 8 buckets: levels with <= 8 prefixes (level >= 3) are exact.
  DyadicSkimmer skimmer = MustCreate(64, {3, 8}, 1);
  EXPECT_FALSE(skimmer.LevelIsExact(1));  // 32 prefixes > 8 buckets
  EXPECT_FALSE(skimmer.LevelIsExact(2));  // 16 prefixes
  EXPECT_TRUE(skimmer.LevelIsExact(3));   // 8 prefixes
  EXPECT_TRUE(skimmer.LevelIsExact(6));   // 1 prefix
}

TEST(DyadicSkimmerTest, TopLevelCountsWholeStreamExactly) {
  DyadicSkimmer skimmer = MustCreate(256, {3, 64}, 2);
  for (uint64_t v = 0; v < 200; ++v) skimmer.Update(v, 3);
  EXPECT_TRUE(skimmer.LevelIsExact(8));
  EXPECT_EQ(skimmer.PointEstimate(8, 0), 600);
}

TEST(DyadicSkimmerTest, IntervalEstimatesMatchExactSums) {
  DyadicSkimmer skimmer = MustCreate(16, {5, 16}, 3);
  skimmer.Update(0, 10);
  skimmer.Update(1, 20);
  skimmer.Update(5, 7);
  // Level 1 prefix 0 covers {0, 1}: weight 30. Prefix 2 covers {4, 5}: 7.
  EXPECT_EQ(skimmer.PointEstimate(1, 0), 30);
  EXPECT_EQ(skimmer.PointEstimate(1, 2), 7);
  // Level 2 prefix 0 covers {0..3}: 30; prefix 1 covers {4..7}: 7.
  EXPECT_EQ(skimmer.PointEstimate(2, 0), 30);
  EXPECT_EQ(skimmer.PointEstimate(2, 1), 7);
  // All of these levels fit 16 buckets → exact.
  for (uint64_t l = 1; l <= skimmer.num_levels(); ++l) {
    EXPECT_TRUE(skimmer.LevelIsExact(l)) << l;
  }
}

TEST(DyadicSkimmerTest, SketchedLevelsStillEstimateWell) {
  // Domain 4096 with only 32 buckets: levels 1..6 are sketched.
  DyadicSkimmer skimmer = MustCreate(4096, {7, 32}, 4);
  EXPECT_FALSE(skimmer.LevelIsExact(1));
  skimmer.Update(100, 500);
  // Prefix of 100 at level 1 is 50; the sketched estimate should recover
  // the planted mass (nothing else in the structure).
  EXPECT_EQ(skimmer.PointEstimate(1, 50), 500);
}

TEST(DyadicSkimmerTest, FindCandidatesRecoversPlantedHeavyValues) {
  constexpr uint64_t kDomain = 1u << 12;
  FrequencyVector f(kDomain);
  f.Add(17, 1000);
  f.Add(2345, 800);
  f.Add(4095, 600);
  const stream::FrequencyVector background =
      stream::ZipfDistribution(kDomain, 0.4).ExpectedFrequencies(20000);
  DyadicSkimmer skimmer = MustCreate(kDomain, {7, 128}, 4);
  skimmer.Absorb(f);
  skimmer.Absorb(background);
  const std::vector<uint64_t> candidates =
      skimmer.FindCandidates(/*threshold=*/400, /*slack=*/0.5);
  EXPECT_TRUE(Contains(candidates, 17));
  EXPECT_TRUE(Contains(candidates, 2345));
  EXPECT_TRUE(Contains(candidates, 4095));
  // The search should prune hard: far fewer candidates than the domain.
  EXPECT_LT(candidates.size(), kDomain / 8);
}

TEST(DyadicSkimmerTest, SubtractDenseRemovesValueFromSearch) {
  constexpr uint64_t kDomain = 1u << 10;
  DyadicSkimmer skimmer = MustCreate(kDomain, {7, 64}, 5);
  skimmer.Update(100, 900);
  ASSERT_TRUE(Contains(skimmer.FindCandidates(300, 0.5), 100));
  skimmer.SubtractDense(100, 900);
  EXPECT_FALSE(Contains(skimmer.FindCandidates(300, 0.5), 100));
}

TEST(DyadicSkimmerTest, AbsorbMatchesElementwiseUpdates) {
  constexpr uint64_t kDomain = 256;
  FrequencyVector fv(kDomain);
  fv.Add(3, 50);
  fv.Add(100, 20);
  fv.Add(255, 7);
  DyadicSkimmer by_absorb = MustCreate(kDomain, {3, 32}, 6);
  by_absorb.Absorb(fv);
  DyadicSkimmer by_updates = MustCreate(kDomain, {3, 32}, 6);
  by_updates.Update(3, 50);
  by_updates.Update(100, 20);
  by_updates.Update(255, 7);
  for (uint64_t l = 1; l <= by_absorb.num_levels(); ++l) {
    for (uint64_t p = 0; p < (kDomain >> l); ++p) {
      EXPECT_EQ(by_absorb.PointEstimate(l, p), by_updates.PointEstimate(l, p));
    }
  }
}

TEST(DyadicSkimmerTest, MergeEqualsConcatenatedStream) {
  constexpr uint64_t kDomain = 128;
  DyadicSkimmer part1 = MustCreate(kDomain, {3, 16}, 7);
  DyadicSkimmer part2 = MustCreate(kDomain, {3, 16}, 7);
  DyadicSkimmer whole = MustCreate(kDomain, {3, 16}, 7);
  part1.Update(5, 100);
  whole.Update(5, 100);
  part2.Update(90, 40);
  whole.Update(90, 40);
  part1.Merge(part2);
  for (uint64_t l = 1; l <= whole.num_levels(); ++l) {
    for (uint64_t p = 0; p < (kDomain >> l); ++p) {
      EXPECT_EQ(part1.PointEstimate(l, p), whole.PointEstimate(l, p));
    }
  }
}

TEST(DyadicSkimmerTest, TotalCountersAccountsForBothRepresentations) {
  // Domain 64, 4 buckets, 3 tables: levels 1..3 sketched (32, 16, 8
  // prefixes > 4 buckets → 3·4 counters each), levels 4..6 exact (4, 2, 1
  // counters).
  DyadicSkimmer skimmer = MustCreate(64, {3, 4}, 8);
  EXPECT_EQ(skimmer.TotalCounters(), 3u * (3 * 4) + (4 + 2 + 1));
}

TEST(DyadicSkimmerTest, DeletesCancelInSearch) {
  constexpr uint64_t kDomain = 512;
  DyadicSkimmer skimmer = MustCreate(kDomain, {5, 64}, 9);
  skimmer.Update(44, 700);
  skimmer.Update(44, -700);
  EXPECT_FALSE(Contains(skimmer.FindCandidates(200, 0.5), 44));
}

TEST(DyadicSkimmerDeathTest, PointEstimateBoundsChecked) {
  DyadicSkimmer skimmer = MustCreate(16, {3, 8}, 10);
  EXPECT_DEATH((void)skimmer.PointEstimate(0, 0), "");
  EXPECT_DEATH((void)skimmer.PointEstimate(5, 0), "");
  EXPECT_DEATH((void)skimmer.PointEstimate(1, 8), "");
}

TEST(DyadicSkimmerDeathTest, UpdateOutsideDomainAborts) {
  DyadicSkimmer skimmer = MustCreate(16, {3, 8}, 11);
  EXPECT_DEATH(skimmer.Update(16, 1), "");
}

}  // namespace
}  // namespace core
}  // namespace skimjoin
