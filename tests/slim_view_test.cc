// Differential proof that the slim half of the two-stage read path
// (DESIGN.md §11) answers bit-identically to the fat synopsis it was
// derived from — point estimates and join estimates, across the same
// kernel-switch matrix as kernel_differential_test — plus the epoch-gating
// contract of Refresh and the precomputed-skim join path.

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/skimmed_sketch.h"
#include "gtest/gtest.h"
#include "sketch/count_min_sketch.h"
#include "sketch/hash_sketch.h"
#include "sketch/kernel_options.h"
#include "sketch/slim_view.h"
#include "stream/stream_element.h"
#include "util/random.h"

namespace skimjoin {
namespace {

using sketch::KernelOptions;
using sketch::SlimView;
using stream::StreamElement;

/// The same kernel matrix kernel_differential_test sweeps: each fast path
/// alone, all together, and a stress shape forcing block remainders and
/// cache eviction. The slim view must be bit-identical to the fat answer
/// regardless of which kernels built the fat counters.
std::vector<std::pair<std::string, KernelOptions>> KernelModes() {
  std::vector<std::pair<std::string, KernelOptions>> modes;
  modes.emplace_back("scalar", KernelOptions::Scalar());

  KernelOptions fastmod = KernelOptions::Scalar();
  fastmod.use_fastmod = true;
  modes.emplace_back("fastmod", fastmod);

  KernelOptions cache = KernelOptions::Scalar();
  cache.use_plan_cache = true;
  modes.emplace_back("cache", cache);

  KernelOptions blocked = KernelOptions::Scalar();
  blocked.use_blocked_batch = true;
  modes.emplace_back("blocked", blocked);

  modes.emplace_back("all", KernelOptions{});

  KernelOptions stress;
  stress.batch_block_size = 3;
  stress.plan_cache_slots = 4;
  modes.emplace_back("stress", stress);
  return modes;
}

/// Skewed workload with signed weights (deletes included) so counters go
/// negative too — the slim view must pack those faithfully.
std::vector<StreamElement> MakeWorkload(Rng* rng, uint64_t domain,
                                        uint64_t num_elements) {
  std::vector<StreamElement> elements;
  elements.reserve(num_elements);
  const uint64_t hot_set = 1 + rng->NextUint64Below(16);
  for (uint64_t i = 0; i < num_elements; ++i) {
    const uint64_t value = (rng->NextUint64Below(2) == 0)
                               ? rng->NextUint64Below(hot_set)
                               : rng->NextUint64Below(domain);
    int64_t weight = 1;
    const uint64_t wroll = rng->NextUint64Below(10);
    if (wroll < 2) {
      weight = -1;
    } else if (wroll < 4) {
      weight = 1 + static_cast<int64_t>(rng->NextUint64Below(1000));
    }
    elements.push_back({value, weight});
  }
  return elements;
}

TEST(SlimViewTest, HashSketchPointAndJoinBitIdenticalAcrossKernelModes) {
  Rng rng(1101);
  for (int trial = 0; trial < 4; ++trial) {
    sketch::HashSketchConfig config;
    config.num_tables = 1 + rng.NextUint64Below(9);
    config.num_buckets = 1 + rng.NextUint64Below(700);
    const uint64_t seed = rng.NextUint64();
    const uint64_t domain = 1 + rng.NextUint64Below(1u << 14);
    const auto elements_f = MakeWorkload(&rng, domain, 3000);
    const auto elements_g = MakeWorkload(&rng, domain, 3000);
    for (const auto& [name, options] : KernelModes()) {
      const std::string context = "trial " + std::to_string(trial) +
                                  " mode " + name;
      auto f = sketch::HashSketch::Create(config, seed);
      auto g = sketch::HashSketch::Create(config, seed);
      ASSERT_TRUE(f.ok() && g.ok()) << context;
      f->SetKernelOptions(options);
      g->SetKernelOptions(options);
      f->UpdateBatch(std::span<const StreamElement>(elements_f));
      g->UpdateBatch(std::span<const StreamElement>(elements_g));

      const SlimView slim_f(*f);
      const SlimView slim_g(*g);
      for (uint64_t probe = 0; probe < 64; ++probe) {
        const uint64_t value = rng.NextUint64Below(domain);
        ASSERT_EQ(slim_f.PointEstimate(value), f->PointEstimate(value))
            << context << " value " << value;
      }
      const auto fat_join = sketch::HashSketch::EstimateJoinSize(*f, *g);
      const auto slim_join = SlimView::EstimateJoinSize(slim_f, slim_g);
      ASSERT_TRUE(fat_join.ok() && slim_join.ok()) << context;
      // EXPECT_EQ on doubles: bit-identical, not just close.
      ASSERT_EQ(*slim_join, *fat_join) << context;
    }
  }
}

TEST(SlimViewTest, CountMinPointAndJoinBitIdenticalAcrossKernelModes) {
  Rng rng(2202);
  for (int trial = 0; trial < 4; ++trial) {
    sketch::CountMinConfig config;
    config.num_tables = 1 + rng.NextUint64Below(7);
    config.num_buckets = 1 + rng.NextUint64Below(500);
    const uint64_t seed = rng.NextUint64();
    const uint64_t domain = 1 + rng.NextUint64Below(1u << 14);
    const auto elements_f = MakeWorkload(&rng, domain, 3000);
    const auto elements_g = MakeWorkload(&rng, domain, 3000);
    for (const auto& [name, options] : KernelModes()) {
      const std::string context = "trial " + std::to_string(trial) +
                                  " mode " + name;
      auto f = sketch::CountMinSketch::Create(config, seed);
      auto g = sketch::CountMinSketch::Create(config, seed);
      ASSERT_TRUE(f.ok() && g.ok()) << context;
      f->SetKernelOptions(options);
      g->SetKernelOptions(options);
      f->UpdateBatch(std::span<const StreamElement>(elements_f));
      g->UpdateBatch(std::span<const StreamElement>(elements_g));

      const SlimView slim_f(*f);
      const SlimView slim_g(*g);
      for (uint64_t probe = 0; probe < 64; ++probe) {
        const uint64_t value = rng.NextUint64Below(domain);
        ASSERT_EQ(slim_f.PointEstimate(value), f->PointEstimate(value))
            << context << " value " << value;
      }
      const auto fat_join = sketch::CountMinSketch::EstimateJoinSize(*f, *g);
      const auto slim_join = SlimView::EstimateJoinSize(slim_f, slim_g);
      ASSERT_TRUE(fat_join.ok() && slim_join.ok()) << context;
      ASSERT_EQ(*slim_join, *fat_join) << context;
    }
  }
}

TEST(SlimViewTest, RefreshIsEpochGated) {
  sketch::HashSketchConfig config;
  config.num_tables = 5;
  config.num_buckets = 64;
  auto fat = sketch::HashSketch::Create(config, 7);
  ASSERT_TRUE(fat.ok());
  fat->Update({3, 10});

  SlimView view(*fat);
  EXPECT_EQ(view.refresh_count(), 1u);  // the constructor's initial pass
  EXPECT_TRUE(view.FreshFor(fat->update_epoch()));

  // No fat mutation since the constructor: Refresh must be a no-op.
  EXPECT_FALSE(view.Refresh(*fat));
  EXPECT_EQ(view.refresh_count(), 1u);

  // One update advances the epoch; exactly one refresh pass runs, and the
  // view answers the post-update frequency.
  fat->Update({3, 5});
  EXPECT_FALSE(view.FreshFor(fat->update_epoch()));
  EXPECT_TRUE(view.Refresh(*fat));
  EXPECT_FALSE(view.Refresh(*fat));
  EXPECT_EQ(view.refresh_count(), 2u);
  EXPECT_EQ(view.PointEstimate(3), fat->PointEstimate(3));
}

TEST(SlimViewTest, CopyKeepsAnsweringAtItsEpoch) {
  sketch::CountMinConfig config;
  config.num_tables = 3;
  config.num_buckets = 32;
  auto fat = sketch::CountMinSketch::Create(config, 11);
  ASSERT_TRUE(fat.ok());
  fat->Update({5, 100});

  SlimView live(*fat);
  const SlimView snapshot = live;  // read-replica style frozen copy
  const int64_t before = fat->PointEstimate(5);

  fat->Update({5, 23});
  live.Refresh(*fat);
  EXPECT_EQ(live.PointEstimate(5), fat->PointEstimate(5));
  EXPECT_FALSE(snapshot.FreshFor(fat->update_epoch()));
  EXPECT_EQ(snapshot.PointEstimate(5), before);
}

TEST(SlimViewTest, WideCountersFallBackTo64BitsAndStayBitIdentical) {
  sketch::CountMinConfig config;
  config.num_tables = 4;
  config.num_buckets = 16;
  auto fat = sketch::CountMinSketch::Create(config, 13);
  ASSERT_TRUE(fat.ok());
  fat->Update({1, 3});
  SlimView view(*fat);
  EXPECT_TRUE(view.narrowed());  // tiny counters pack into 32 bits

  // Push one counter past int32 range: the view must widen, and both point
  // and (self-)join answers must still match the fat sketch exactly.
  const int64_t big = int64_t{1} << 40;
  fat->Update({1, big});
  ASSERT_TRUE(view.Refresh(*fat));
  EXPECT_FALSE(view.narrowed());
  for (uint64_t value = 0; value < 16; ++value) {
    EXPECT_EQ(view.PointEstimate(value), fat->PointEstimate(value));
  }
  const auto fat_join = sketch::CountMinSketch::EstimateJoinSize(*fat, *fat);
  const auto slim_join = SlimView::EstimateJoinSize(view, view);
  ASSERT_TRUE(fat_join.ok() && slim_join.ok());
  EXPECT_EQ(*slim_join, *fat_join);
}

TEST(SlimViewTest, JoinRejectsIncompatibleViews) {
  sketch::HashSketchConfig hash_config;
  hash_config.num_tables = 3;
  hash_config.num_buckets = 32;
  auto hash_a = sketch::HashSketch::Create(hash_config, 1);
  auto hash_b = sketch::HashSketch::Create(hash_config, 2);  // different seed
  sketch::CountMinConfig cm_config;
  cm_config.num_tables = 3;
  cm_config.num_buckets = 32;
  auto cm = sketch::CountMinSketch::Create(cm_config, 1);
  ASSERT_TRUE(hash_a.ok() && hash_b.ok() && cm.ok());

  const SlimView view_a(*hash_a);
  const SlimView view_b(*hash_b);
  const SlimView view_cm(*cm);
  EXPECT_EQ(SlimView::EstimateJoinSize(view_a, view_b).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SlimView::EstimateJoinSize(view_a, view_cm).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SlimViewTest, SkimmedPrecomputedSkimsMatchFatJoinBitIdentically) {
  Rng rng(3303);
  for (int trial = 0; trial < 4; ++trial) {
    core::SkimmedSketchConfig config;
    config.domain_size = uint64_t{1} << (6 + rng.NextUint64Below(6));
    config.num_tables = 1 + rng.NextUint64Below(5);
    config.num_buckets = 1 + rng.NextUint64Below(200);
    config.use_dyadic_skim = (trial % 2 == 0);
    const uint64_t seed = rng.NextUint64();
    const auto elements_f = MakeWorkload(&rng, config.domain_size, 2000);
    const auto elements_g = MakeWorkload(&rng, config.domain_size, 2000);
    for (const auto& [name, options] : KernelModes()) {
      const std::string context = "trial " + std::to_string(trial) +
                                  " mode " + name;
      auto f = core::SkimmedSketch::Create(config, seed);
      auto g = core::SkimmedSketch::Create(config, seed);
      ASSERT_TRUE(f.ok() && g.ok()) << context;
      f->SetKernelOptions(options);
      g->SetKernelOptions(options);
      f->UpdateBatch(std::span<const StreamElement>(elements_f));
      g->UpdateBatch(std::span<const StreamElement>(elements_g));

      // Skims are computed independently per side, so the precomputed-skim
      // estimate must be bit-identical to the fat-pair estimate.
      const core::SkimmedSketch::SkimOutput skim_f = f->Skim();
      const core::SkimmedSketch::SkimOutput skim_g = g->Skim();
      const auto from_skims =
          core::SkimmedSketch::EstimateJoinSizeFromSkims(skim_f, skim_g);
      const auto from_fat = core::SkimmedSketch::EstimateJoinSize(*f, *g);
      ASSERT_TRUE(from_skims.ok() && from_fat.ok()) << context;
      ASSERT_EQ(*from_skims, *from_fat) << context;
    }
  }
}

TEST(SlimViewTest, SkimmedSketchEpochFollowsMutations) {
  core::SkimmedSketchConfig config;
  config.domain_size = 1 << 8;
  config.num_tables = 3;
  config.num_buckets = 32;
  auto sketch = core::SkimmedSketch::Create(config, 5);
  ASSERT_TRUE(sketch.ok());
  const uint64_t before = sketch->update_epoch();
  sketch->Update({1, 1});
  EXPECT_NE(sketch->update_epoch(), before);
  const uint64_t after_update = sketch->update_epoch();
  sketch->Reset();
  EXPECT_NE(sketch->update_epoch(), after_update);
}

}  // namespace
}  // namespace skimjoin
