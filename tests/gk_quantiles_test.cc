#include "stream/gk_quantiles.h"

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "stream/zipf.h"
#include "util/random.h"

namespace skimjoin {
namespace stream {
namespace {

GkQuantileSummary MustCreate(double epsilon) {
  StatusOr<GkQuantileSummary> summary = GkQuantileSummary::Create(epsilon);
  EXPECT_TRUE(summary.ok()) << summary.status();
  return *std::move(summary);
}

// Exact rank of `answer` within the sorted multiset `values` (upper rank).
int64_t RankOf(std::vector<uint64_t> values, uint64_t answer) {
  std::sort(values.begin(), values.end());
  const auto it = std::upper_bound(values.begin(), values.end(), answer);
  return static_cast<int64_t>(it - values.begin());
}

TEST(GkQuantilesTest, CreateValidates) {
  EXPECT_FALSE(GkQuantileSummary::Create(0.0).ok());
  EXPECT_FALSE(GkQuantileSummary::Create(0.6).ok());
  EXPECT_TRUE(GkQuantileSummary::Create(0.01).ok());
}

TEST(GkQuantilesTest, EmptySummaryRejectsQueries) {
  GkQuantileSummary summary = MustCreate(0.1);
  EXPECT_EQ(summary.Quantile(0.5).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(GkQuantilesTest, PhiValidated) {
  GkQuantileSummary summary = MustCreate(0.1);
  summary.Insert(5);
  EXPECT_EQ(summary.Quantile(0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(summary.Quantile(1.5).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GkQuantilesTest, SingleValueAnswersItself) {
  GkQuantileSummary summary = MustCreate(0.1);
  summary.Insert(42);
  EXPECT_EQ(*summary.Quantile(0.5), 42u);
  EXPECT_EQ(*summary.Quantile(1.0), 42u);
}

TEST(GkQuantilesTest, SortedInsertsGiveTightQuantiles) {
  GkQuantileSummary summary = MustCreate(0.05);
  for (uint64_t v = 1; v <= 1000; ++v) summary.Insert(v);
  for (double phi : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const uint64_t answer = *summary.Quantile(phi);
    EXPECT_NEAR(static_cast<double>(answer), phi * 1000.0, 0.05 * 1000 + 1)
        << "phi " << phi;
  }
}

TEST(GkQuantilesTest, ReverseSortedInsertsToo) {
  GkQuantileSummary summary = MustCreate(0.05);
  for (uint64_t v = 1000; v >= 1; --v) summary.Insert(v);
  EXPECT_NEAR(static_cast<double>(*summary.Quantile(0.5)), 500.0, 51.0);
}

TEST(GkQuantilesTest, RankErrorWithinEpsilonOnRandomStreams) {
  constexpr double kEpsilon = 0.02;
  GkQuantileSummary summary = MustCreate(kEpsilon);
  Rng rng(5);
  std::vector<uint64_t> values;
  constexpr int kCount = 20000;
  for (int i = 0; i < kCount; ++i) {
    const uint64_t v = rng.NextUint64Below(1u << 20);
    values.push_back(v);
    summary.Insert(v);
  }
  for (double phi : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    const uint64_t answer = *summary.Quantile(phi);
    const int64_t rank = RankOf(values, answer);
    const auto target = static_cast<int64_t>(phi * kCount);
    EXPECT_LE(std::llabs(rank - target),
              static_cast<int64_t>(2 * kEpsilon * kCount) + 2)
        << "phi " << phi;
  }
}

TEST(GkQuantilesTest, SkewedStreamQuantiles) {
  GkQuantileSummary summary = MustCreate(0.02);
  ZipfDistribution zipf(1u << 14, 1.2);
  Rng rng(6);
  std::vector<uint64_t> values;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t v = zipf.Sample(&rng);
    values.push_back(v);
    summary.Insert(v);
  }
  const uint64_t median = *summary.Quantile(0.5);
  const int64_t rank = RankOf(values, median);
  EXPECT_NEAR(rank, 15000, 1500);
}

TEST(GkQuantilesTest, SummaryStaysSublinear) {
  GkQuantileSummary summary = MustCreate(0.01);
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    summary.Insert(rng.NextUint64Below(1u << 30));
  }
  // GK bound: O((1/ε)·log(εn)) ≈ 100·log(1000) ≈ 1000; allow headroom.
  EXPECT_LT(summary.summary_size(), 4000u);
  EXPECT_EQ(summary.count(), 100000);
}

// Tighter epsilon → bigger summary and tighter answers (parameterized).
class GkEpsilonTest : public ::testing::TestWithParam<double> {};

TEST_P(GkEpsilonTest, MedianRankWithinEpsilon) {
  const double epsilon = GetParam();
  GkQuantileSummary summary = MustCreate(epsilon);
  Rng rng(9);
  std::vector<uint64_t> values;
  constexpr int kCount = 10000;
  for (int i = 0; i < kCount; ++i) {
    const uint64_t v = rng.NextUint64Below(1000000);
    values.push_back(v);
    summary.Insert(v);
  }
  const int64_t rank = RankOf(values, *summary.Quantile(0.5));
  EXPECT_LE(std::llabs(rank - kCount / 2),
            static_cast<int64_t>(2 * epsilon * kCount) + 2);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, GkEpsilonTest,
                         ::testing::Values(0.2, 0.1, 0.05, 0.02, 0.01));

}  // namespace
}  // namespace stream
}  // namespace skimjoin
