#include "core/join_estimators.h"

#include <memory>
#include <string>
#include <utility>

#include "gtest/gtest.h"
#include "sketch/partitioned_agms.h"
#include "stream/exact.h"
#include "stream/zipf.h"

namespace skimjoin {
namespace core {
namespace {

using stream::FrequencyVector;

EstimatorSpec BaseSpec(EstimatorKind kind) {
  EstimatorSpec spec;
  spec.kind = kind;
  spec.domain_size = 1u << 10;
  spec.space_counters = 2048;
  return spec;
}

TEST(EstimatorKindNameTest, AllKindsNamed) {
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kAgms), "agms");
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kHashSketch), "hash-sketch");
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kSkimmedSketch), "skimmed");
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kCountMin), "count-min");
  EXPECT_STREQ(EstimatorKindName(EstimatorKind::kSampling), "sampling");
}

TEST(CreateJoinEstimatorPairTest, RejectsZeroSpace) {
  EstimatorSpec spec = BaseSpec(EstimatorKind::kAgms);
  spec.space_counters = 0;
  EXPECT_FALSE(CreateJoinEstimatorPair(spec, 1).ok());
}

TEST(CreateJoinEstimatorPairTest, RejectsSpaceSmallerThanShape) {
  EstimatorSpec spec = BaseSpec(EstimatorKind::kAgms);
  spec.space_counters = 3;
  spec.agms_num_medians = 5;
  EXPECT_FALSE(CreateJoinEstimatorPair(spec, 1).ok());

  spec = BaseSpec(EstimatorKind::kHashSketch);
  spec.space_counters = 3;
  spec.num_tables = 7;
  EXPECT_FALSE(CreateJoinEstimatorPair(spec, 1).ok());
}

TEST(CreateJoinEstimatorPairTest, BuildsEveryKindWithCorrectName) {
  for (EstimatorKind kind :
       {EstimatorKind::kAgms, EstimatorKind::kHashSketch,
        EstimatorKind::kSkimmedSketch, EstimatorKind::kCountMin,
        EstimatorKind::kSampling}) {
    StatusOr<std::unique_ptr<JoinEstimatorPair>> pair =
        CreateJoinEstimatorPair(BaseSpec(kind), 7);
    ASSERT_TRUE(pair.ok()) << pair.status();
    EXPECT_STREQ((*pair)->Name(), EstimatorKindName(kind));
    EXPECT_GT((*pair)->SpaceCounters(), 0u);
  }
}

TEST(CreateJoinEstimatorPairTest, SpaceAccountingNearBudget) {
  for (EstimatorKind kind : {EstimatorKind::kAgms, EstimatorKind::kHashSketch,
                             EstimatorKind::kSkimmedSketch}) {
    StatusOr<std::unique_ptr<JoinEstimatorPair>> pair =
        CreateJoinEstimatorPair(BaseSpec(kind), 7);
    ASSERT_TRUE(pair.ok());
    EXPECT_LE((*pair)->SpaceCounters(), 2048u);
    EXPECT_GE((*pair)->SpaceCounters(), 1024u);  // within 2x due to rounding
  }
}

TEST(CreateJoinEstimatorPairTest, DyadicSkimStaysInsideBudget) {
  EstimatorSpec spec = BaseSpec(EstimatorKind::kSkimmedSketch);
  spec.skimmed_use_dyadic = true;
  StatusOr<std::unique_ptr<JoinEstimatorPair>> pair =
      CreateJoinEstimatorPair(spec, 9);
  ASSERT_TRUE(pair.ok()) << pair.status();
  // Level 0 plus 10 auxiliary levels must stay near the requested budget.
  EXPECT_LE((*pair)->SpaceCounters(), 2 * spec.space_counters);
}

TEST(JoinEstimatorPairTest, SketchEstimatorsTrackExactJoin) {
  constexpr uint64_t kDomain = 1u << 10;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.2).ExpectedFrequencies(30000);
  const FrequencyVector g =
      stream::ZipfDistribution(kDomain, 1.2, /*shift=*/8)
          .ExpectedFrequencies(30000);
  const double exact = static_cast<double>(stream::JoinSize(f, g));

  for (EstimatorKind kind : {EstimatorKind::kAgms, EstimatorKind::kHashSketch,
                             EstimatorKind::kSkimmedSketch}) {
    StatusOr<std::unique_ptr<JoinEstimatorPair>> pair =
        CreateJoinEstimatorPair(BaseSpec(kind), 11);
    ASSERT_TRUE(pair.ok());
    (*pair)->AbsorbF(f);
    (*pair)->AbsorbG(g);
    StatusOr<double> estimate = (*pair)->Estimate();
    ASSERT_TRUE(estimate.ok()) << (*pair)->Name();
    EXPECT_NEAR(*estimate, exact, 0.5 * exact) << (*pair)->Name();
  }
}

TEST(JoinEstimatorPairTest, CountMinUpperBounds) {
  constexpr uint64_t kDomain = 1u << 10;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.0).ExpectedFrequencies(20000);
  StatusOr<std::unique_ptr<JoinEstimatorPair>> pair =
      CreateJoinEstimatorPair(BaseSpec(EstimatorKind::kCountMin), 13);
  ASSERT_TRUE(pair.ok());
  (*pair)->AbsorbF(f);
  (*pair)->AbsorbG(f);
  StatusOr<double> estimate = (*pair)->Estimate();
  ASSERT_TRUE(estimate.ok());
  EXPECT_GE(*estimate, static_cast<double>(f.SelfJoinSize()));
}

TEST(JoinEstimatorPairTest, SamplingAbsorbExpandsToUnitInserts) {
  FrequencyVector f(64);
  f.Add(5, 100);
  f.Add(6, 50);
  EstimatorSpec spec = BaseSpec(EstimatorKind::kSampling);
  spec.space_counters = 1000;  // capacity larger than the stream
  StatusOr<std::unique_ptr<JoinEstimatorPair>> pair =
      CreateJoinEstimatorPair(spec, 15);
  ASSERT_TRUE(pair.ok());
  (*pair)->AbsorbF(f);
  (*pair)->AbsorbG(f);
  StatusOr<double> estimate = (*pair)->Estimate();
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, 100.0 * 100.0 + 50.0 * 50.0);
}

TEST(CreateJoinEstimatorPairTest, PartitionedAgmsRequiresPlan) {
  EstimatorSpec spec = BaseSpec(EstimatorKind::kPartitionedAgms);
  StatusOr<std::unique_ptr<JoinEstimatorPair>> missing =
      CreateJoinEstimatorPair(spec, 1);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);

  const FrequencyVector stats =
      stream::ZipfDistribution(spec.domain_size, 1.0).ExpectedFrequencies(5000);
  spec.partition_plan = std::make_shared<sketch::PartitionPlan>(
      *sketch::PlanPartitions(stats, stats, 4, 1024, 5));
  StatusOr<std::unique_ptr<JoinEstimatorPair>> pair =
      CreateJoinEstimatorPair(spec, 1);
  ASSERT_TRUE(pair.ok()) << pair.status();
  EXPECT_STREQ((*pair)->Name(), "partitioned-agms");
  (*pair)->UpdateF(3, 10);
  (*pair)->UpdateG(3, 7);
  StatusOr<double> estimate = (*pair)->Estimate();
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, 70.0);
}

TEST(JoinEstimatorPairTest, UpdatesRouteToCorrectSide) {
  StatusOr<std::unique_ptr<JoinEstimatorPair>> pair =
      CreateJoinEstimatorPair(BaseSpec(EstimatorKind::kHashSketch), 17);
  ASSERT_TRUE(pair.ok());
  // Only F gets data; the join with an empty G must be 0.
  (*pair)->UpdateF(3, 100);
  StatusOr<double> estimate = (*pair)->Estimate();
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, 0.0);
  // Now G overlaps.
  (*pair)->UpdateG(3, 2);
  estimate = (*pair)->Estimate();
  ASSERT_TRUE(estimate.ok());
  EXPECT_DOUBLE_EQ(*estimate, 200.0);
}

}  // namespace
}  // namespace core
}  // namespace skimjoin
