#include "util/failpoint.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/status.h"

namespace skimjoin {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DeactivateAll(); }
};

TEST_F(FailpointTest, InactiveCheckIsOk) {
  EXPECT_TRUE(failpoint::Check("never:activated").ok());
  const auto outcome = failpoint::CheckWrite("never:activated", 128);
  EXPECT_EQ(outcome.allowed_bytes, 128u);
  EXPECT_TRUE(outcome.status.ok());
}

TEST_F(FailpointTest, ErrorModeInjectsConfiguredStatus) {
  failpoint::Spec spec;
  spec.mode = failpoint::Mode::kError;
  spec.code = StatusCode::kFailedPrecondition;
  spec.message = "extra context";
  failpoint::Activate("fp:a", spec);

  const Status s = failpoint::Check("fp:a");
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("fp:a"), std::string::npos);
  EXPECT_NE(s.message().find("extra context"), std::string::npos);
  EXPECT_FALSE(failpoint::IsSimulatedCrash(s));

  // Other names are unaffected.
  EXPECT_TRUE(failpoint::Check("fp:b").ok());
}

TEST_F(FailpointTest, ErrorModeOnWritePathWritesNothing) {
  failpoint::Spec spec;
  spec.mode = failpoint::Mode::kError;
  failpoint::Activate("fp:w", spec);

  const auto outcome = failpoint::CheckWrite("fp:w", 100);
  EXPECT_EQ(outcome.allowed_bytes, 0u);
  EXPECT_FALSE(outcome.status.ok());
}

TEST_F(FailpointTest, TornWriteAllowsPrefix) {
  failpoint::Spec spec;
  spec.mode = failpoint::Mode::kTornWrite;
  spec.torn_bytes = 7;
  failpoint::Activate("fp:torn", spec);

  const auto outcome = failpoint::CheckWrite("fp:torn", 100);
  EXPECT_EQ(outcome.allowed_bytes, 7u);
  EXPECT_EQ(outcome.status.code(), StatusCode::kIoError);

  // torn_bytes is clamped to the intended write size.
  failpoint::Activate("fp:torn", spec);
  const auto small = failpoint::CheckWrite("fp:torn", 3);
  EXPECT_EQ(small.allowed_bytes, 3u);
}

TEST_F(FailpointTest, CrashModeIsMarkedSimulatedCrash) {
  failpoint::Spec spec;
  spec.mode = failpoint::Mode::kCrash;
  failpoint::Activate("fp:crash", spec);

  const Status s = failpoint::Check("fp:crash");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_TRUE(failpoint::IsSimulatedCrash(s));
  EXPECT_FALSE(failpoint::IsSimulatedCrash(OkStatus()));
  EXPECT_FALSE(failpoint::IsSimulatedCrash(IoError("ordinary")));
}

TEST_F(FailpointTest, SkipLetsEarlyEvaluationsPass) {
  failpoint::Spec spec;
  spec.mode = failpoint::Mode::kError;
  spec.skip = 2;
  failpoint::Activate("fp:skip", spec);

  EXPECT_TRUE(failpoint::Check("fp:skip").ok());
  EXPECT_TRUE(failpoint::Check("fp:skip").ok());
  EXPECT_FALSE(failpoint::Check("fp:skip").ok());
  EXPECT_FALSE(failpoint::Check("fp:skip").ok());
}

TEST_F(FailpointTest, LimitStopsFiringAfterwards) {
  failpoint::Spec spec;
  spec.mode = failpoint::Mode::kError;
  spec.limit = 1;
  failpoint::Activate("fp:limit", spec);

  EXPECT_FALSE(failpoint::Check("fp:limit").ok());
  EXPECT_TRUE(failpoint::Check("fp:limit").ok());
  EXPECT_TRUE(failpoint::Check("fp:limit").ok());
}

TEST_F(FailpointTest, DeactivateStopsInjection) {
  failpoint::Spec spec;
  failpoint::Activate("fp:d", spec);
  EXPECT_FALSE(failpoint::Check("fp:d").ok());
  failpoint::Deactivate("fp:d");
  EXPECT_TRUE(failpoint::Check("fp:d").ok());
  failpoint::Deactivate("fp:d");  // idempotent
}

TEST_F(FailpointTest, HitCountSurvivesDeactivation) {
  failpoint::Spec spec;
  spec.skip = 100;  // never fires, only counts
  failpoint::Activate("fp:hits", spec);
  EXPECT_TRUE(failpoint::Check("fp:hits").ok());
  EXPECT_TRUE(failpoint::Check("fp:hits").ok());
  EXPECT_EQ(failpoint::HitCount("fp:hits"), 2u);
  failpoint::Deactivate("fp:hits");
  EXPECT_EQ(failpoint::HitCount("fp:hits"), 2u);
  failpoint::Activate("fp:hits", spec);
  EXPECT_TRUE(failpoint::Check("fp:hits").ok());
  failpoint::DeactivateAll();
  EXPECT_EQ(failpoint::HitCount("fp:hits"), 3u);
  EXPECT_EQ(failpoint::HitCount("fp:never"), 0u);
}

TEST_F(FailpointTest, ReactivationResetsCounters) {
  failpoint::Spec spec;
  spec.limit = 1;
  failpoint::Activate("fp:r", spec);
  EXPECT_FALSE(failpoint::Check("fp:r").ok());
  EXPECT_TRUE(failpoint::Check("fp:r").ok());  // limit exhausted
  failpoint::Activate("fp:r", spec);           // reset
  EXPECT_FALSE(failpoint::Check("fp:r").ok());
}

TEST_F(FailpointTest, ConcurrentChecksAreSafe) {
  failpoint::Spec spec;
  spec.mode = failpoint::Mode::kError;
  spec.skip = 50;
  failpoint::Activate("fp:mt", spec);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (!failpoint::Check("fp:mt").ok()) ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  int total = 0;
  for (const int f : failures) total += f;
  EXPECT_EQ(total, kThreads * kPerThread - 50);
  EXPECT_EQ(failpoint::HitCount("fp:mt"),
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST_F(FailpointTest, ScopedFailpointActivatesForItsScopeOnly) {
  failpoint::Spec spec;
  spec.mode = failpoint::Mode::kError;
  {
    failpoint::ScopedFailpoint guard("fp:scoped", spec);
    EXPECT_EQ(guard.name(), "fp:scoped");
    EXPECT_FALSE(failpoint::Check("fp:scoped").ok());
  }
  // Scope exit deactivated it — no DeactivateAll needed.
  EXPECT_TRUE(failpoint::Check("fp:scoped").ok());
}

TEST_F(FailpointTest, ScopedFailpointLeavesOtherActivationsAlone) {
  failpoint::Spec spec;
  failpoint::Activate("fp:other", spec);
  {
    failpoint::ScopedFailpoint guard("fp:scoped2", spec);
    EXPECT_FALSE(failpoint::Check("fp:scoped2").ok());
  }
  // The guard only deactivates its own name.
  EXPECT_FALSE(failpoint::Check("fp:other").ok());
}

TEST_F(FailpointTest, OneInFiresOnSomeButNotAllEvaluations) {
  failpoint::SeedChaos(20260808);
  failpoint::Spec spec;
  spec.mode = failpoint::Mode::kError;
  spec.one_in = 4;
  failpoint::ScopedFailpoint guard("fp:chaos", spec);

  constexpr int kTrials = 400;
  int fired = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (!failpoint::Check("fp:chaos").ok()) ++fired;
  }
  // Probabilistic, but with 400 draws at p = 1/4 both extremes are
  // (astronomically) impossible under any sane RNG.
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, kTrials);
}

TEST_F(FailpointTest, OneInScheduleIsReproducibleFromSeed) {
  const auto schedule = [](uint64_t seed) {
    failpoint::SeedChaos(seed);
    failpoint::Spec spec;
    spec.mode = failpoint::Mode::kError;
    spec.one_in = 3;
    failpoint::ScopedFailpoint guard("fp:sched", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(!failpoint::Check("fp:sched").ok());
    }
    return fired;
  };
  const std::vector<bool> first = schedule(42);
  const std::vector<bool> again = schedule(42);
  const std::vector<bool> other = schedule(43);
  EXPECT_EQ(first, again);
  EXPECT_NE(first, other);
}

TEST_F(FailpointTest, OneInStillHonorsSkipAndLimit) {
  failpoint::SeedChaos(7);
  failpoint::Spec spec;
  spec.mode = failpoint::Mode::kError;
  spec.one_in = 2;
  spec.skip = 10;
  spec.limit = 3;
  failpoint::ScopedFailpoint guard("fp:bounded", spec);

  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(failpoint::Check("fp:bounded").ok()) << "fired inside skip";
  }
  for (int i = 0; i < 500; ++i) {
    if (!failpoint::Check("fp:bounded").ok()) ++fired;
  }
  EXPECT_EQ(fired, 3) << "limit must bound probabilistic firings";
}

}  // namespace
}  // namespace skimjoin
