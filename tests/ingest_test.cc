// Tests for the batched / sharded ingestion pipeline: UpdateBatch must be
// counter-for-counter identical to scalar Update on every synopsis type,
// ParallelIngestor must reproduce the sequential result exactly at any
// shard count (linearity makes the parallelism lossless), and the engine
// batch entry point must answer queries identically to element-wise
// feeding while tracking ingest counters.

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/skimmed_sketch.h"
#include "gtest/gtest.h"
#include "ingest/parallel_ingestor.h"
#include "query/engine.h"
#include "sketch/agms_sketch.h"
#include "sketch/count_min_sketch.h"
#include "sketch/hash_sketch.h"
#include "stream/stream_element.h"
#include "stream/zipf.h"
#include "util/logging.h"
#include "util/random.h"

namespace skimjoin {
namespace {

using stream::StreamElement;

std::vector<StreamElement> MixedStream(uint64_t count, uint64_t domain,
                                       uint64_t seed) {
  // Inserts, deletes, and heavier SUM-style weights, skewed like a real
  // workload.
  Rng zipf_rng(seed);
  std::vector<StreamElement> elements =
      stream::ZipfDistribution(domain, 1.1).GenerateElements(count, &zipf_rng);
  Rng rng(seed + 1);
  for (StreamElement& element : elements) {
    const uint64_t roll = rng.NextUint64Below(10);
    if (roll == 0) element.weight = -1;
    if (roll == 1) element.weight = static_cast<int64_t>(2 + roll);
  }
  return elements;
}

template <typename Sketch>
std::string Serialized(const Sketch& sketch) {
  std::stringstream buffer;
  EXPECT_TRUE(sketch.SerializeTo(buffer).ok());
  return buffer.str();
}

TEST(UpdateBatchTest, HashSketchMatchesScalarBitForBit) {
  const auto elements = MixedStream(20000, 1u << 14, 7);
  auto scalar = *sketch::HashSketch::Create({7, 128}, 3);
  auto batched = *sketch::HashSketch::Create({7, 128}, 3);
  for (const StreamElement& element : elements) scalar.Update(element);
  batched.UpdateBatch(elements);
  for (uint64_t t = 0; t < 7; ++t) {
    for (uint64_t b = 0; b < 128; ++b) {
      ASSERT_EQ(scalar.Counter(t, b), batched.Counter(t, b))
          << "table " << t << " bucket " << b;
    }
  }
}

TEST(UpdateBatchTest, AgmsSketchMatchesScalarBitForBit) {
  const auto elements = MixedStream(5000, 1u << 12, 11);
  auto scalar = *sketch::AgmsSketch::Create({16, 5}, 3);
  auto batched = *sketch::AgmsSketch::Create({16, 5}, 3);
  for (const StreamElement& element : elements) scalar.Update(element);
  batched.UpdateBatch(elements);
  for (uint64_t i = 0; i < 16; ++i) {
    for (uint64_t j = 0; j < 5; ++j) {
      ASSERT_EQ(scalar.counter(i, j), batched.counter(i, j));
    }
  }
}

TEST(UpdateBatchTest, CountMinMatchesScalarOnPointEstimates) {
  const auto elements = MixedStream(20000, 1u << 12, 13);
  auto scalar = *sketch::CountMinSketch::Create({5, 256}, 3);
  auto batched = *sketch::CountMinSketch::Create({5, 256}, 3);
  for (const StreamElement& element : elements) scalar.Update(element);
  batched.UpdateBatch(elements);
  for (uint64_t v = 0; v < (1u << 12); ++v) {
    ASSERT_EQ(scalar.PointEstimate(v), batched.PointEstimate(v)) << v;
  }
}

TEST(UpdateBatchTest, SkimmedSketchMatchesScalarIncludingDyadicLevels) {
  const auto elements = MixedStream(30000, 1u << 12, 17);
  core::SkimmedSketchConfig config;
  config.domain_size = 1u << 12;
  config.num_buckets = 256;
  config.use_dyadic_skim = true;
  config.dyadic_num_buckets = 64;
  auto scalar = *core::SkimmedSketch::Create(config, 5);
  auto batched = *core::SkimmedSketch::Create(config, 5);
  for (const StreamElement& element : elements) scalar.Update(element);
  batched.UpdateBatch(elements);
  // The serialized text covers every counter of level 0 AND every dyadic
  // level, so string equality is bit-identity of the whole synopsis.
  EXPECT_EQ(Serialized(scalar), Serialized(batched));
}

TEST(UpdateBatchTest, SkimmedSketchBatchDropsOutOfDomainLikeScalar) {
  core::SkimmedSketchConfig config;
  config.domain_size = 1u << 8;
  config.num_buckets = 64;
  auto sketch = *core::SkimmedSketch::Create(config, 5);
  std::vector<StreamElement> elements = {
      {3, 1}, {1u << 9, 1}, {5, 2}, {UINT64_MAX, 1}, {3, 1}};
  sketch.UpdateBatch(elements);
  EXPECT_EQ(sketch.dropped_updates(), 2u);
  EXPECT_EQ(sketch.EstimatePointFrequency(3), 2);
  EXPECT_EQ(sketch.EstimatePointFrequency(5), 2);
}

TEST(UpdateBatchTest, ResetReturnsToFreshState) {
  core::SkimmedSketchConfig config;
  config.domain_size = 1u << 10;
  auto fresh = *core::SkimmedSketch::Create(config, 9);
  auto used = *core::SkimmedSketch::Create(config, 9);
  used.UpdateBatch(MixedStream(5000, 1u << 10, 21));
  used.Update(1u << 11, 1);  // one dropped update
  used.Reset();
  EXPECT_EQ(used.dropped_updates(), 0u);
  EXPECT_EQ(Serialized(fresh), Serialized(used));
}

TEST(ParallelIngestorTest, RejectsZeroShards) {
  auto proto = *sketch::HashSketch::Create({5, 64}, 1);
  EXPECT_FALSE(
      ingest::ParallelIngestor<sketch::HashSketch>::Create(proto, 0).ok());
}

TEST(ParallelIngestorTest, MatchesSequentialAtAnyShardCount) {
  const auto elements = MixedStream(60000, 1u << 12, 23);
  core::SkimmedSketchConfig config;
  config.domain_size = 1u << 12;
  config.num_buckets = 128;
  config.dyadic_num_buckets = 32;

  auto sequential = *core::SkimmedSketch::Create(config, 7);
  for (const StreamElement& element : elements) sequential.Update(element);
  const std::string expected = Serialized(sequential);

  for (uint64_t shards : {1u, 2u, 3u, 4u, 8u}) {
    auto master = *core::SkimmedSketch::Create(config, 7);
    auto ingestor =
        *ingest::ParallelIngestor<core::SkimmedSketch>::Create(master, shards);
    ingestor.IngestInto(&master, elements);
    EXPECT_EQ(Serialized(master), expected) << shards << " shards";
  }
}

TEST(ParallelIngestorTest, MultipleBatchesAccumulateAcrossFlushes) {
  const auto elements = MixedStream(40000, 1u << 10, 29);
  auto sequential = *sketch::HashSketch::Create({7, 256}, 1);
  for (const StreamElement& element : elements) sequential.Update(element);

  auto master = *sketch::HashSketch::Create({7, 256}, 1);
  auto ingestor =
      *ingest::ParallelIngestor<sketch::HashSketch>::Create(master, 4);
  const std::span<const StreamElement> all(elements);
  // Two absorbs per flush, two flushes: replicas must reset cleanly between
  // flushes or counters would double.
  ingestor.AbsorbBatch(all.subspan(0, 10000));
  ingestor.AbsorbBatch(all.subspan(10000, 10000));
  ingestor.FlushInto(&master);
  ingestor.AbsorbBatch(all.subspan(20000, 20000));
  ingestor.FlushInto(&master);
  EXPECT_EQ(Serialized(master), Serialized(sequential));

  const ingest::IngestStats& stats = ingestor.stats();
  EXPECT_EQ(stats.elements_absorbed, 40000u);
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.merges, 2u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(ParallelIngestorTest, FoldsReplicaDropCountsIntoStats) {
  core::SkimmedSketchConfig config;
  config.domain_size = 1u << 8;
  config.num_buckets = 64;
  auto master = *core::SkimmedSketch::Create(config, 3);
  auto ingestor =
      *ingest::ParallelIngestor<core::SkimmedSketch>::Create(master, 2);
  std::vector<StreamElement> elements(20000, StreamElement{1, 1});
  elements[7].value = 1u << 9;    // out of domain
  elements[19999].value = 1u << 10;  // out of domain
  ingestor.IngestInto(&master, elements);
  EXPECT_EQ(ingestor.stats().elements_dropped, 2u);
  EXPECT_EQ(ingestor.stats().elements_absorbed, 19998u);
  EXPECT_EQ(master.EstimatePointFrequency(1), 19998);
  EXPECT_EQ(master.dropped_updates(), 0u);  // drops stayed in the replicas
}

/// Minimal linear synopsis whose Reset deliberately KEEPS its drop counter,
/// modeling a synopsis that treats drops as a lifetime tally (or a prototype
/// copied from a non-reset master). Its replicas then report drops the
/// ingestor never counted as absorbed.
class StickyDropSynopsis {
 public:
  void Update(const StreamElement& element) {
    if (element.value >= 16) {
      ++dropped_;
    } else {
      total_ += element.weight;
    }
  }
  void UpdateBatch(std::span<const StreamElement> elements) {
    for (const StreamElement& element : elements) Update(element);
  }
  void Merge(const StickyDropSynopsis& other) { total_ += other.total_; }
  void Reset() { total_ = 0; }  // dropped_ intentionally survives
  uint64_t dropped_updates() const { return dropped_; }
  int64_t total() const { return total_; }

 private:
  int64_t total_ = 0;
  uint64_t dropped_ = 0;
};

// Regression: replica drop counts larger than the ingestor's own absorbed
// tally used to underflow stats_.elements_absorbed (unsigned) to ~2^64.
// The subtraction must saturate at zero instead.
TEST(ParallelIngestorTest, FlushSaturatesAbsorbedWhenReplicaDropsExceedIt) {
  StickyDropSynopsis prototype;
  // Pre-existing drops on the prototype survive Create's replica Reset, so
  // the first flush sees 2 shards x 3 drops against 0 absorbed elements.
  const std::vector<StreamElement> out_of_range = {{99, 1}, {99, 1}, {99, 1}};
  prototype.UpdateBatch(out_of_range);
  ASSERT_EQ(prototype.dropped_updates(), 3u);

  auto ingestor =
      ingest::ParallelIngestor<StickyDropSynopsis>::Create(prototype, 2);
  ASSERT_TRUE(ingestor.ok());
  StickyDropSynopsis master;
  ingestor->FlushInto(&master);

  const ingest::IngestStats& stats = ingestor->stats();
  EXPECT_EQ(stats.elements_absorbed, 0u);  // saturated, not ~2^64
  EXPECT_EQ(stats.elements_dropped, 6u);
  EXPECT_EQ(master.total(), 0);
}

TEST(EngineBatchTest, UpdateBatchMatchesScalarUpdates) {
  const uint64_t kDomain = 1u << 10;
  auto elements = MixedStream(20000, kDomain, 31);
  std::vector<query::StreamUpdate> updates;
  updates.reserve(elements.size());
  for (const StreamElement& element : elements) {
    updates.push_back({element.value, element.weight, element.weight * 2});
  }

  auto build = [&](bool batched, uint64_t shards) {
    auto engine = std::make_unique<query::Engine>();
    SKIMJOIN_CHECK_OK(engine->SetIngestShards(shards));
    SKIMJOIN_CHECK(engine->RegisterStream({"s", kDomain}).ok());
    query::SelfJoinQuerySpec self_join;
    self_join.stream = "s";
    self_join.estimator.kind = core::EstimatorKind::kSkimmedSketch;
    auto jq = engine->AddSelfJoinQuery(self_join, 5);
    SKIMJOIN_CHECK(jq.ok());
    query::FrequencyQuerySpec freq;
    freq.stream = "s";
    auto fq = engine->AddFrequencyQuery(freq, 5);
    SKIMJOIN_CHECK(fq.ok());
    if (batched) {
      SKIMJOIN_CHECK_OK(engine->UpdateBatch("s", updates));
    } else {
      for (const query::StreamUpdate& update : updates) {
        SKIMJOIN_CHECK_OK(engine->Update("s", update));
      }
    }
    struct Answers {
      double join;
      int64_t freq0;
      int64_t count;
    };
    return Answers{*engine->AnswerJoin(*jq),
                   *engine->AnswerPointFrequency(*fq, 0),
                   *engine->StreamElementCount("s")};
  };

  const auto scalar = build(false, 1);
  const auto inline_batch = build(true, 1);
  const auto sharded_batch = build(true, 4);
  EXPECT_EQ(scalar.count, inline_batch.count);
  EXPECT_EQ(scalar.count, sharded_batch.count);
  EXPECT_DOUBLE_EQ(scalar.join, inline_batch.join);
  EXPECT_DOUBLE_EQ(scalar.join, sharded_batch.join);
  EXPECT_EQ(scalar.freq0, inline_batch.freq0);
  EXPECT_EQ(scalar.freq0, sharded_batch.freq0);
}

TEST(EngineBatchTest, DropsOutOfDomainAndCountsThem) {
  query::Engine engine;
  ASSERT_TRUE(engine.RegisterStream({"s", 256}).ok());
  query::FrequencyQuerySpec freq;
  freq.stream = "s";
  auto fq = engine.AddFrequencyQuery(freq, 1);
  ASSERT_TRUE(fq.ok());

  std::vector<query::StreamUpdate> updates = {
      {5, 1, 0}, {512, 1, 0}, {5, 1, 0}, {UINT64_MAX, 3, 0}};
  ASSERT_TRUE(engine.UpdateBatch("s", updates).ok());

  auto stats = engine.StreamIngestStats("s");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->batches, 1u);
  EXPECT_EQ(stats->elements_absorbed, 2u);
  EXPECT_EQ(stats->elements_dropped, 2u);
  EXPECT_EQ(*engine.AnswerPointFrequency(*fq, 5), 2);
  EXPECT_EQ(*engine.StreamElementCount("s"), 2);

  // The scalar path still reports the error, and counts the drop.
  EXPECT_EQ(engine.Update("s", {1000, 1, 0}).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(engine.StreamIngestStats("s")->elements_dropped, 3u);
}

TEST(EngineBatchTest, UnknownStreamAndBadShardCountRejected) {
  query::Engine engine;
  std::vector<query::StreamUpdate> updates = {{1, 1, 0}};
  EXPECT_EQ(engine.UpdateBatch("nope", updates).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.SetIngestShards(0).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(engine.StreamIngestStats("nope").ok());
}

}  // namespace
}  // namespace skimjoin
