#include "stream/trace_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include "gtest/gtest.h"
#include "util/failpoint.h"

namespace skimjoin {
namespace stream {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TraceIoTest, RoundTrip) {
  const std::string path = TempPath("roundtrip.trace");
  const std::vector<StreamElement> elements = {
      Insert(5), Delete(5), Weighted(9, 42), Weighted(0, -3)};
  ASSERT_TRUE(WriteTrace(path, elements).ok());
  StatusOr<std::vector<StreamElement>> read = ReadTrace(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, elements);
  std::remove(path.c_str());
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  const std::string path = TempPath("empty.trace");
  ASSERT_TRUE(WriteTrace(path, {}).ok());
  StatusOr<std::vector<StreamElement>> read = ReadTrace(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
  std::remove(path.c_str());
}

TEST(TraceIoTest, CommentsAndBlankLinesIgnored) {
  const std::string path = TempPath("comments.trace");
  {
    std::ofstream out(path);
    out << "# header comment\n\n7 1\n# mid comment\n8 -1\n";
  }
  StatusOr<std::vector<StreamElement>> read = ReadTrace(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 2u);
  EXPECT_EQ((*read)[0], Insert(7));
  EXPECT_EQ((*read)[1], Delete(8));
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileIsIoError) {
  StatusOr<std::vector<StreamElement>> read =
      ReadTrace(TempPath("does-not-exist.trace"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST(TraceIoTest, MalformedLineIsInvalidArgument) {
  const std::string path = TempPath("malformed.trace");
  {
    std::ofstream out(path);
    out << "12 1\nnot-a-number 3\n";
  }
  StatusOr<std::vector<StreamElement>> read = ReadTrace(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(read.status().message().find("line 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceIoTest, TrailingTokensRejected) {
  const std::string path = TempPath("trailing.trace");
  {
    std::ofstream out(path);
    out << "1 1 extra\n";
  }
  StatusOr<std::vector<StreamElement>> read = ReadTrace(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TraceIoTest, UnwritablePathIsIoError) {
  EXPECT_EQ(WriteTrace("/nonexistent-dir/x.trace", {}).code(),
            StatusCode::kIoError);
}

TEST(TraceIoTest, InjectedWriteErrorLeavesOldTraceIntact) {
  // WriteTrace goes through util::AtomicWriteFile, so an I/O failure (here
  // injected at the append step) must surface as an error AND leave a
  // previously written trace untouched.
  const std::string path = TempPath("atomic.trace");
  const std::vector<StreamElement> original = {Insert(1), Weighted(2, 5)};
  ASSERT_TRUE(WriteTrace(path, original).ok());

  failpoint::Spec spec;
  spec.message = "disk full";
  Status failed;
  {
    failpoint::ScopedFailpoint guard("durable:append", spec);
    failed = WriteTrace(path, {Insert(9)});
  }
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);

  StatusOr<std::vector<StreamElement>> read = ReadTrace(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, original);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stream
}  // namespace skimjoin
