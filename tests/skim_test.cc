#include "core/skim.h"

#include <cmath>
#include <utility>

#include "gtest/gtest.h"
#include "stream/frequency_vector.h"
#include "stream/zipf.h"
#include "util/random.h"

namespace skimjoin {
namespace core {
namespace {

using sketch::HashSketch;
using sketch::HashSketchConfig;
using stream::FrequencyVector;

HashSketch MustCreate(const HashSketchConfig& config, uint64_t seed) {
  StatusOr<HashSketch> sketch = HashSketch::Create(config, seed);
  EXPECT_TRUE(sketch.ok()) << sketch.status();
  return *std::move(sketch);
}

TEST(LookupDenseTest, EmptyAndMissAndHit) {
  EXPECT_EQ(LookupDense({}, 5), 0);
  const DenseFrequencies dense = {{2, 10}, {7, -3}, {9, 4}};
  EXPECT_EQ(LookupDense(dense, 2), 10);
  EXPECT_EQ(LookupDense(dense, 7), -3);
  EXPECT_EQ(LookupDense(dense, 9), 4);
  EXPECT_EQ(LookupDense(dense, 0), 0);
  EXPECT_EQ(LookupDense(dense, 8), 0);
  EXPECT_EQ(LookupDense(dense, 100), 0);
}

TEST(SkimDenseNaiveTest, ExtractsPlantedHeavyValues) {
  constexpr uint64_t kDomain = 256;
  FrequencyVector f(kDomain);
  // Two clearly dense values on top of unit-frequency background.
  f.Add(10, 1000);
  f.Add(200, 500);
  for (uint64_t v = 0; v < kDomain; ++v) f.Add(v, 1);
  HashSketch sketch = MustCreate({7, 256}, 3);
  sketch.Absorb(f);

  const DenseFrequencies dense = SkimDenseNaive(&sketch, kDomain, 100);
  EXPECT_EQ(LookupDense(dense, 10) > 900, true);
  EXPECT_EQ(LookupDense(dense, 200) > 400, true);
  // Nothing else comes close to the threshold.
  for (const auto& [value, freq] : dense) {
    EXPECT_TRUE(value == 10 || value == 200) << "value " << value;
  }
}

TEST(SkimDenseNaiveTest, NegativeHeavyValuesAreSkimmedToo) {
  constexpr uint64_t kDomain = 128;
  HashSketch sketch = MustCreate({7, 256}, 4);
  sketch.Update(5, -800);  // delete-dominated value
  sketch.Update(9, 700);
  const DenseFrequencies dense = SkimDenseNaive(&sketch, kDomain, 100);
  EXPECT_LT(LookupDense(dense, 5), -700);
  EXPECT_GT(LookupDense(dense, 9), 600);
}

TEST(SkimDenseNaiveTest, NothingDenseYieldsEmptyAndLeavesSketchAlone) {
  constexpr uint64_t kDomain = 64;
  HashSketch sketch = MustCreate({5, 128}, 5);
  for (uint64_t v = 0; v < kDomain; ++v) sketch.Update(v, 2);
  const HashSketch before = sketch;
  const DenseFrequencies dense = SkimDenseNaive(&sketch, kDomain, 50);
  EXPECT_TRUE(dense.empty());
  for (uint64_t table = 0; table < 5; ++table) {
    for (uint64_t bucket = 0; bucket < 128; ++bucket) {
      EXPECT_EQ(sketch.Counter(table, bucket), before.Counter(table, bucket));
    }
  }
}

// The exact linear identity at the heart of the algorithm: the skimmed
// sketch IS the sketch of the residual frequency vector f - Ê, counter for
// counter.
TEST(SkimDenseNaiveTest, SkimmedSketchEqualsSketchOfResidual) {
  constexpr uint64_t kDomain = 512;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.3).ExpectedFrequencies(20000);
  HashSketch sketch = MustCreate({5, 128}, 6);
  sketch.Absorb(f);
  HashSketch skimmed = sketch;
  const DenseFrequencies dense = SkimDenseNaive(&skimmed, kDomain, 50);
  ASSERT_FALSE(dense.empty());

  FrequencyVector residual = f;
  for (const auto& [value, freq] : dense) residual.Add(value, -freq);
  HashSketch reference = MustCreate({5, 128}, 6);
  reference.Absorb(residual);
  for (uint64_t table = 0; table < 5; ++table) {
    for (uint64_t bucket = 0; bucket < 128; ++bucket) {
      EXPECT_EQ(skimmed.Counter(table, bucket),
                reference.Counter(table, bucket));
    }
  }
}

TEST(SkimDenseCandidatesTest, HandlesDuplicatesAndNonDense) {
  constexpr uint64_t kDomain = 128;
  HashSketch sketch = MustCreate({5, 256}, 7);
  sketch.Update(3, 500);
  sketch.Update(60, 2);
  const DenseFrequencies dense =
      SkimDenseCandidates(&sketch, {3, 3, 60, 100, 3}, 100);
  ASSERT_EQ(dense.size(), 1u);
  EXPECT_EQ(dense[0].first, 3u);
  EXPECT_NEAR(dense[0].second, 500, 50);
  (void)kDomain;
}

TEST(SkimDenseCandidatesTest, EquivalentToNaiveWhenCandidatesCoverDomain) {
  constexpr uint64_t kDomain = 64;
  FrequencyVector f(kDomain);
  f.Add(1, 300);
  f.Add(33, 450);
  for (uint64_t v = 0; v < kDomain; ++v) f.Add(v, 3);
  HashSketch a = MustCreate({7, 128}, 8);
  HashSketch b = MustCreate({7, 128}, 8);
  a.Absorb(f);
  b.Absorb(f);
  std::vector<uint64_t> all;
  for (uint64_t v = 0; v < kDomain; ++v) all.push_back(v);
  const DenseFrequencies naive = SkimDenseNaive(&a, kDomain, 100);
  const DenseFrequencies via_candidates = SkimDenseCandidates(&b, all, 100);
  EXPECT_EQ(naive, via_candidates);
}

TEST(SkimMarginTest, MarginWithholdsPartOfTheEstimate) {
  HashSketch sketch = MustCreate({5, 1024}, 31);
  sketch.Update(9, 500);  // isolated → estimate exactly 500
  const DenseFrequencies dense =
      SkimDenseNaive(&sketch, /*domain_size=*/64, /*threshold=*/100,
                     /*margin=*/50);
  ASSERT_EQ(dense.size(), 1u);
  EXPECT_EQ(dense[0].second, 450);  // 500 - 50
  // The residual 50 stays in the sketch.
  EXPECT_EQ(sketch.PointEstimate(9), 50);
}

TEST(SkimMarginTest, MarginPreservesSignForNegativeValues) {
  HashSketch sketch = MustCreate({5, 1024}, 32);
  sketch.Update(9, -500);
  const DenseFrequencies dense =
      SkimDenseNaive(&sketch, 64, /*threshold=*/100, /*margin=*/50);
  ASSERT_EQ(dense.size(), 1u);
  EXPECT_EQ(dense[0].second, -450);
  EXPECT_EQ(sketch.PointEstimate(9), -50);
}

TEST(SkimMarginTest, MarginSwallowingTheEstimateSkipsTheValue) {
  HashSketch sketch = MustCreate({5, 1024}, 33);
  sketch.Update(9, 100);
  const DenseFrequencies dense =
      SkimDenseNaive(&sketch, 64, /*threshold=*/100, /*margin=*/200);
  EXPECT_TRUE(dense.empty());
  EXPECT_EQ(sketch.PointEstimate(9), 100);  // untouched
}

TEST(SkimMarginTest, ResidualIdentityStillExactWithMargin) {
  constexpr uint64_t kDomain = 256;
  const FrequencyVector f =
      stream::ZipfDistribution(kDomain, 1.3).ExpectedFrequencies(10000);
  HashSketch skimmed = MustCreate({5, 128}, 34);
  skimmed.Absorb(f);
  const DenseFrequencies dense =
      SkimDenseNaive(&skimmed, kDomain, /*threshold=*/50, /*margin=*/20);
  FrequencyVector residual = f;
  for (const auto& [value, freq] : dense) residual.Add(value, -freq);
  HashSketch reference = MustCreate({5, 128}, 34);
  reference.Absorb(residual);
  for (uint64_t table = 0; table < 5; ++table) {
    for (uint64_t bucket = 0; bucket < 128; ++bucket) {
      EXPECT_EQ(skimmed.Counter(table, bucket),
                reference.Counter(table, bucket));
    }
  }
}

TEST(DenseDenseJoinTest, MergeJoinOverSortedVectors) {
  const DenseFrequencies f = {{1, 2}, {5, 3}, {9, 10}};
  const DenseFrequencies g = {{0, 7}, {5, 4}, {9, -2}, {12, 100}};
  EXPECT_EQ(DenseDenseJoin(f, g), 3 * 4 + 10 * (-2));
}

TEST(DenseDenseJoinTest, EmptyAndDisjoint) {
  EXPECT_EQ(DenseDenseJoin({}, {}), 0);
  EXPECT_EQ(DenseDenseJoin({{1, 5}}, {}), 0);
  EXPECT_EQ(DenseDenseJoin({{1, 5}}, {{2, 5}}), 0);
}

TEST(EstimateSubJoinSizeTest, ExactWhenSketchHasNoCollisions) {
  // Residual g has three isolated values; the dense side names two of them.
  HashSketch g = MustCreate({5, 1024}, 9);
  g.Update(10, 4);
  g.Update(20, -6);
  g.Update(30, 8);
  const DenseFrequencies dense_f = {{10, 100}, {20, 50}, {99, 7}};
  // With no bucket collisions each per-table sum is exactly
  // 100*4 + 50*(-6) + 7*0 = 100.
  EXPECT_DOUBLE_EQ(EstimateSubJoinSize(dense_f, g), 100.0);
}

TEST(EstimateSubJoinSizeTest, EmptyDenseSideIsZero) {
  HashSketch g = MustCreate({3, 64}, 10);
  g.Update(1, 100);
  EXPECT_DOUBLE_EQ(EstimateSubJoinSize({}, g), 0.0);
}

TEST(EstimateSubJoinSizeTest, UnbiasedAcrossSeeds) {
  constexpr uint64_t kDomain = 128;
  FrequencyVector g(kDomain);
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) g.Add(rng.NextUint64Below(kDomain), 1);
  const DenseFrequencies dense_f = {{3, 40}, {70, 25}};
  const double exact = 40.0 * g.Get(3) + 25.0 * g.Get(70);
  double sum = 0.0;
  constexpr int kSeeds = 150;
  for (int seed = 0; seed < kSeeds; ++seed) {
    HashSketch sg = MustCreate({1, 32}, static_cast<uint64_t>(seed) + 900);
    sg.Absorb(g);
    sum += EstimateSubJoinSize(dense_f, sg);
  }
  EXPECT_NEAR(sum / kSeeds, exact, 0.25 * exact + 10);
}

// The worked example of §3 in spirit: two streams whose dense values
// dominate; skimming plus exact dense·dense recovers most of the join mass.
TEST(SkimExampleTest, PaperExampleScenario) {
  constexpr uint64_t kDomain = 16;
  FrequencyVector f(kDomain);
  FrequencyVector g(kDomain);
  f.Add(0, 40);
  f.Add(1, 36);
  for (uint64_t v = 2; v < kDomain; ++v) f.Add(v, 2);
  g.Add(0, 38);
  g.Add(2, 30);
  for (uint64_t v = 3; v < kDomain; ++v) g.Add(v, 1);

  HashSketch sf = MustCreate({5, 64}, 12);
  HashSketch sg = MustCreate({5, 64}, 12);
  sf.Absorb(f);
  sg.Absorb(g);
  const DenseFrequencies dense_f = SkimDenseNaive(&sf, kDomain, 10);
  const DenseFrequencies dense_g = SkimDenseNaive(&sg, kDomain, 10);
  EXPECT_GE(LookupDense(dense_f, 0), 30);
  EXPECT_GE(LookupDense(dense_f, 1), 26);
  EXPECT_GE(LookupDense(dense_g, 0), 28);
  EXPECT_GE(LookupDense(dense_g, 2), 20);

  const double estimate =
      static_cast<double>(DenseDenseJoin(dense_f, dense_g)) +
      EstimateSubJoinSize(dense_f, sg) + EstimateSubJoinSize(dense_g, sf) +
      *sketch::HashSketch::EstimateJoinSize(sf, sg);
  const double exact = static_cast<double>(stream::JoinSize(f, g));
  EXPECT_NEAR(estimate, exact, 0.25 * exact);
}

}  // namespace
}  // namespace core
}  // namespace skimjoin
