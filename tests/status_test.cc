#include "util/status.h"

#include <memory>
#include <sstream>
#include <utility>

#include "gtest/gtest.h"
#include "util/logging.h"

namespace skimjoin {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkStatusFactory) {
  EXPECT_TRUE(OkStatus().ok());
  EXPECT_EQ(OkStatus(), Status());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {InvalidArgumentError("m"), StatusCode::kInvalidArgument,
       "INVALID_ARGUMENT"},
      {NotFoundError("m"), StatusCode::kNotFound, "NOT_FOUND"},
      {AlreadyExistsError("m"), StatusCode::kAlreadyExists, "ALREADY_EXISTS"},
      {OutOfRangeError("m"), StatusCode::kOutOfRange, "OUT_OF_RANGE"},
      {FailedPreconditionError("m"), StatusCode::kFailedPrecondition,
       "FAILED_PRECONDITION"},
      {UnimplementedError("m"), StatusCode::kUnimplemented, "UNIMPLEMENTED"},
      {IoError("m"), StatusCode::kIoError, "IO_ERROR"},
      {InternalError("m"), StatusCode::kInternal, "INTERNAL"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
    EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": m");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, StreamInsertionUsesToString) {
  std::ostringstream os;
  os << NotFoundError("missing");
  EXPECT_EQ(os.str(), "NOT_FOUND: missing");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(NotFoundError("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MutableAccess) {
  StatusOr<std::string> v(std::string("abc"));
  v->push_back('d');
  EXPECT_EQ(*v, "abcd");
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(*v);
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrDeathTest, ConstructingFromOkStatusAborts) {
  EXPECT_DEATH(StatusOr<int>{OkStatus()},
               "StatusOr<T> constructed from an OK Status");
}

TEST(StatusOrDeathTest, ValueOnErrorPrintsHeldStatus) {
  StatusOr<int> v(NotFoundError("the missing thing"));
  EXPECT_DEATH(v.value(), "NOT_FOUND: the missing thing");
}

Status Fails() { return InvalidArgumentError("inner"); }
Status Succeeds() { return OkStatus(); }

Status Propagates(bool fail) {
  SKIMJOIN_RETURN_IF_ERROR(fail ? Fails() : Succeeds());
  return InternalError("fell through");
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagates(true).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Propagates(false).code(), StatusCode::kInternal);
}

StatusOr<int> MaybeValue(bool fail) {
  if (fail) return OutOfRangeError("no value");
  return 5;
}

Status Assigns(bool fail, int* out) {
  SKIMJOIN_ASSIGN_OR_RETURN(const int v, MaybeValue(fail));
  *out = v + 1;
  return OkStatus();
}

Status AssignsTwice(int* out) {
  SKIMJOIN_ASSIGN_OR_RETURN(const int a, MaybeValue(false));
  SKIMJOIN_ASSIGN_OR_RETURN(const int b, MaybeValue(false));
  *out = a + b;
  return OkStatus();
}

TEST(StatusMacrosTest, AssignOrReturnAssignsOnOk) {
  int out = 0;
  SKIMJOIN_CHECK_OK(Assigns(false, &out));
  EXPECT_EQ(out, 6);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  EXPECT_EQ(Assigns(true, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(out, 0);
}

TEST(StatusMacrosTest, AssignOrReturnTwiceInOneScope) {
  int out = 0;
  SKIMJOIN_CHECK_OK(AssignsTwice(&out));
  EXPECT_EQ(out, 10);
}

TEST(StatusMacrosTest, AssignOrReturnMovesValue) {
  auto f = []() -> StatusOr<std::unique_ptr<int>> {
    return std::make_unique<int>(9);
  };
  auto g = [&]() -> Status {
    SKIMJOIN_ASSIGN_OR_RETURN(std::unique_ptr<int> p, f());
    EXPECT_EQ(*p, 9);
    return OkStatus();
  };
  SKIMJOIN_CHECK_OK(g());
}

TEST(CheckMacrosTest, PassingChecksDoNothing) {
  SKIMJOIN_CHECK(true);
  SKIMJOIN_CHECK_EQ(1, 1);
  SKIMJOIN_CHECK_NE(1, 2);
  SKIMJOIN_CHECK_LT(1, 2);
  SKIMJOIN_CHECK_LE(2, 2);
  SKIMJOIN_CHECK_GT(3, 2);
  SKIMJOIN_CHECK_GE(3, 3);
  SKIMJOIN_CHECK_OK(OkStatus());
}

TEST(CheckMacrosDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(SKIMJOIN_CHECK(1 == 2) << "context " << 99, "context 99");
}

TEST(CheckMacrosDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(SKIMJOIN_CHECK_OK(IoError("disk gone")), "disk gone");
}

}  // namespace
}  // namespace skimjoin
