// Recovery torture tests for Engine::SaveCheckpoint / RestoreCheckpoint:
// byte-level truncation and corruption sweeps over a real checkpoint file
// (restore must fail cleanly — never abort, never silently answer wrong),
// crash-during-save fault injection proving an existing checkpoint is never
// clobbered, partial recovery, and a full round-trip equivalence test where
// a restored engine must answer every query bit-identically to an engine
// that never stopped.

#include <cstdint>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "query/engine.h"
#include "stream/zipf.h"
#include "util/durable_file.h"
#include "util/failpoint.h"
#include "util/random.h"
#include "util/status.h"

namespace skimjoin {
namespace query {
namespace {

std::string TempPath(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "checkpoint_" + info->name() + "_" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

void ExpectEmpty(const Engine& engine) {
  EXPECT_EQ(engine.num_streams(), 0u);
  EXPECT_EQ(engine.num_relations(), 0u);
  EXPECT_EQ(engine.num_queries(), 0u);
}

// Byte offsets of every frame boundary in a durable file: after the magic,
// and after each section frame (including the end marker). Lets the torture
// tests cut exactly at section boundaries — the truncation a CRC alone
// cannot catch.
std::vector<size_t> FrameBoundaries(const std::string& bytes) {
  std::vector<size_t> boundaries;
  size_t offset = 20;  // "skimjoin.durable v1\n"
  boundaries.push_back(offset);
  const auto u32 = [&](size_t at) {
    return static_cast<uint32_t>(static_cast<unsigned char>(bytes[at])) |
           static_cast<uint32_t>(static_cast<unsigned char>(bytes[at + 1]))
               << 8 |
           static_cast<uint32_t>(static_cast<unsigned char>(bytes[at + 2]))
               << 16 |
           static_cast<uint32_t>(static_cast<unsigned char>(bytes[at + 3]))
               << 24;
  };
  while (offset + 12 <= bytes.size()) {
    const uint64_t name_len = u32(offset);
    const uint64_t payload_len = u32(offset + 4);
    offset += 12 + name_len + payload_len;
    if (offset > bytes.size()) break;
    boundaries.push_back(offset);
  }
  return boundaries;
}

// --- a compact engine for the byte-sweep torture tests ---------------------

struct SmallIds {
  QueryId frequency = 0;
  QueryId quantile = 0;
  QueryId range_sum = 0;
};

SmallIds BuildSmallEngine(Engine* engine) {
  SmallIds ids;
  SKIMJOIN_CHECK_OK(engine->RegisterStream({"s", 1u << 8}).status());

  FrequencyQuerySpec frequency;
  frequency.stream = "s";
  frequency.space_counters = 64;
  frequency.num_tables = 4;
  frequency.use_dyadic = false;
  auto fq = engine->AddFrequencyQuery(frequency, 11);
  SKIMJOIN_CHECK_OK(fq.status());
  ids.frequency = *fq;

  QuantileQuerySpec quantile;
  quantile.stream = "s";
  quantile.epsilon = 0.05;
  auto qq = engine->AddQuantileQuery(quantile);
  SKIMJOIN_CHECK_OK(qq.status());
  ids.quantile = *qq;

  RangeSumQuerySpec range_sum;
  range_sum.stream = "s";
  range_sum.coefficient_budget = 16;
  auto rq = engine->AddRangeSumQuery(range_sum);
  SKIMJOIN_CHECK_OK(rq.status());
  ids.range_sum = *rq;

  Rng rng(7);
  stream::ZipfDistribution zipf(1u << 8, 1.0);
  for (const stream::StreamElement& e : zipf.GenerateElements(300, &rng)) {
    SKIMJOIN_CHECK_OK(engine->Update(
        "s", StreamUpdate{e.value, e.weight, 0}));
  }
  return ids;
}

// --- torture: truncation ---------------------------------------------------

TEST(CheckpointTortureTest, TruncationAtEveryByteFailsCleanly) {
  Engine engine;
  BuildSmallEngine(&engine);
  const std::string path = TempPath("full");
  ASSERT_TRUE(engine.SaveCheckpoint(path, {{"note", "torture"}}).ok());
  const std::string bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 100u);

  const std::string truncated_path = TempPath("truncated");
  for (size_t length = 0; length < bytes.size(); ++length) {
    WriteAll(truncated_path, bytes.substr(0, length));
    Engine restored;
    StatusOr<RestoreReport> report = restored.RestoreCheckpoint(truncated_path);
    EXPECT_FALSE(report.ok()) << "truncation to " << length
                              << " bytes was not detected";
    ExpectEmpty(restored);
  }

  // The untouched file still restores — nothing above damaged it.
  Engine restored;
  ASSERT_TRUE(restored.RestoreCheckpoint(path).ok());
  EXPECT_EQ(restored.num_queries(), 3u);
}

TEST(CheckpointTortureTest, TruncationAtEverySectionBoundaryFailsCleanly) {
  Engine engine;
  BuildSmallEngine(&engine);
  const std::string path = TempPath("full");
  ASSERT_TRUE(engine.SaveCheckpoint(path, {{"note", "torture"}}).ok());
  const std::string bytes = ReadAll(path);

  // manifest + meta + 3 query sections + end marker ⇒ 6 frames, 7 boundaries.
  const std::vector<size_t> boundaries = FrameBoundaries(bytes);
  ASSERT_EQ(boundaries.size(), 7u);
  ASSERT_EQ(boundaries.back(), bytes.size());

  const std::string truncated_path = TempPath("truncated");
  for (size_t i = 0; i + 1 < boundaries.size(); ++i) {
    WriteAll(truncated_path, bytes.substr(0, boundaries[i]));
    Engine restored;
    StatusOr<RestoreReport> report = restored.RestoreCheckpoint(truncated_path);
    EXPECT_FALSE(report.ok())
        << "truncation at frame boundary " << boundaries[i]
        << " looked like a complete checkpoint";
    ExpectEmpty(restored);
  }
}

// --- torture: corruption ---------------------------------------------------

TEST(CheckpointTortureTest, BitFlipAtEveryByteFailsCleanly) {
  Engine engine;
  BuildSmallEngine(&engine);
  const std::string path = TempPath("full");
  ASSERT_TRUE(engine.SaveCheckpoint(path, {{"note", "torture"}}).ok());
  const std::string bytes = ReadAll(path);

  const std::string corrupt_path = TempPath("corrupt");
  for (size_t offset = 0; offset < bytes.size(); ++offset) {
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0xff);
    WriteAll(corrupt_path, corrupt);
    Engine restored;
    StatusOr<RestoreReport> report = restored.RestoreCheckpoint(corrupt_path);
    EXPECT_FALSE(report.ok()) << "byte flip at offset " << offset
                              << " was not detected";
    ExpectEmpty(restored);
  }

  // The previous good checkpoint still loads after the whole sweep.
  Engine restored;
  ASSERT_TRUE(restored.RestoreCheckpoint(path).ok());
  EXPECT_EQ(restored.num_queries(), 3u);
}

// --- crash-during-save fault injection -------------------------------------

TEST(CheckpointCrashTest, CrashDuringSaveNeverClobbersOldCheckpoint) {
  const std::string path = TempPath("ckpt");

  Engine engine;
  const SmallIds ids = BuildSmallEngine(&engine);
  ASSERT_TRUE(engine.SaveCheckpoint(path).ok());
  const std::string good_bytes = ReadAll(path);
  const StatusOr<uint64_t> good_median = engine.AnswerQuantile(ids.quantile,
                                                               0.5);
  ASSERT_TRUE(good_median.ok());

  // Mutate the engine so the attempted second checkpoint differs, then
  // crash the save at every stage of the write path in turn.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine.Update("s", StreamUpdate{uint64_t(i % 251), 1, 0}).ok());
  }
  const char* kCrashPoints[] = {"durable:open-temp", "durable:append",
                                "durable:fsync", "durable:rename",
                                "checkpoint:after-header"};
  for (const char* point : kCrashPoints) {
    failpoint::Spec spec;
    spec.mode = failpoint::Mode::kCrash;
    failpoint::ScopedFailpoint guard(point, spec);
    const Status crashed = engine.SaveCheckpoint(path);
    ASSERT_FALSE(crashed.ok()) << point;
    EXPECT_TRUE(failpoint::IsSimulatedCrash(crashed)) << point;
    EXPECT_EQ(ReadAll(path), good_bytes)
        << "crash at " << point << " altered the committed checkpoint";
  }

  // Torn write mid-save: same guarantee.
  {
    failpoint::Spec spec;
    spec.mode = failpoint::Mode::kTornWrite;
    spec.torn_bytes = 5;
    spec.skip = 2;
    failpoint::ScopedFailpoint guard("durable:append", spec);
    const Status torn = engine.SaveCheckpoint(path);
    ASSERT_FALSE(torn.ok());
    EXPECT_EQ(ReadAll(path), good_bytes);
  }

  // Plain I/O error on fsync: save fails, old checkpoint intact.
  {
    failpoint::Spec spec;
    failpoint::ScopedFailpoint guard("durable:fsync", spec);
    const Status failed = engine.SaveCheckpoint(path);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(ReadAll(path), good_bytes);
  }

  // The surviving checkpoint restores the ORIGINAL state.
  Engine restored;
  ASSERT_TRUE(restored.RestoreCheckpoint(path).ok());
  const StatusOr<uint64_t> restored_median =
      restored.AnswerQuantile(ids.quantile, 0.5);
  ASSERT_TRUE(restored_median.ok());
  EXPECT_EQ(*restored_median, *good_median);

  // And with the failpoints gone, a clean save of the new state succeeds.
  ASSERT_TRUE(engine.SaveCheckpoint(path).ok());
  Engine restored_v2;
  ASSERT_TRUE(restored_v2.RestoreCheckpoint(path).ok());
  StatusOr<int64_t> count = restored_v2.StreamElementCount("s");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 350);
}

// --- partial restore -------------------------------------------------------

TEST(CheckpointPartialTest, AllowPartialRecoversEveryIntactSection) {
  Engine engine;
  const SmallIds ids = BuildSmallEngine(&engine);
  const std::string path = TempPath("ckpt");
  ASSERT_TRUE(engine.SaveCheckpoint(path, {{"tag", "v1"}}).ok());
  const std::string bytes = ReadAll(path);

  // Cut just after the second query section: manifest, meta, and the first
  // two query sections survive; the last query's synopsis is gone.
  const std::vector<size_t> boundaries = FrameBoundaries(bytes);
  ASSERT_EQ(boundaries.size(), 7u);
  const std::string cut_path = TempPath("cut");
  WriteAll(cut_path, bytes.substr(0, boundaries[4]));

  // Strict restore refuses the damaged file outright.
  {
    Engine strict;
    EXPECT_FALSE(strict.RestoreCheckpoint(cut_path).ok());
    ExpectEmpty(strict);
  }

  // Partial restore recovers everything that is intact and itemizes the
  // loss: exactly one query, restored empty rather than dropped.
  Engine partial;
  StatusOr<RestoreReport> report =
      partial.RestoreCheckpoint(cut_path, RestoreOptions{.allow_partial = true});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->metadata.at("tag"), "v1");
  ASSERT_EQ(report->lost.size(), 1u);
  EXPECT_EQ(report->lost[0].query, ids.range_sum);
  EXPECT_EQ(partial.num_queries(), 3u);

  // The intact queries answer exactly as in the original engine.
  for (uint64_t v : {0u, 1u, 5u, 40u}) {
    EXPECT_EQ(*partial.AnswerPointFrequency(ids.frequency, v),
              *engine.AnswerPointFrequency(ids.frequency, v));
  }
  EXPECT_EQ(*partial.AnswerQuantile(ids.quantile, 0.5),
            *engine.AnswerQuantile(ids.quantile, 0.5));
  // The lost query still exists and still answers — from an empty synopsis.
  StatusOr<double> empty_sum = partial.AnswerRangeSum(ids.range_sum, 0, 255);
  ASSERT_TRUE(empty_sum.ok());
  EXPECT_EQ(*empty_sum, 0.0);
}

// --- guardrails ------------------------------------------------------------

TEST(CheckpointTest, RestoreRequiresEmptyEngine) {
  Engine engine;
  BuildSmallEngine(&engine);
  const std::string path = TempPath("ckpt");
  ASSERT_TRUE(engine.SaveCheckpoint(path).ok());

  Engine occupied;
  ASSERT_TRUE(occupied.RegisterStream({"other", 16}).ok());
  StatusOr<RestoreReport> report = occupied.RestoreCheckpoint(path);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  // The occupied engine was not cleared.
  EXPECT_EQ(occupied.num_streams(), 1u);

  occupied.Clear();
  ExpectEmpty(occupied);
  EXPECT_TRUE(occupied.RestoreCheckpoint(path).ok());
}

TEST(CheckpointTest, StrictRestoreRefusesUnsupportedQueries) {
  Engine engine;
  ASSERT_TRUE(engine.RegisterRelation({"r0", 1, 64}).ok());
  ASSERT_TRUE(engine.RegisterRelation({"r1", 2, 64}).ok());
  ASSERT_TRUE(engine.RegisterRelation({"r2", 1, 64}).ok());
  ChainJoinQuerySpec chain;
  chain.relations = {"r0", "r1", "r2"};
  ASSERT_TRUE(engine.AddChainJoinQuery(chain, 5).ok());
  const std::string path = TempPath("ckpt");
  ASSERT_TRUE(engine.SaveCheckpoint(path).ok());

  Engine strict;
  StatusOr<RestoreReport> report = strict.RestoreCheckpoint(path);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnimplemented);
  ExpectEmpty(strict);

  Engine partial;
  StatusOr<RestoreReport> partial_report =
      partial.RestoreCheckpoint(path, RestoreOptions{.allow_partial = true});
  ASSERT_TRUE(partial_report.ok());
  ASSERT_EQ(partial_report->lost.size(), 1u);
  EXPECT_EQ(partial_report->lost[0].kind, "chain");
  EXPECT_EQ(partial.num_queries(), 1u);
}

// --- full round-trip equivalence -------------------------------------------

struct FullIds {
  QueryId skimmed_join = 0;
  QueryId agms_join = 0;
  QueryId hash_join = 0;
  QueryId countmin_join = 0;
  QueryId self_join = 0;
  QueryId sampling_join = 0;
  QueryId frequency = 0;
  QueryId distinct = 0;
  QueryId topk = 0;
  QueryId quantile = 0;
  QueryId range_sum = 0;
  QueryId chain = 0;
};

constexpr uint64_t kDomain = 1u << 10;

FullIds BuildFullEngine(Engine* engine) {
  FullIds ids;
  SKIMJOIN_CHECK_OK(engine->RegisterStream({"left", kDomain}).status());
  SKIMJOIN_CHECK_OK(engine->RegisterStream({"right", kDomain}).status());
  SKIMJOIN_CHECK_OK(engine->RegisterRelation({"r0", 1, 64}).status());
  SKIMJOIN_CHECK_OK(engine->RegisterRelation({"r1", 2, 64}).status());
  SKIMJOIN_CHECK_OK(engine->RegisterRelation({"r2", 1, 64}).status());

  const auto join_with = [&](core::EstimatorKind kind) {
    JoinQuerySpec spec;
    spec.left_stream = "left";
    spec.right_stream = "right";
    spec.estimator.kind = kind;
    spec.estimator.space_counters = 512;
    spec.left_predicate = RangePredicate{0, kDomain - 5};
    auto id = engine->AddJoinQuery(spec, 21);
    SKIMJOIN_CHECK_OK(id.status());
    return *id;
  };
  ids.skimmed_join = join_with(core::EstimatorKind::kSkimmedSketch);
  ids.agms_join = join_with(core::EstimatorKind::kAgms);
  ids.hash_join = join_with(core::EstimatorKind::kHashSketch);
  ids.countmin_join = join_with(core::EstimatorKind::kCountMin);
  ids.sampling_join = join_with(core::EstimatorKind::kSampling);

  SelfJoinQuerySpec self_join;
  self_join.stream = "left";
  self_join.estimator.kind = core::EstimatorKind::kSkimmedSketch;
  self_join.estimator.space_counters = 512;
  auto sj = engine->AddSelfJoinQuery(self_join, 22);
  SKIMJOIN_CHECK_OK(sj.status());
  ids.self_join = *sj;

  FrequencyQuerySpec frequency;
  frequency.stream = "left";
  frequency.space_counters = 1024;
  frequency.num_tables = 4;
  frequency.use_dyadic = true;
  auto fq = engine->AddFrequencyQuery(frequency, 23);
  SKIMJOIN_CHECK_OK(fq.status());
  ids.frequency = *fq;

  DistinctCountQuerySpec distinct;
  distinct.stream = "right";
  distinct.num_maps = 32;
  auto dq = engine->AddDistinctCountQuery(distinct, 24);
  SKIMJOIN_CHECK_OK(dq.status());
  ids.distinct = *dq;

  TopKQuerySpec topk;
  topk.stream = "left";
  topk.k = 8;
  topk.space_counters = 256;
  topk.num_tables = 4;
  auto tq = engine->AddTopKQuery(topk, 25);
  SKIMJOIN_CHECK_OK(tq.status());
  ids.topk = *tq;

  QuantileQuerySpec quantile;
  quantile.stream = "right";
  quantile.epsilon = 0.02;
  quantile.predicate = RangePredicate{1, kDomain - 1};
  auto qq = engine->AddQuantileQuery(quantile);
  SKIMJOIN_CHECK_OK(qq.status());
  ids.quantile = *qq;

  RangeSumQuerySpec range_sum;
  range_sum.stream = "left";
  range_sum.coefficient_budget = 64;
  auto rq = engine->AddRangeSumQuery(range_sum);
  SKIMJOIN_CHECK_OK(rq.status());
  ids.range_sum = *rq;

  ChainJoinQuerySpec chain;
  chain.relations = {"r0", "r1", "r2"};
  chain.method = ChainJoinQuerySpec::Method::kHashSketch;
  auto cq = engine->AddChainJoinQuery(chain, 26);
  SKIMJOIN_CHECK_OK(cq.status());
  ids.chain = *cq;
  return ids;
}

void Feed(Engine* engine, const std::vector<stream::StreamElement>& left,
          const std::vector<stream::StreamElement>& right) {
  for (const stream::StreamElement& e : left) {
    SKIMJOIN_CHECK_OK(engine->Update(
        "left", StreamUpdate{e.value, e.weight, int64_t(e.value % 7)}));
  }
  for (const stream::StreamElement& e : right) {
    SKIMJOIN_CHECK_OK(engine->Update(
        "right", StreamUpdate{e.value, e.weight, int64_t(e.value % 5)}));
  }
}

// Every Answer* of the two engines must agree EXACTLY (bit-identical
// doubles) for the given queries.
void ExpectIdenticalAnswers(Engine& a, Engine& b, const FullIds& ids) {
  EXPECT_EQ(*a.AnswerJoin(ids.skimmed_join), *b.AnswerJoin(ids.skimmed_join));
  EXPECT_EQ(*a.AnswerJoin(ids.agms_join), *b.AnswerJoin(ids.agms_join));
  EXPECT_EQ(*a.AnswerJoin(ids.hash_join), *b.AnswerJoin(ids.hash_join));
  EXPECT_EQ(*a.AnswerJoin(ids.countmin_join), *b.AnswerJoin(ids.countmin_join));
  EXPECT_EQ(*a.AnswerJoin(ids.self_join), *b.AnswerJoin(ids.self_join));
  for (uint64_t v : {0u, 1u, 3u, 17u, 100u, 1000u}) {
    EXPECT_EQ(*a.AnswerPointFrequency(ids.frequency, v),
              *b.AnswerPointFrequency(ids.frequency, v))
        << "value " << v;
  }
  const StatusOr<core::DenseFrequencies> heavy_a =
      a.AnswerHeavyHitters(ids.frequency, 10);
  const StatusOr<core::DenseFrequencies> heavy_b =
      b.AnswerHeavyHitters(ids.frequency, 10);
  ASSERT_TRUE(heavy_a.ok());
  ASSERT_TRUE(heavy_b.ok());
  EXPECT_EQ(*heavy_a, *heavy_b);
  EXPECT_EQ(*a.AnswerDistinctCount(ids.distinct),
            *b.AnswerDistinctCount(ids.distinct));
  EXPECT_EQ(*a.AnswerTopK(ids.topk), *b.AnswerTopK(ids.topk));
  for (double phi : {0.1, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(*a.AnswerQuantile(ids.quantile, phi),
              *b.AnswerQuantile(ids.quantile, phi))
        << "phi " << phi;
  }
  EXPECT_EQ(*a.AnswerRangeSum(ids.range_sum, 0, kDomain - 1),
            *b.AnswerRangeSum(ids.range_sum, 0, kDomain - 1));
  EXPECT_EQ(*a.AnswerRangeSum(ids.range_sum, 5, 300),
            *b.AnswerRangeSum(ids.range_sum, 5, 300));
  EXPECT_EQ(*a.StreamElementCount("left"), *b.StreamElementCount("left"));
  EXPECT_EQ(*a.StreamElementCount("right"), *b.StreamElementCount("right"));
}

TEST(CheckpointEquivalenceTest, RestoredEngineAnswersBitIdentically) {
  Engine live;
  const FullIds ids = BuildFullEngine(&live);

  Rng rng(99);
  stream::ZipfDistribution zipf(kDomain, 1.0);
  const std::vector<stream::StreamElement> left_prefix =
      zipf.GenerateElements(3000, &rng);
  const std::vector<stream::StreamElement> right_prefix =
      zipf.GenerateElements(3000, &rng);
  Feed(&live, left_prefix, right_prefix);
  for (uint64_t t = 0; t < 200; ++t) {
    SKIMJOIN_CHECK_OK(live.UpdateRelation("r0", {t % 64}, 1));
    SKIMJOIN_CHECK_OK(live.UpdateRelation("r1", {t % 64, (t * 3) % 64}, 1));
    SKIMJOIN_CHECK_OK(live.UpdateRelation("r2", {(t * 3) % 64}, 1));
  }

  const std::string path = TempPath("ckpt");
  ASSERT_TRUE(
      live.SaveCheckpoint(path, {{"build", "test"}, {"epoch", "12"}}).ok());

  Engine restored;
  StatusOr<RestoreReport> report = restored.RestoreCheckpoint(
      path, RestoreOptions{.allow_partial = true});
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Exactly the sampling join and the chain join lose synopsis state — and
  // they are REPORTED, not silently skipped.
  std::set<QueryId> lost;
  for (const RestoreLoss& loss : report->lost) lost.insert(loss.query);
  EXPECT_EQ(lost, (std::set<QueryId>{ids.sampling_join, ids.chain}));
  EXPECT_EQ(report->metadata.at("build"), "test");
  EXPECT_EQ(report->metadata.at("epoch"), "12");
  EXPECT_EQ(restored.num_queries(), live.num_queries());
  EXPECT_EQ(restored.num_streams(), 2u);
  EXPECT_EQ(restored.num_relations(), 3u);

  // Identical right after restore...
  ExpectIdenticalAnswers(live, restored, ids);

  // ...and still identical after both engines ingest the same suffix,
  // including deletes: the restored synopses must CONTINUE exactly.
  std::vector<stream::StreamElement> left_suffix =
      zipf.GenerateElements(1500, &rng);
  std::vector<stream::StreamElement> right_suffix =
      zipf.GenerateElements(1500, &rng);
  for (size_t i = 0; i < left_suffix.size(); i += 10) {
    left_suffix[i].weight = -1;
  }
  Feed(&live, left_suffix, right_suffix);
  Feed(&restored, left_suffix, right_suffix);
  ExpectIdenticalAnswers(live, restored, ids);

  // The ingest statistics carried over and kept counting.
  const StatusOr<ingest::IngestStats> stats_live =
      live.StreamIngestStats("left");
  const StatusOr<ingest::IngestStats> stats_restored =
      restored.StreamIngestStats("left");
  ASSERT_TRUE(stats_live.ok());
  ASSERT_TRUE(stats_restored.ok());
  EXPECT_EQ(stats_live->elements_absorbed, stats_restored->elements_absorbed);

  // A re-checkpoint of the restored engine equals a re-checkpoint of the
  // live engine byte for byte — the strongest equivalence check available.
  const std::string live_again = TempPath("live2");
  const std::string restored_again = TempPath("restored2");
  ASSERT_TRUE(live.SaveCheckpoint(live_again).ok());
  ASSERT_TRUE(restored.SaveCheckpoint(restored_again).ok());
  const std::string live_bytes = ReadAll(live_again);
  const std::string restored_bytes = ReadAll(restored_again);
  // The sampling-join and chain sections differ (their state was lost), but
  // the manifests are identical.
  EXPECT_EQ(live_bytes.substr(0, 200), restored_bytes.substr(0, 200));
}

// The v2 manifest carries a counters-only metrics block: cumulative ingest
// counters AND any embedder-registered counters (e.g. the shell's command
// count) must survive a save/restore cycle.
TEST(CheckpointTest, MetricsCountersRoundTrip) {
  Engine engine;
  ASSERT_TRUE(
      engine.RegisterStream({.name = "f", .domain_size = 256}).ok());
  for (uint64_t v = 0; v < 40; ++v) {
    SKIMJOIN_CHECK_OK(engine.Update("f", {.value = v % 256}));
  }
  engine.metrics_registry().GetCounter("shell.commands")->Increment(17);

  const std::string path = TempPath("metrics");
  ASSERT_TRUE(engine.SaveCheckpoint(path).ok());

  Engine restored;
  ASSERT_TRUE(restored.RestoreCheckpoint(path, {}).ok());
  uint64_t shell_commands = 0, absorbed = 0;
  for (const auto& [name, value] : restored.MetricsSnapshot().counters) {
    if (name == "shell.commands") shell_commands = value;
    if (name == "ingest.f.elements_absorbed") absorbed = value;
  }
  EXPECT_EQ(shell_commands, 17u);
  EXPECT_EQ(absorbed, 40u);

  // And the restored counters keep counting from where they left off.
  SKIMJOIN_CHECK_OK(restored.Update("f", {.value = 1}));
  const StatusOr<ingest::IngestStats> stats =
      restored.StreamIngestStats("f");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->elements_absorbed, 41u);
}

}  // namespace
}  // namespace query
}  // namespace skimjoin
