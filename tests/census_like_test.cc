#include "stream/census_like.h"

#include "gtest/gtest.h"
#include "stream/exact.h"

namespace skimjoin {
namespace stream {
namespace {

CensusLikeGenerator::Options SmallOptions() {
  CensusLikeGenerator::Options options;
  options.domain_size = 1u << 12;
  options.num_records = 20000;
  return options;
}

TEST(CensusLikeTest, ProducesRequestedRecordCounts) {
  CensusLikeGenerator gen(SmallOptions(), 1);
  EXPECT_EQ(gen.GenerateWageStream().size(), 20000u);
  EXPECT_EQ(gen.GenerateOvertimeStream().size(), 20000u);
}

TEST(CensusLikeTest, ValuesStayInDomain) {
  CensusLikeGenerator gen(SmallOptions(), 2);
  for (const auto& e : gen.GenerateWageStream()) {
    EXPECT_LT(e.value, 1u << 12);
    EXPECT_EQ(e.weight, 1);
  }
  for (const auto& e : gen.GenerateOvertimeStream()) {
    EXPECT_LT(e.value, 1u << 12);
    EXPECT_EQ(e.weight, 1);
  }
}

TEST(CensusLikeTest, DeterministicBySeed) {
  CensusLikeGenerator a(SmallOptions(), 42);
  CensusLikeGenerator b(SmallOptions(), 42);
  EXPECT_EQ(a.GenerateWageStream(), b.GenerateWageStream());
  EXPECT_EQ(a.GenerateOvertimeStream(), b.GenerateOvertimeStream());
}

TEST(CensusLikeTest, DifferentSeedsDiffer) {
  CensusLikeGenerator a(SmallOptions(), 1);
  CensusLikeGenerator b(SmallOptions(), 2);
  EXPECT_NE(a.GenerateWageStream(), b.GenerateWageStream());
}

TEST(CensusLikeTest, OvertimeHasZeroSpike) {
  auto options = SmallOptions();
  options.zero_spike = 0.55;
  CensusLikeGenerator gen(options, 3);
  const auto overtime = gen.GenerateOvertimeStream();
  int64_t zeros = 0;
  for (const auto& e : overtime) zeros += (e.value == 0);
  const double fraction =
      static_cast<double>(zeros) / static_cast<double>(overtime.size());
  // At least the configured spike (plus whatever the body contributes at 0).
  EXPECT_GT(fraction, 0.50);
  EXPECT_LT(fraction, 0.70);
}

TEST(CensusLikeTest, WageDistributionIsSpiky) {
  CensusLikeGenerator gen(SmallOptions(), 4);
  const FrequencyVector fv = Materialize(gen.GenerateWageStream(), 1u << 12);
  // Round-number snapping should make multiples of 50 much heavier than
  // their neighbors on average.
  int64_t at_multiples = 0;
  int64_t at_neighbors = 0;
  for (uint64_t v = 50; v < 2000; v += 50) {
    at_multiples += fv.Get(v);
    at_neighbors += fv.Get(v + 1);
  }
  EXPECT_GT(at_multiples, 5 * at_neighbors);
}

TEST(CensusLikeTest, StreamsJoinNonTrivially) {
  CensusLikeGenerator gen(SmallOptions(), 5);
  const auto wage = gen.GenerateWageStream();
  const auto overtime = gen.GenerateOvertimeStream();
  const int64_t join = ExactJoinSize(wage, overtime, 1u << 12);
  EXPECT_GT(join, 0);
}

TEST(CensusLikeDeathTest, RejectsBadOptions) {
  CensusLikeGenerator::Options options = SmallOptions();
  options.domain_size = 8;
  EXPECT_DEATH(CensusLikeGenerator(options, 1), "");
  options = SmallOptions();
  options.zero_spike = 1.5;
  EXPECT_DEATH(CensusLikeGenerator(options, 1), "");
}

}  // namespace
}  // namespace stream
}  // namespace skimjoin
