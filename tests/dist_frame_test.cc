// Wire-layer tests for dist/frame: encode/decode roundtrips, corruption
// rejection (every-byte bit-flip and every-prefix truncation), channel I/O
// over socketpairs, deadline bounds, and the dist:* failpoints.

#include "dist/frame.h"

#include <sys/socket.h>

#include <chrono>
#include <string>
#include <utility>

#include "gtest/gtest.h"
#include "util/failpoint.h"

namespace skimjoin {
namespace dist {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

std::pair<FrameChannel, FrameChannel> LocalPair() {
  int fds[2] = {-1, -1};
  EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  return {FrameChannel(fds[0]), FrameChannel(fds[1])};
}

TEST(FrameCodec, RoundTripsTypeAndPayload) {
  const std::string payload = "hello skimmed sketches \x01\x00\xff";
  const std::string wire = EncodeFrame(42, payload);
  ASSERT_EQ(kFrameHeaderBytes + payload.size(), wire.size());

  size_t consumed = 0;
  StatusOr<std::optional<Frame>> decoded = TryDecodeFrame(wire, &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(decoded->has_value());
  EXPECT_EQ(42u, (*decoded)->type);
  EXPECT_EQ(payload, (*decoded)->payload);
  EXPECT_EQ(wire.size(), consumed);
}

TEST(FrameCodec, RoundTripsEmptyPayload) {
  const std::string wire = EncodeFrame(7, "");
  size_t consumed = 0;
  StatusOr<std::optional<Frame>> decoded = TryDecodeFrame(wire, &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(decoded->has_value());
  EXPECT_EQ(7u, (*decoded)->type);
  EXPECT_TRUE((*decoded)->payload.empty());
}

TEST(FrameCodec, DecodesBackToBackFrames) {
  const std::string wire = EncodeFrame(1, "first") + EncodeFrame(2, "second");
  size_t consumed = 0;
  StatusOr<std::optional<Frame>> first = TryDecodeFrame(wire, &consumed);
  ASSERT_TRUE(first.ok() && first->has_value());
  EXPECT_EQ("first", (*first)->payload);

  StatusOr<std::optional<Frame>> second =
      TryDecodeFrame(std::string_view(wire).substr(consumed), &consumed);
  ASSERT_TRUE(second.ok() && second->has_value());
  EXPECT_EQ(2u, (*second)->type);
  EXPECT_EQ("second", (*second)->payload);
}

TEST(FrameCodec, EveryTruncationIsIncompleteNeverGarbage) {
  const std::string wire = EncodeFrame(9, "truncate me byte by byte");
  for (size_t len = 0; len < wire.size(); ++len) {
    size_t consumed = 1234;
    StatusOr<std::optional<Frame>> decoded =
        TryDecodeFrame(std::string_view(wire).substr(0, len), &consumed);
    ASSERT_TRUE(decoded.ok()) << "prefix " << len << ": " << decoded.status();
    EXPECT_FALSE(decoded->has_value()) << "prefix " << len;
    EXPECT_EQ(0u, consumed) << "prefix " << len;
  }
}

TEST(FrameCodec, EveryBitFlipIsRejected) {
  const std::string wire = EncodeFrame(3, "flip every byte of this frame");
  for (size_t i = 0; i < wire.size(); ++i) {
    for (const char flip : {char(0x01), char(0x80), char(0xff)}) {
      std::string corrupt = wire;
      corrupt[i] = static_cast<char>(corrupt[i] ^ flip);
      size_t consumed = 0;
      StatusOr<std::optional<Frame>> decoded =
          TryDecodeFrame(corrupt, &consumed);
      // A corrupted frame must never decode: either the decoder rejects it
      // outright (bad magic / bad length / CRC mismatch) or — when the flip
      // inflated the length word — it reports "incomplete" and keeps
      // waiting. It may not hand back a Frame.
      EXPECT_FALSE(decoded.ok() && decoded->has_value())
          << "byte " << i << " flip " << static_cast<int>(flip);
    }
  }
}

TEST(FrameCodec, OversizedLengthRejectedBeforeAllocation) {
  std::string wire = EncodeFrame(1, "x");
  // Stamp a payload length far past the cap into bytes 8..11.
  const uint32_t huge = static_cast<uint32_t>(kMaxFramePayload) + 1;
  for (int b = 0; b < 4; ++b) {
    wire[8 + b] = static_cast<char>((huge >> (8 * b)) & 0xff);
  }
  size_t consumed = 0;
  StatusOr<std::optional<Frame>> decoded = TryDecodeFrame(wire, &consumed);
  EXPECT_FALSE(decoded.ok());
}

TEST(FrameCodec, BadMagicRejectedEvenOnPartialHeader) {
  // Two bytes only, and the second already disagrees with 'SKJF': the
  // decoder must poison the connection now, not wait for more bytes.
  const std::string junk = "XY";
  size_t consumed = 0;
  StatusOr<std::optional<Frame>> decoded = TryDecodeFrame(junk, &consumed);
  EXPECT_FALSE(decoded.ok());
}

// --- frame version 2 (trace context header) ---------------------------------

TEST(FrameCodecV2, AllZeroTraceContextEmitsV1) {
  // An untraced fleet must produce byte-identical wire traffic to the
  // v1-only protocol.
  EXPECT_EQ(EncodeFrame(5, "payload"), EncodeFrame(5, "payload", 0, 0, 0));
  const std::string wire = EncodeFrame(5, "payload", 0, 0, 0);
  ASSERT_GE(wire.size(), 4u);
  EXPECT_EQ(wire.substr(0, 4), "SKJF");
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + 7);
}

TEST(FrameCodecV2, RoundTripsTraceContext) {
  const std::string payload = "traced \x00\xff payload";
  const std::string wire =
      EncodeFrame(42, payload, 0x1111222233334444ull, 0x5555666677778888ull,
                  0x9999aaaabbbbccccull);
  EXPECT_EQ(wire.substr(0, 4), "SKJ2");
  ASSERT_EQ(wire.size(), kFrameHeaderBytesV2 + payload.size());

  size_t consumed = 0;
  StatusOr<std::optional<Frame>> decoded = TryDecodeFrame(wire, &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(decoded->has_value());
  EXPECT_EQ(42u, (*decoded)->type);
  EXPECT_EQ(payload, (*decoded)->payload);
  EXPECT_EQ(0x1111222233334444ull, (*decoded)->trace_id);
  EXPECT_EQ(0x5555666677778888ull, (*decoded)->span_id);
  EXPECT_EQ(0x9999aaaabbbbccccull, (*decoded)->parent_span_id);
  EXPECT_EQ(wire.size(), consumed);
}

TEST(FrameCodecV2, AnyNonZeroIdUpgradesToV2) {
  // A root span has parent 0 and may have only trace/span set; any single
  // non-zero id must ride the v2 header rather than being dropped.
  const std::string wire = EncodeFrame(1, "x", 77, 0, 0);
  EXPECT_EQ(wire.substr(0, 4), "SKJ2");
  size_t consumed = 0;
  StatusOr<std::optional<Frame>> decoded = TryDecodeFrame(wire, &consumed);
  ASSERT_TRUE(decoded.ok() && decoded->has_value());
  EXPECT_EQ(77u, (*decoded)->trace_id);
  EXPECT_EQ(0u, (*decoded)->span_id);
}

TEST(FrameCodecV2, DecodesInterleavedV1AndV2Frames) {
  // A mixed stream — traced and untraced peers sharing one connection —
  // decodes frame by frame with the right context on each.
  const std::string wire = EncodeFrame(1, "plain") +
                           EncodeFrame(2, "traced", 9, 8, 7) +
                           EncodeFrame(3, "plain again");
  std::string_view rest = wire;
  size_t consumed = 0;

  StatusOr<std::optional<Frame>> first = TryDecodeFrame(rest, &consumed);
  ASSERT_TRUE(first.ok() && first->has_value());
  EXPECT_EQ(0u, (*first)->trace_id);
  rest = rest.substr(consumed);

  StatusOr<std::optional<Frame>> second = TryDecodeFrame(rest, &consumed);
  ASSERT_TRUE(second.ok() && second->has_value());
  EXPECT_EQ(9u, (*second)->trace_id);
  EXPECT_EQ(8u, (*second)->span_id);
  EXPECT_EQ(7u, (*second)->parent_span_id);
  rest = rest.substr(consumed);

  StatusOr<std::optional<Frame>> third = TryDecodeFrame(rest, &consumed);
  ASSERT_TRUE(third.ok() && third->has_value());
  EXPECT_EQ(3u, (*third)->type);
  EXPECT_EQ(0u, (*third)->trace_id);
}

TEST(FrameCodecV2, EveryTruncationIsIncompleteNeverGarbage) {
  const std::string wire = EncodeFrame(9, "truncate the v2 frame", 1, 2, 3);
  for (size_t len = 0; len < wire.size(); ++len) {
    size_t consumed = 1234;
    StatusOr<std::optional<Frame>> decoded =
        TryDecodeFrame(std::string_view(wire).substr(0, len), &consumed);
    ASSERT_TRUE(decoded.ok()) << "prefix " << len << ": " << decoded.status();
    EXPECT_FALSE(decoded->has_value()) << "prefix " << len;
    EXPECT_EQ(0u, consumed) << "prefix " << len;
  }
}

TEST(FrameCodecV2, EveryBitFlipIsRejected) {
  // The CRC must cover the trace ids too: a flipped bit anywhere in the
  // 40-byte header or payload may not decode to a Frame.
  const std::string wire = EncodeFrame(3, "flip the traced frame", 1, 2, 3);
  for (size_t i = 0; i < wire.size(); ++i) {
    for (const char flip : {char(0x01), char(0x80), char(0xff)}) {
      std::string corrupt = wire;
      corrupt[i] = static_cast<char>(corrupt[i] ^ flip);
      size_t consumed = 0;
      StatusOr<std::optional<Frame>> decoded =
          TryDecodeFrame(corrupt, &consumed);
      EXPECT_FALSE(decoded.ok() && decoded->has_value())
          << "byte " << i << " flip " << static_cast<int>(flip);
    }
  }
}

TEST(FrameChannelTest, SendCarriesTraceContextEndToEnd) {
  auto [left, right] = LocalPair();
  const Deadline deadline = DeadlineAfter(milliseconds(2000));
  ASSERT_TRUE(left.Send(5, "traced ping", deadline, 11, 22, 33).ok());
  StatusOr<Frame> got = right.Receive(deadline);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(5u, got->type);
  EXPECT_EQ("traced ping", got->payload);
  EXPECT_EQ(11u, got->trace_id);
  EXPECT_EQ(22u, got->span_id);
  EXPECT_EQ(33u, got->parent_span_id);
}

TEST(FrameChannelTest, SendReceiveRoundTrip) {
  auto [left, right] = LocalPair();
  const Deadline deadline = DeadlineAfter(milliseconds(2000));
  ASSERT_TRUE(left.Send(5, "ping payload", deadline).ok());
  StatusOr<Frame> got = right.Receive(deadline);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(5u, got->type);
  EXPECT_EQ("ping payload", got->payload);
}

TEST(FrameChannelTest, BuffersMultipleFramesAcrossOneRead) {
  auto [left, right] = LocalPair();
  const Deadline deadline = DeadlineAfter(milliseconds(2000));
  ASSERT_TRUE(left.Send(1, "a", deadline).ok());
  ASSERT_TRUE(left.Send(2, "bb", deadline).ok());
  ASSERT_TRUE(left.Send(3, "ccc", deadline).ok());
  for (uint32_t expected = 1; expected <= 3; ++expected) {
    StatusOr<Frame> got = right.Receive(deadline);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(expected, got->type);
    EXPECT_EQ(std::string(expected, static_cast<char>('a' + expected - 1)),
              got->payload);
  }
}

TEST(FrameChannelTest, ReceiveDeadlineIsBounded) {
  auto [left, right] = LocalPair();
  (void)left;
  const auto start = steady_clock::now();
  StatusOr<Frame> got = right.Receive(DeadlineAfter(milliseconds(50)));
  const auto elapsed = steady_clock::now() - start;
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(IsDeadlineExceeded(got.status())) << got.status();
  // Generous upper bound: the point is that it returns, not spins forever.
  EXPECT_LT(elapsed, milliseconds(2000));
}

TEST(FrameChannelTest, PeerCloseSurfacesAsConnectionClosed) {
  auto [left, right] = LocalPair();
  left.Close();
  StatusOr<Frame> got = right.Receive(DeadlineAfter(milliseconds(500)));
  ASSERT_FALSE(got.ok());
  EXPECT_NE(std::string::npos, got.status().message().find("closed"))
      << got.status();
}

TEST(FrameChannelTest, SendFailpointTearsTheFrame) {
  auto [left, right] = LocalPair();
  failpoint::Spec spec;
  spec.mode = failpoint::Mode::kTornWrite;
  spec.torn_bytes = 4;  // magic only — receiver starves mid-header
  failpoint::ScopedFailpoint guard("dist:send", spec);
  EXPECT_FALSE(left.Send(5, "payload", DeadlineAfter(milliseconds(500))).ok());
  // The receiver holds a valid prefix, so it waits (deadline) rather than
  // decoding garbage.
  StatusOr<Frame> got = right.Receive(DeadlineAfter(milliseconds(50)));
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(IsDeadlineExceeded(got.status())) << got.status();
}

TEST(FrameChannelTest, CrcFailpointIsCaughtByReceiver) {
  auto [left, right] = LocalPair();
  {
    failpoint::Spec spec;
    spec.mode = failpoint::Mode::kError;
    failpoint::ScopedFailpoint guard("dist:frame-crc", spec);
    // The sender does not fail — the frame goes out whole, corrupted.
    ASSERT_TRUE(
        left.Send(5, "payload", DeadlineAfter(milliseconds(500))).ok());
  }
  StatusOr<Frame> got = right.Receive(DeadlineAfter(milliseconds(500)));
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, got.status().code()) << got.status();
}

TEST(FrameChannelTest, RecvFailpointInjectsAtReceiveEntry) {
  auto [left, right] = LocalPair();
  ASSERT_TRUE(left.Send(5, "payload", DeadlineAfter(milliseconds(500))).ok());
  failpoint::Spec spec;
  spec.mode = failpoint::Mode::kError;
  failpoint::ScopedFailpoint guard("dist:recv", spec);
  EXPECT_FALSE(right.Receive(DeadlineAfter(milliseconds(500))).ok());
}

TEST(ListenerTest, AcceptAndExchange) {
  const std::string path = ::testing::TempDir() + "/dist_frame_listener.sock";
  StatusOr<Listener> listener = Listener::Create(path);
  ASSERT_TRUE(listener.ok()) << listener.status();

  StatusOr<FrameChannel> client =
      ConnectUnix(path, DeadlineAfter(milliseconds(2000)));
  ASSERT_TRUE(client.ok()) << client.status();
  StatusOr<FrameChannel> served =
      listener->Accept(DeadlineAfter(milliseconds(2000)));
  ASSERT_TRUE(served.ok()) << served.status();

  ASSERT_TRUE(
      client->Send(11, "over the socket", DeadlineAfter(milliseconds(2000)))
          .ok());
  StatusOr<Frame> got = served->Receive(DeadlineAfter(milliseconds(2000)));
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ("over the socket", got->payload);
}

TEST(ListenerTest, RebindsOverStaleSocketFile) {
  const std::string path = ::testing::TempDir() + "/dist_frame_stale.sock";
  {
    StatusOr<Listener> first = Listener::Create(path);
    ASSERT_TRUE(first.ok()) << first.status();
  }
  // First listener gone; a second Create on the same path must succeed
  // (restarted workers re-adopt their address).
  StatusOr<Listener> second = Listener::Create(path);
  EXPECT_TRUE(second.ok()) << second.status();
}

TEST(ListenerTest, AcceptDeadlineIsBounded) {
  const std::string path = ::testing::TempDir() + "/dist_frame_noconn.sock";
  StatusOr<Listener> listener = Listener::Create(path);
  ASSERT_TRUE(listener.ok()) << listener.status();
  StatusOr<FrameChannel> accepted =
      listener->Accept(DeadlineAfter(milliseconds(50)));
  ASSERT_FALSE(accepted.ok());
  EXPECT_TRUE(IsDeadlineExceeded(accepted.status())) << accepted.status();
}

TEST(ConnectTest, ConnectToMissingSocketFails) {
  StatusOr<FrameChannel> channel = ConnectUnix(
      ::testing::TempDir() + "/no_such_listener.sock",
      DeadlineAfter(milliseconds(200)));
  EXPECT_FALSE(channel.ok());
}

}  // namespace
}  // namespace dist
}  // namespace skimjoin
