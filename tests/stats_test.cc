#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace skimjoin {
namespace {

TEST(MedianTest, SingleElement) { EXPECT_DOUBLE_EQ(Median({4.5}), 4.5); }

TEST(MedianTest, OddCount) { EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0); }

TEST(MedianTest, EvenCountAveragesCenter) {
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
}

TEST(MedianTest, RobustToOutliers) {
  EXPECT_DOUBLE_EQ(Median({1, 2, 3, 4, 1e12}), 3.0);
}

TEST(MedianTest, NegativeValues) {
  EXPECT_DOUBLE_EQ(Median({-5, -1, -3}), -3.0);
}

TEST(MedianTest, Duplicates) { EXPECT_DOUBLE_EQ(Median({2, 2, 2, 7}), 2.0); }

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({-1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({7}), 7.0);
}

TEST(StdDevTest, ConstantVectorIsZero) {
  EXPECT_DOUBLE_EQ(StdDev({3, 3, 3}), 0.0);
}

TEST(StdDevTest, KnownValue) {
  // Population stddev of {1, 3} is 1.
  EXPECT_DOUBLE_EQ(StdDev({1, 3}), 1.0);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> v{5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 9.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  // Sorted: 1 3 5 9; q=0.5 lands between 3 and 5.
  EXPECT_DOUBLE_EQ(Percentile({5, 1, 9, 3}, 0.5), 4.0);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({2.5}, 0.73), 2.5);
}

TEST(MedianInt64Test, OddCount) {
  EXPECT_EQ(MedianInt64({9, -2, 5}), 5);
}

TEST(MedianInt64Test, EvenCountAveragesTruncating) {
  EXPECT_EQ(MedianInt64({1, 2, 3, 4}), 2);  // (2+3)/2 truncates toward 2
  EXPECT_EQ(MedianInt64({2, 4}), 3);
}

TEST(MedianInt64Test, LargeMagnitudesDoNotOverflow) {
  const int64_t big = INT64_MAX - 1;
  EXPECT_EQ(MedianInt64({big, big}), big);
  EXPECT_EQ(MedianInt64({-big, -big}), -big);
}

// Property sweep: Median is invariant under permutation and bounded by
// min/max.
class MedianPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MedianPropertyTest, BoundedAndPermutationInvariant) {
  const int n = GetParam();
  std::vector<double> values;
  values.reserve(n);
  // Deterministic pseudo-data.
  for (int i = 0; i < n; ++i) {
    values.push_back(std::sin(static_cast<double>(i * 37 + n)) * 100.0);
  }
  const double med = Median(values);
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GE(med, lo);
  EXPECT_LE(med, hi);
  std::vector<double> reversed(values.rbegin(), values.rend());
  EXPECT_DOUBLE_EQ(Median(reversed), med);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MedianPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 21, 64, 101));

}  // namespace
}  // namespace skimjoin
