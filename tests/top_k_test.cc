#include "core/top_k.h"

#include <utility>

#include "gtest/gtest.h"
#include "stream/zipf.h"
#include "util/random.h"

namespace skimjoin {
namespace core {
namespace {

TopKTracker MustCreate(uint64_t k, uint64_t seed) {
  StatusOr<TopKTracker> tracker =
      TopKTracker::Create(k, {7, 512}, seed);
  EXPECT_TRUE(tracker.ok()) << tracker.status();
  return *std::move(tracker);
}

TEST(TopKTest, CreateValidates) {
  EXPECT_FALSE(TopKTracker::Create(0, {7, 512}, 1).ok());
  EXPECT_FALSE(TopKTracker::Create(5, {0, 512}, 1).ok());
  EXPECT_TRUE(TopKTracker::Create(5, {7, 512}, 1).ok());
}

TEST(TopKTest, EmptyTrackerAnswersEmpty) {
  TopKTracker tracker = MustCreate(5, 1);
  EXPECT_TRUE(tracker.TopK().empty());
}

TEST(TopKTest, FindsThePlantedHeavyValuesInOrder) {
  TopKTracker tracker = MustCreate(3, 2);
  // Plant values with clearly separated frequencies plus noise.
  Rng rng(3);
  for (int i = 0; i < 900; ++i) tracker.Update(11, 1);
  for (int i = 0; i < 600; ++i) tracker.Update(22, 1);
  for (int i = 0; i < 300; ++i) tracker.Update(33, 1);
  for (int i = 0; i < 2000; ++i) tracker.Update(rng.NextUint64Below(10000), 1);
  const auto top = tracker.TopK();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 11u);
  EXPECT_EQ(top[1].first, 22u);
  EXPECT_EQ(top[2].first, 33u);
  EXPECT_NEAR(top[0].second, 900, 90);
  EXPECT_NEAR(top[2].second, 300, 60);
}

TEST(TopKTest, InterleavedArrivalsStillConverge) {
  TopKTracker tracker = MustCreate(2, 4);
  for (int round = 0; round < 500; ++round) {
    tracker.Update(7, 1);
    tracker.Update(8, 1);
    tracker.Update(static_cast<uint64_t>(100 + round), 1);  // churn
  }
  const auto top = tracker.TopK();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_TRUE((top[0].first == 7 && top[1].first == 8) ||
              (top[0].first == 8 && top[1].first == 7));
}

TEST(TopKTest, DeletionsDemoteValues) {
  TopKTracker tracker = MustCreate(2, 5);
  for (int i = 0; i < 500; ++i) tracker.Update(1, 1);
  for (int i = 0; i < 400; ++i) tracker.Update(2, 1);
  for (int i = 0; i < 300; ++i) tracker.Update(3, 1);
  // Retract value 1 entirely; a later sighting of value 3 re-admits it to
  // the candidate set (the tracker only considers values it observes).
  tracker.Update(1, -500);
  tracker.Update(3, 1);
  const auto top = tracker.TopK();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 2u);
  EXPECT_EQ(top[1].first, 3u);
}

TEST(TopKTest, WeightedUpdatesCountFully) {
  TopKTracker tracker = MustCreate(1, 6);
  tracker.Update(42, 1000);
  tracker.Update(7, 999);
  const auto top = tracker.TopK();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, 42u);
  EXPECT_EQ(top[0].second, 1000);
}

TEST(TopKTest, TracksZipfHeadOnRealisticStream) {
  constexpr uint64_t kDomain = 1u << 12;
  stream::ZipfDistribution zipf(kDomain, 1.3);
  Rng rng(7);
  TopKTracker tracker = MustCreate(10, 7);
  for (int i = 0; i < 100000; ++i) tracker.Update(zipf.Sample(&rng), 1);
  const auto top = tracker.TopK();
  ASSERT_EQ(top.size(), 10u);
  // The Zipf head (values 0..9) should dominate the reported set: at least
  // 8 of the true top-10 present.
  int head_hits = 0;
  for (const auto& [value, freq] : top) head_hits += (value < 10);
  EXPECT_GE(head_hits, 8);
}

TEST(TopKTest, KBoundsTheAnswerSize) {
  TopKTracker tracker = MustCreate(4, 8);
  for (uint64_t v = 0; v < 100; ++v) tracker.Update(v, 50);
  EXPECT_LE(tracker.TopK().size(), 4u);
}

}  // namespace
}  // namespace core
}  // namespace skimjoin
