#include "util/event_log.h"

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace skimjoin {
namespace {

TEST(EventLogTest, LevelNamesAreFrozen) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "info");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "error");
}

TEST(EventLogTest, EmitStampsSequenceAndTimestamp) {
  EventLog log;
  log.Emit(LogLevel::kInfo, "first");
  log.Emit(LogLevel::kWarn, "second", {{"k", "v"}});
  const std::vector<LogEvent> tail = log.Tail(10);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].sequence, 1u);
  EXPECT_EQ(tail[1].sequence, 2u);
  EXPECT_EQ(tail[0].event, "first");
  EXPECT_EQ(tail[1].event, "second");
  EXPECT_GT(tail[0].ts_micros, 0u);
  EXPECT_LE(tail[0].ts_micros, tail[1].ts_micros);
  ASSERT_EQ(tail[1].fields.size(), 1u);
  EXPECT_EQ(tail[1].fields[0].first, "k");
  EXPECT_EQ(tail[1].fields[0].second, "v");
}

TEST(EventLogTest, RingEvictsOldestAtCapacity) {
  EventLog log;
  log.set_ring_capacity(3);
  for (int i = 0; i < 5; ++i) {
    log.Emit(LogLevel::kInfo, "e" + std::to_string(i));
  }
  const std::vector<LogEvent> tail = log.Tail(10);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].event, "e2");
  EXPECT_EQ(tail[1].event, "e3");
  EXPECT_EQ(tail[2].event, "e4");
  // Evicted events still count as emitted.
  EXPECT_EQ(log.emitted_count(), 5u);
}

TEST(EventLogTest, ShrinkingCapacityDiscardsOldest) {
  EventLog log;
  for (int i = 0; i < 4; ++i) {
    log.Emit(LogLevel::kInfo, "e" + std::to_string(i));
  }
  log.set_ring_capacity(2);
  const std::vector<LogEvent> tail = log.Tail(10);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].event, "e2");
  EXPECT_EQ(tail[1].event, "e3");
}

TEST(EventLogTest, CapacityClampsToOne) {
  EventLog log;
  log.set_ring_capacity(0);
  log.Emit(LogLevel::kInfo, "a");
  log.Emit(LogLevel::kInfo, "b");
  const std::vector<LogEvent> tail = log.Tail(10);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].event, "b");
}

TEST(EventLogTest, MinLevelSuppressesAndCounts) {
  EventLog log;
  log.set_min_level(LogLevel::kWarn);
  EXPECT_EQ(log.min_level(), LogLevel::kWarn);
  log.Emit(LogLevel::kDebug, "dropped");
  log.Emit(LogLevel::kInfo, "dropped");
  log.Emit(LogLevel::kWarn, "kept");
  log.Emit(LogLevel::kError, "kept");
  EXPECT_EQ(log.emitted_count(), 2u);
  EXPECT_EQ(log.suppressed_count(), 2u);
  const std::vector<LogEvent> tail = log.Tail(10);
  ASSERT_EQ(tail.size(), 2u);
  // Suppressed events do not consume sequence numbers.
  EXPECT_EQ(tail[0].sequence, 1u);
  EXPECT_EQ(tail[1].sequence, 2u);
}

TEST(EventLogTest, TailReturnsMostRecentOldestFirst) {
  EventLog log;
  for (int i = 0; i < 6; ++i) {
    log.Emit(LogLevel::kInfo, "e" + std::to_string(i));
  }
  const std::vector<LogEvent> tail = log.Tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].event, "e4");
  EXPECT_EQ(tail[1].event, "e5");
  EXPECT_TRUE(log.Tail(0).empty());
}

TEST(EventLogTest, SinksSeeAcceptedEventsOnly) {
  EventLog log;
  std::vector<std::string> seen;
  const uint64_t id = log.AddSink(
      [&seen](const LogEvent& e) { seen.push_back(e.event); });
  log.set_min_level(LogLevel::kInfo);
  log.Emit(LogLevel::kDebug, "suppressed");
  log.Emit(LogLevel::kInfo, "accepted");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "accepted");

  log.RemoveSink(id);
  log.Emit(LogLevel::kInfo, "after-removal");
  EXPECT_EQ(seen.size(), 1u);
}

TEST(EventLogTest, MultipleSinksAllInvoked) {
  EventLog log;
  int a = 0;
  int b = 0;
  log.AddSink([&a](const LogEvent&) { ++a; });
  log.AddSink([&b](const LogEvent&) { ++b; });
  log.Emit(LogLevel::kInfo, "x");
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(EventLogTest, ClearEmptiesRingAndRestartsSequence) {
  EventLog log;
  log.set_min_level(LogLevel::kInfo);
  log.Emit(LogLevel::kDebug, "suppressed");
  log.Emit(LogLevel::kInfo, "kept");
  log.Clear();
  EXPECT_TRUE(log.Tail(10).empty());
  EXPECT_EQ(log.emitted_count(), 0u);
  EXPECT_EQ(log.suppressed_count(), 0u);
  log.Emit(LogLevel::kInfo, "fresh");
  const std::vector<LogEvent> tail = log.Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].sequence, 1u);
}

// The TSan target, mirroring MetricsConcurrencyTest.TortureManyWritersOneReader:
// hammer one log from many emitter threads while a reader drains tails and a
// resizer shrinks/grows the ring capacity mid-stream, with a sink attached the
// whole time. Correctness checks are the deterministic totals and sequence
// sanity; the real assertion is "no data race report".
TEST(EventLogConcurrencyTest, TortureEmittersSinkAndResizer) {
  EventLog log;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 5000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sink_seen{0};
  const uint64_t sink_id =
      log.AddSink([&sink_seen](const LogEvent&) { ++sink_seen; });

  std::thread reader([&log, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<LogEvent> tail = log.Tail(64);
      for (const LogEvent& e : tail) (void)ToJsonLine(e);
      // Tails are oldest-first with strictly increasing sequences even
      // while the ring churns underneath.
      for (size_t i = 1; i < tail.size(); ++i) {
        ASSERT_LT(tail[i - 1].sequence, tail[i].sequence);
      }
    }
  });

  std::thread resizer([&log, &stop] {
    size_t capacity = 16;
    while (!stop.load(std::memory_order_relaxed)) {
      log.set_ring_capacity(capacity);
      capacity = capacity == 16 ? 1024 : 16;  // shrink and regrow mid-stream
      std::this_thread::yield();
    }
    log.set_ring_capacity(EventLog::kDefaultRingCapacity);
  });

  std::vector<std::thread> emitters;
  emitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([&log, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        log.Emit(LogLevel::kInfo, "torture",
                 {{"thread", std::to_string(t)}, {"i", std::to_string(i)}});
      }
    });
  }
  for (std::thread& e : emitters) e.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  resizer.join();
  log.RemoveSink(sink_id);

  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_EQ(log.emitted_count(), kTotal);
  EXPECT_EQ(sink_seen.load(), kTotal);
  // Every surviving event is one of ours, and the newest has the last
  // sequence number handed out.
  const std::vector<LogEvent> tail = log.Tail(EventLog::kDefaultRingCapacity);
  ASSERT_FALSE(tail.empty());
  for (const LogEvent& e : tail) EXPECT_EQ(e.event, "torture");
  EXPECT_EQ(tail.back().sequence, kTotal);
}

TEST(EventLogTest, GlobalIsASingleton) {
  EXPECT_EQ(&EventLog::Global(), &EventLog::Global());
}

// ---------------------------------------------------------------------------
// JSON-lines schema golden tests. The rendered shape is a contract with
// downstream collectors: field names, their order, and the level strings
// must not change. If one of these tests fails, the exporter schema moved —
// that is a breaking change for consumers, not a test to update casually.
// ---------------------------------------------------------------------------

LogEvent MakeEvent() {
  LogEvent event;
  event.level = LogLevel::kWarn;
  event.sequence = 7;
  event.ts_micros = 1234567890;
  event.event = "accuracy_drift";
  event.fields = {{"query", "q1"}, {"rel_error", "0.5"}};
  return event;
}

TEST(EventLogJsonTest, GoldenLine) {
  EXPECT_EQ(ToJsonLine(MakeEvent()),
            "{\"seq\":7,\"ts_micros\":1234567890,\"level\":\"warn\","
            "\"event\":\"accuracy_drift\","
            "\"fields\":{\"query\":\"q1\",\"rel_error\":\"0.5\"}}");
}

TEST(EventLogJsonTest, EmptyFieldsRenderAsEmptyObject) {
  LogEvent event = MakeEvent();
  event.level = LogLevel::kError;
  event.fields.clear();
  EXPECT_EQ(ToJsonLine(event),
            "{\"seq\":7,\"ts_micros\":1234567890,\"level\":\"error\","
            "\"event\":\"accuracy_drift\",\"fields\":{}}");
}

TEST(EventLogJsonTest, EscapesSpecialCharacters) {
  LogEvent event;
  event.level = LogLevel::kInfo;
  event.sequence = 1;
  event.ts_micros = 2;
  event.event = "esc";
  event.fields = {{"msg", "a\"b\\c\nd\te\rf"}, {"ctl", std::string("\x01", 1)}};
  EXPECT_EQ(ToJsonLine(event),
            "{\"seq\":1,\"ts_micros\":2,\"level\":\"info\",\"event\":\"esc\","
            "\"fields\":{\"msg\":\"a\\\"b\\\\c\\nd\\te\\rf\","
            "\"ctl\":\"\\u0001\"}}");
}

TEST(EventLogJsonTest, FieldOrderIsInsertionOrder) {
  LogEvent event;
  event.level = LogLevel::kDebug;
  event.sequence = 3;
  event.ts_micros = 4;
  event.event = "order";
  event.fields = {{"z", "1"}, {"a", "2"}};
  const std::string line = ToJsonLine(event);
  EXPECT_LT(line.find("\"z\""), line.find("\"a\"")) << line;
}

}  // namespace
}  // namespace skimjoin
