#include "stream/sliding_window.h"

#include <utility>
#include <vector>

#include "core/skimmed_sketch.h"
#include "gtest/gtest.h"
#include "stream/frequency_vector.h"

namespace skimjoin {
namespace stream {
namespace {

SlidingWindow MustCreate(uint64_t capacity) {
  StatusOr<SlidingWindow> window = SlidingWindow::Create(capacity);
  EXPECT_TRUE(window.ok()) << window.status();
  return *std::move(window);
}

TEST(SlidingWindowTest, CreateValidatesCapacity) {
  EXPECT_FALSE(SlidingWindow::Create(0).ok());
  EXPECT_TRUE(SlidingWindow::Create(1).ok());
}

TEST(SlidingWindowTest, EmitsOnlyInsertsWhileFilling) {
  SlidingWindow window = MustCreate(3);
  std::vector<StreamElement> emitted;
  auto sink = [&](const StreamElement& e) { emitted.push_back(e); };
  window.Push(10, sink);
  window.Push(11, sink);
  window.Push(12, sink);
  ASSERT_EQ(emitted.size(), 3u);
  EXPECT_EQ(emitted[0], Insert(10));
  EXPECT_EQ(emitted[2], Insert(12));
  EXPECT_EQ(window.size(), 3u);
  EXPECT_EQ(window.oldest(), 10u);
}

TEST(SlidingWindowTest, EvictsOldestOnceFull) {
  SlidingWindow window = MustCreate(2);
  std::vector<StreamElement> emitted;
  auto sink = [&](const StreamElement& e) { emitted.push_back(e); };
  window.Push(1, sink);
  window.Push(2, sink);
  window.Push(3, sink);  // evicts 1
  window.Push(4, sink);  // evicts 2
  ASSERT_EQ(emitted.size(), 6u);
  EXPECT_EQ(emitted[2], Insert(3));
  EXPECT_EQ(emitted[3], Delete(1));
  EXPECT_EQ(emitted[4], Insert(4));
  EXPECT_EQ(emitted[5], Delete(2));
  EXPECT_EQ(window.size(), 2u);
  EXPECT_EQ(window.oldest(), 3u);
}

TEST(SlidingWindowTest, CapacityOneAlwaysHoldsLastArrival) {
  SlidingWindow window = MustCreate(1);
  std::vector<StreamElement> emitted;
  auto sink = [&](const StreamElement& e) { emitted.push_back(e); };
  for (uint64_t v = 0; v < 5; ++v) window.Push(v, sink);
  EXPECT_EQ(window.size(), 1u);
  EXPECT_EQ(window.oldest(), 4u);
  // 5 inserts + 4 deletes.
  EXPECT_EQ(emitted.size(), 9u);
}

TEST(SlidingWindowTest, DownstreamFrequencyVectorMatchesWindowContents) {
  SlidingWindow window = MustCreate(100);
  FrequencyVector fv(256);
  auto sink = [&](const StreamElement& e) { fv.Apply(e); };
  // 300 arrivals cycling over 256 values.
  for (uint64_t i = 0; i < 300; ++i) window.Push(i % 256, sink);
  // Window holds arrivals 200..299 → values 200..255 and 0..43, each once.
  EXPECT_EQ(fv.TotalCount(), 100);
  for (uint64_t v = 200; v < 256; ++v) EXPECT_EQ(fv.Get(v), 1) << v;
  for (uint64_t v = 0; v < 44; ++v) EXPECT_EQ(fv.Get(v), 1) << v;
  for (uint64_t v = 44; v < 200; ++v) EXPECT_EQ(fv.Get(v), 0) << v;
}

TEST(SlidingWindowTest, WindowedSkimmedSketchTracksRecentJoin) {
  // The paper's delete support makes windowed joins a pure adapter: the
  // synopsis always reflects the last W elements exactly (in expectation).
  core::SkimmedSketchConfig config;
  config.domain_size = 1u << 10;
  config.num_buckets = 256;
  config.use_dyadic_skim = false;
  auto sf = *core::SkimmedSketch::Create(config, 5);
  auto sg = *core::SkimmedSketch::Create(config, 5);
  SlidingWindow wf = MustCreate(500);
  SlidingWindow wg = MustCreate(500);
  auto sink_f = [&](const StreamElement& e) { sf.Update(e); };
  auto sink_g = [&](const StreamElement& e) { sg.Update(e); };

  // Phase 1: both streams all hit value 7.
  for (int i = 0; i < 500; ++i) {
    wf.Push(7, sink_f);
    wg.Push(7, sink_g);
  }
  // Phase 2: traffic moves entirely to value 9; the window forgets 7.
  for (int i = 0; i < 500; ++i) {
    wf.Push(9, sink_f);
    wg.Push(9, sink_g);
  }
  StatusOr<double> join = core::SkimmedSketch::EstimateJoinSize(sf, sg);
  ASSERT_TRUE(join.ok());
  // Join of the windows: 500 × 500 on value 9 only.
  EXPECT_NEAR(*join, 250000.0, 2500.0);
  EXPECT_EQ(sf.EstimatePointFrequency(7), 0);
}

TEST(SlidingWindowDeathTest, OldestOnEmptyAborts) {
  SlidingWindow window = MustCreate(4);
  EXPECT_DEATH((void)window.oldest(), "");
}

}  // namespace
}  // namespace stream
}  // namespace skimjoin
